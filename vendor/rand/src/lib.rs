//! Offline vendored stub of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the handful of external crates it depends on as small
//! hand-written implementations. This one reproduces — **bit-for-bit** — the
//! parts of `rand` 0.8.5 that the repo's seeded generators and tests rely on:
//!
//! * [`SeedableRng::seed_from_u64`] (the PCG32-based seed expansion from
//!   `rand_core` 0.6),
//! * [`Rng::gen_range`] for integers (Lemire widening-multiply rejection
//!   sampling, identical zone computation) and floats (single-draw
//!   half-open sampling),
//! * [`Rng::gen_bool`] (Bernoulli via 64-bit integer threshold),
//! * [`Rng::gen`] for the standard distributions of the primitive types,
//! * [`seq::SliceRandom::shuffle`] (Durstenfeld Fisher–Yates with the
//!   `u32`-narrowed index sampling rand 0.8 uses).
//!
//! Keeping the streams identical matters: every generator in `nulpa-graph`
//! and every baseline is seeded, and golden values in tests depend on the
//! exact sequence of draws.

/// The core RNG trait: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the splittable PCG32 stream
    /// used by `rand_core` 0.6 (identical output).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The `Standard` distribution for primitive types.
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Sample one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (uniform over the full domain; floats
    /// uniform in `[0, 1)` with 53/24 bits of precision, as rand 0.8).
    pub struct Standard;

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            // 64-bit platforms draw a full u64 (matches rand 0.8).
            rng.next_u64() as usize
        }
    }
    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // rand 0.8: sign bit of a u32 draw
            (rng.next_u32() as i32) < 0
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random bits scaled into [0, 1)
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

pub mod uniform {
    //! Uniform range sampling, stream-identical to rand 0.8's
    //! `UniformSampler::sample_single{,_inclusive}`.
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range.
    pub trait SampleUniform: Sized {
        /// Sample from the half-open range `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Sample from the closed range `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range argument accepted by [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Sample one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            assert!(low <= high, "cannot sample empty range");
            T::sample_single_inclusive(low, high, rng)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $uty:ty, $u_large:ty, $wide:ty, $draw:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "sample_single: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "sample_single_inclusive: low > high");
                    let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $u_large;
                    // Wrapped to 0: the range covers the whole domain.
                    if range == 0 {
                        return $draw(rng) as $ty;
                    }
                    // rand 0.8 zone: exact modulus for sub-u16 types,
                    // conservative shift approximation otherwise.
                    let zone = if (<$uty>::MAX as u64) <= (u16::MAX as u64) {
                        let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                        <$u_large>::MAX - ints_to_reject
                    } else {
                        (range << range.leading_zeros()).wrapping_sub(1)
                    };
                    loop {
                        let v: $u_large = $draw(rng);
                        let m = (v as $wide) * (range as $wide);
                        let hi = (m >> (<$u_large>::BITS)) as $u_large;
                        let lo = m as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    #[inline]
    fn draw_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
    #[inline]
    fn draw_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
    #[inline]
    fn draw_usize<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }

    uniform_int_impl! { u8, u8, u32, u64, draw_u32 }
    uniform_int_impl! { u16, u16, u32, u64, draw_u32 }
    uniform_int_impl! { u32, u32, u32, u64, draw_u32 }
    uniform_int_impl! { u64, u64, u64, u128, draw_u64 }
    uniform_int_impl! { usize, usize, usize, u128, draw_usize }
    uniform_int_impl! { i8, u8, u32, u64, draw_u32 }
    uniform_int_impl! { i16, u16, u32, u64, draw_u32 }
    uniform_int_impl! { i32, u32, u32, u64, draw_u32 }
    uniform_int_impl! { i64, u64, u64, u128, draw_u64 }

    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_one:expr, $draw:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    // One draw: 1.xxx mantissa in [1, 2), shifted to
                    // [low, high) — the same single-u64/u32 stream
                    // consumption as rand 0.8's UniformFloat.
                    let scale = high - low;
                    let bits = $draw(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(bits | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    // Rounding can land exactly on `high`; nudge inside.
                    if res < high {
                        res
                    } else {
                        high - scale * <$ty>::EPSILON
                    }
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let scale = high - low;
                    let bits = $draw(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(bits | $exp_one);
                    (value1_2 - 1.0) * scale + low
                }
            }
        };
    }

    uniform_float_impl! { f64, u64, 12u32, 1023u64 << 52, draw_u64 }
    uniform_float_impl! { f32, u32, 9u32, 127u32 << 23, draw_u32 }
}

/// Convenience extension trait over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: uniform::SampleUniform,
        Rg: uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`; `p == 1.0` consumes no
    /// randomness (matching rand 0.8's `Bernoulli`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        if p == 1.0 {
            return true;
        }
        // p * 2^64 as the acceptance threshold
        let p_int = (p * (2.0f64 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }

    /// Fill a byte buffer.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Slice shuffling, stream-identical to rand 0.8's `SliceRandom`.
    use super::uniform::SampleUniform;
    use super::RngCore;

    /// Index sampling exactly as rand 0.8's `gen_index`: narrow to `u32`
    /// when the bound fits, so the draw pattern matches.
    #[inline]
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            u32::sample_single(0, ubound as u32, rng) as usize
        } else {
            usize::sample_single(0, ubound, rng)
        }
    }

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Durstenfeld Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly pick one element (None when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (0..self.len()).rev() {
                self.swap(i, gen_index(rng, i + 1));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }
}

/// Minimal `rngs` module for API compatibility.
pub mod rngs {
    /// Re-export namespace placeholder (no OS RNG in the offline stub).
    pub mod mock {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A counting RNG for deterministic tests of the sampling layers.
    struct Seq(u64);
    impl RngCore for Seq {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            (self.0 >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u32() as u8;
            }
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Seq(7);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0u32..5);
            assert!(y < 5);
            let z = r.gen_range(1u32..=3);
            assert!((1..=3).contains(&z));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_edges() {
        let mut r = Seq(1);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Seq(3);
        let mut v: Vec<u32> = (0..50).collect();
        use seq::SliceRandom;
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_expansion_matches_rand_core() {
        // Golden value of the PCG32 expansion: feeding state 0 must give
        // the same first word every build (self-consistency) and the
        // documented first PCG output for this (MUL, INC) pair.
        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Capture(seed)
            }
        }
        let a = Capture::seed_from_u64(42).0;
        let b = Capture::seed_from_u64(42).0;
        assert_eq!(a, b);
        let c = Capture::seed_from_u64(43).0;
        assert_ne!(a, c);
    }

    #[test]
    fn standard_floats_in_unit_interval() {
        let mut r = Seq(11);
        for _ in 0..100 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
