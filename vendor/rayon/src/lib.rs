//! Offline vendored stub of the `rayon` API surface this workspace uses.
//!
//! Executes everything **sequentially** on the calling thread, preserving
//! rayon's combinator semantics (`fold` produces per-split accumulators
//! that `reduce` merges; here there is exactly one split). Sequential
//! execution is deterministic, which is a strict subset of the behaviours
//! the real work-stealing pool can produce, so all code written against
//! rayon's API remains correct — just not parallel. The algorithmic code
//! paths (atomics, Jacobi snapshots, chunked scratch pools) are unchanged
//! and still exercised.

/// A "parallel" iterator: a thin wrapper around a sequential iterator.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each item.
    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter(self.0.map(f))
    }

    /// Keep items matching the predicate.
    pub fn filter<P>(self, p: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(p))
    }

    /// Filter-map in one pass.
    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter(self.0.filter_map(f))
    }

    /// Rayon's `fold`: produce per-split accumulators (one split here).
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon's `reduce`: merge items pairwise starting from the identity.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Sum all items.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Count items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Maximum item.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum item.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Collect into any `FromIterator` container.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// True if any item matches.
    pub fn any<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.0.any(p)
    }

    /// True if all items match.
    pub fn all<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.0.all(p)
    }
}

impl<'a, T: 'a + Copy, I: Iterator<Item = &'a T>> ParIter<I> {
    /// Copy referenced items.
    pub fn copied(self) -> ParIter<std::iter::Copied<I>> {
        ParIter(self.0.copied())
    }

    /// Clone referenced items.
    pub fn cloned(self) -> ParIter<std::iter::Cloned<I>> {
        ParIter(self.0.cloned())
    }
}

/// Conversion into a (sequentially emulated) parallel iterator.
pub trait IntoParallelIterator {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter()` on collections whose references iterate.
pub trait IntoParallelRefIterator<'a> {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a reference).
    type Item: 'a;
    /// Iterate by reference.
    fn par_iter(&'a self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter_mut()` on collections whose mutable references iterate.
pub trait IntoParallelRefMutIterator<'a> {
    /// The wrapped iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a mutable reference).
    type Item: 'a;
    /// Iterate by mutable reference.
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter>;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefMutIterator<'a> for C
where
    &'a mut C: IntoIterator,
{
    type Iter = <&'a mut C as IntoIterator>::IntoIter;
    type Item = <&'a mut C as IntoIterator>::Item;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Chunked slice access (`par_chunks`).
pub trait ParallelSlice<T> {
    /// Iterate over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// Run two closures ("in parallel": sequentially here).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by the stub).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a (no-op) thread pool.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    _num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requested worker count (ignored: execution is sequential).
    pub fn num_threads(mut self, n: usize) -> Self {
        self._num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool)
    }
}

/// A no-op pool: `install` just runs the closure on this thread.
pub struct ThreadPool;

impl ThreadPool {
    /// Run `f` "inside" the pool.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        f()
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_filter_collect() {
        let v: Vec<u32> = (0u32..10).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());
        let odd: Vec<u32> = v.par_iter().filter(|&&x| x % 4 == 2).copied().collect();
        assert_eq!(odd, vec![2, 6, 10, 14, 18]);
    }

    #[test]
    fn fold_then_reduce() {
        let total = (0u64..100)
            .into_par_iter()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn chunks_and_sum() {
        let data: Vec<usize> = (0..1000).collect();
        let s: usize = data.par_chunks(64).map(|c| c.iter().sum::<usize>()).sum();
        assert_eq!(s, 499500);
    }

    #[test]
    fn pool_installs() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        assert_eq!(pool.install(|| 41 + 1), 42);
    }
}
