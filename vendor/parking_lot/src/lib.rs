//! Offline vendored stub of `parking_lot`: thin wrappers over the std
//! synchronisation primitives with parking_lot's poison-free API
//! (`lock()` returns the guard directly).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with parking_lot's non-poisoning `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (panics in a poisoned process are propagated as
    /// the inner value; parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RwLock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
