//! Offline vendored stub of the `criterion` API surface used by the
//! workspace's benches. Instead of criterion's statistical machinery it
//! runs a small fixed number of timed iterations and prints a one-line
//! median per benchmark — enough to keep `cargo bench` (and
//! `cargo test --benches`) compiling and producing useful numbers in an
//! offline build.

use std::fmt;
use std::time::Instant;

/// Identity function the optimiser must assume reads/writes its operand.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark id: group/function plus an optional parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark name.
pub trait IntoBenchmarkId {
    /// Render to the printed name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Passed to the benchmark closure; `iter` times the workload.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    /// Time `routine` for a few samples and record the median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut times: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos());
        }
        times.sort_unstable();
        self.median_ns = times[times.len() / 2];
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set sample count (criterion's statistical floor is irrelevant
    /// here; the stub just runs fewer iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.clamp(1, 30);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            median_ns: 0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: median {:.3} ms ({} samples)",
            self.name,
            id.into_name(),
            b.median_ns as f64 / 1e6,
            b.samples
        );
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            median_ns: 0,
        };
        f(&mut b, input);
        println!(
            "bench {}/{}: median {:.3} ms ({} samples)",
            self.name,
            id.into_name(),
            b.median_ns as f64 / 1e6,
            b.samples
        );
        self
    }

    /// Finish the group (no-op).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _c: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("main").bench_function(name, f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Produce `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_groups_print() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }
}
