//! Offline vendored stub of the `proptest` API surface this workspace
//! uses: the [`strategy::Strategy`] trait with range/tuple/`Just`/
//! `collection::vec` strategies and the `prop_map`/`prop_flat_map`
//! combinators, plus the [`proptest!`]/[`prop_assert!`] macro family.
//!
//! Differences from real proptest, deliberate for an offline stub:
//! * deterministic per-case RNG (seeded from the case index) instead of
//!   an entropy-seeded runner — failures reproduce without regression
//!   files (`*.proptest-regressions` files are ignored);
//! * no shrinking: a failing case reports its case index and message;
//! * value generation is uniform over the given ranges rather than
//!   proptest's bias-towards-edge-cases distributions.

pub mod test_runner {
    //! Runner configuration and per-case error plumbing.
    use rand::SeedableRng;

    /// Deterministic RNG driving value generation for one test case.
    pub type TestRng = rand_chacha::ChaCha8Rng;

    /// Build the RNG for case number `case` (stable across runs).
    pub fn rng_for_case(case: u32) -> TestRng {
        TestRng::seed_from_u64(0x7072_6f70_7465_7374u64 ^ ((case as u64) << 1))
    }

    /// Subset of proptest's `Config` that the workspace sets.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions failed; skip it (not a failure).
        Reject(String),
        /// The property was violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// Construct a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.
    use super::test_runner::TestRng;
    use rand::uniform::{SampleRange, SampleUniform};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Filter generated values (regenerates until `f` accepts, up to
        /// a bound, then panics — proptest rejects instead).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence,
                f,
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter retry budget exhausted: {}", self.whence);
        }
    }

    impl<T> Strategy for Range<T>
    where
        T: SampleUniform + PartialOrd + Clone,
        Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: SampleUniform + PartialOrd + Clone,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy! { A: 0 }
    tuple_strategy! { A: 0, B: 1 }
    tuple_strategy! { A: 0, B: 1, C: 2 }
    tuple_strategy! { A: 0, B: 1, C: 2, D: 3 }
    tuple_strategy! { A: 0, B: 1, C: 2, D: 3, E: 4 }
    tuple_strategy! { A: 0, B: 1, C: 2, D: 3, E: 4, F: 5 }
}

pub mod collection {
    //! Collection strategies.
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Anything usable as the size argument of [`vec()`].
    pub trait SizeRange {
        /// Draw a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                self.start
            } else {
                rng.gen_range(self.clone())
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __ran: u32 = 0;
                let mut __case: u32 = 0;
                // cap total attempts so heavy rejection cannot spin forever
                while __ran < __config.cases && __case < __config.cases * 16 {
                    let mut __rng = $crate::test_runner::rng_for_case(__case);
                    __case += 1;
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __ran += 1; }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest property {} failed at case {}: {}",
                                stringify!($name), __case - 1, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}",
            __l,
            __r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?} != {:?}`", __l, __r);
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..5, f in 0.5f32..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.5..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn tuples_and_vec(v in crate::collection::vec((0u32..50, 0.1f32..1.0), 0..20)) {
            prop_assert!(v.len() < 20);
            for (k, w) in v {
                prop_assert!(k < 50);
                prop_assert!((0.1..1.0).contains(&w));
            }
        }

        #[test]
        fn flat_map_scales(pair in (2usize..20).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, i) = pair;
            prop_assert!(i < n);
        }

        #[test]
        fn assume_rejects(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        let s = (0u32..1000, 0.0f64..1.0);
        let a = s.generate(&mut crate::test_runner::rng_for_case(7));
        let b = s.generate(&mut crate::test_runner::rng_for_case(7));
        assert_eq!(a, b);
    }
}
