//! Offline vendored stub of `rand_chacha` 0.3: the [`ChaCha8Rng`] (and
//! [`ChaCha20Rng`]) generators, bit-identical to the real crate.
//!
//! The workspace's graph generators and tests are all seeded through
//! `ChaCha8Rng::seed_from_u64`, so this implementation reproduces both the
//! ChaCha block function (djb's original 64-bit-counter/64-bit-nonce
//! variant, which is what `rand_chacha` uses) and the `BlockRng` buffering
//! semantics of `rand_core` 0.6 — including the four-blocks-per-refill
//! layout and the word-crossing behaviour of `next_u64` — so the emitted
//! stream matches the real crate word for word.

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" in little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// Words buffered per refill: rand_chacha computes four 16-word blocks at
/// a time (its SIMD width), and the buffer order is block-major.
const BUF_WORDS: usize = 64;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha block: `rounds` must be even (8 for ChaCha8).
fn chacha_block(input: &[u32; 16], rounds: u32, out: &mut [u32; 16]) {
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // column round
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // diagonal round
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(input[i]);
    }
}

/// Generic ChaCha RNG over a compile-time round count.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const ROUNDS: u32> {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// 64-bit stream id / nonce (words 14–15 of the state).
    stream: u64,
    /// Buffered output words (four blocks).
    results: [u32; BUF_WORDS],
    /// Next unread index into `results`; `BUF_WORDS` means empty.
    index: usize,
}

/// ChaCha with 8 rounds (the paper repo's seeded RNG everywhere).
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

impl<const ROUNDS: u32> ChaChaRng<ROUNDS> {
    fn state_for_block(&self, block: u64) -> [u32; 16] {
        let mut s = [0u32; 16];
        s[..4].copy_from_slice(&CONSTANTS);
        s[4..12].copy_from_slice(&self.key);
        s[12] = block as u32;
        s[13] = (block >> 32) as u32;
        s[14] = self.stream as u32;
        s[15] = (self.stream >> 32) as u32;
        s
    }

    /// Refill the four-block buffer at the current counter.
    fn generate(&mut self) {
        let mut out = [0u32; 16];
        for b in 0..4u64 {
            let input = self.state_for_block(self.counter.wrapping_add(b));
            chacha_block(&input, ROUNDS, &mut out);
            self.results[b as usize * 16..(b as usize + 1) * 16].copy_from_slice(&out);
        }
        self.counter = self.counter.wrapping_add(4);
    }

    /// Set the stream id (nonce words); resets buffered output.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.index = BUF_WORDS;
    }

    /// Current word position consumed from the start of the stream.
    pub fn get_word_pos(&self) -> u128 {
        let blocks_buffered = if self.index == BUF_WORDS { 0 } else { 4 };
        let base = (self.counter as u128).wrapping_sub(blocks_buffered) * 16;
        if self.index == BUF_WORDS {
            base
        } else {
            base + self.index as u128
        }
    }
}

impl<const ROUNDS: u32> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            stream: 0,
            results: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }
}

impl<const ROUNDS: u32> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.generate();
            self.index = 0;
        }
        let v = self.results[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        // rand_core 0.6 BlockRng::next_u64 semantics, including the
        // buffer-boundary crossing case.
        let len = BUF_WORDS;
        let index = self.index;
        if index < len - 1 {
            self.index += 2;
            (u64::from(self.results[index + 1]) << 32) | u64::from(self.results[index])
        } else if index == len - 1 {
            let x = u64::from(self.results[len - 1]);
            self.generate();
            let y = u64::from(self.results[0]);
            self.index = 1;
            (y << 32) | x
        } else {
            self.generate();
            self.index = 2;
            (u64::from(self.results[1]) << 32) | u64::from(self.results[0])
        }
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // Whole-word consumption, as BlockRng's fill_bytes.
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 block-function test vector (20 rounds). The nonce
    /// there is the 96-bit IETF layout, so we poke the state words
    /// directly — the block function itself is variant-independent.
    #[test]
    fn rfc8439_block_vector() {
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&CONSTANTS);
        for i in 0..8 {
            let b = (i as u32) * 4;
            input[4 + i] = u32::from_le_bytes([b as u8, b as u8 + 1, b as u8 + 2, b as u8 + 3]);
        }
        input[12] = 1; // counter
        input[13] = 0x0900_0000;
        input[14] = 0x4a00_0000;
        input[15] = 0x0000_0000;
        let mut out = [0u32; 16];
        chacha_block(&input, 20, &mut out);
        let expected: [u32; 16] = [
            0xe4e7_f110,
            0x1559_3bd1,
            0x1fdd_0f50,
            0xc471_20a3,
            0xc7f4_d1c7,
            0x0368_c033,
            0x9aaa_2204,
            0x4e6c_d4c3,
            0x4664_82d2,
            0x09aa_9f07,
            0x05d7_c214,
            0xa202_8bd9,
            0xd19c_12b5,
            0xb94e_16de,
            0xe883_d0cb,
            0x4e3c_50a2,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(
            (0..8).map(|_| a.next_u32()).collect::<Vec<_>>(),
            (0..8).map(|_| c.next_u32()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_u64_crosses_buffer_boundary() {
        // Consume 63 words, then draw a u64: low half is word 63, high
        // half is word 64 (the first word of the next refill).
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let words: Vec<u32> = {
            let mut s = ChaCha8Rng::seed_from_u64(1);
            (0..130).map(|_| s.next_u32()).collect()
        };
        for _ in 0..63 {
            r.next_u32();
        }
        let v = r.next_u64();
        assert_eq!(v as u32, words[63]);
        assert_eq!((v >> 32) as u32, words[64]);
        // and the stream continues at word 65
        assert_eq!(r.next_u32(), words[65]);
    }

    #[test]
    fn mixed_width_stream_is_word_addressed() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        let w0 = a.next_u32();
        let w12 = a.next_u64();
        let mut b = ChaCha8Rng::seed_from_u64(3);
        assert_eq!(b.next_u32(), w0);
        let lo = b.next_u32();
        let hi = b.next_u32();
        assert_eq!(w12, (u64::from(hi) << 32) | u64::from(lo));
    }
}
