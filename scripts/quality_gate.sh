#!/usr/bin/env bash
# Quality-regression gate. Runs the telemetered backend matrix (seq,
# nu-lpa, nu-lpa-sim, plus their -frontier worklist-mode variants) over
# the built-in graph trio via `nulpa stats`,
# appends the run records to the results/history.jsonl ledger, and fails
# if any run regressed against the committed results/telemetry_baseline.json:
#   - final modularity more than 1% below baseline (deterministic — the
#     hard gate), or
#   - wall-clock / peak-heap more than 10% above baseline AND above the
#     absolute noise floors (250 ms / 16 MiB).
# Refresh the baseline deliberately with:
#   cargo run --release --bin nulpa -- stats --write-baseline results/telemetry_baseline.json
. "$(dirname "$0")/lib.sh"

BASELINE="${NULPA_QUALITY_BASELINE:-results/telemetry_baseline.json}"
HISTORY="${NULPA_QUALITY_HISTORY:-results/history.jsonl}"

if [ ! -f "$BASELINE" ]; then
  echo "quality gate: no baseline at $BASELINE; writing one (commit it!)"
  cargo run --release --bin nulpa -- stats --write-baseline "$BASELINE" >/dev/null
fi

cargo run --release --bin nulpa -- stats \
  --history "$HISTORY" \
  --check "$BASELINE" \
  "$@" >/dev/null

echo "quality gate OK (ledger: $HISTORY)"
