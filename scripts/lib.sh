#!/usr/bin/env bash
# Shared helpers for the scripts/ entry points. Source this first:
#
#   . "$(dirname "$0")/lib.sh"
#
# It enables strict mode, moves to the workspace root, and provides the
# step/fail helpers the gates use for uniform output.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

# Announce a CI step.
step() { echo "==> $*"; }

# Fail the gate with a message.
fail() {
  echo "$*" >&2
  exit 1
}
