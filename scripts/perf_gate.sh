#!/usr/bin/env bash
# Perf-regression gate. Profiles the built-in graph trio across the
# profiling backend matrix — including the frontier (active-set) modes,
# whose >=25% cycle win over the dense sweeps is asserted by the binary —
# writes results/prof_current.json, and fails
# if any attributed cycle component regressed more than the tolerance
# (default 5%) against the committed results/prof_baseline.json. The
# simulator is deterministic, so any drift is a real cost-model change;
# refresh the baseline deliberately with:
#   cargo run --release -p nulpa-bench --bin profile_baseline
. "$(dirname "$0")/lib.sh"

step "perf gate: profiling backend matrix vs committed baseline"
cargo run --release -p nulpa-bench --bin profile_baseline -- --check "$@"
