#!/usr/bin/env bash
# Perf-regression gate. Profiles the built-in graph trio across the
# profiling backend matrix — including the frontier (active-set) modes,
# whose >=25% cycle win over the dense sweeps is asserted by the binary —
# writes results/prof_current.json, and fails
# if any attributed cycle component regressed more than the tolerance
# (default 5%) against the committed results/prof_baseline.json. The
# simulator is deterministic, so any drift is a real cost-model change;
# refresh the baseline deliberately with:
#   cargo run --release -p nulpa-bench --bin profile_baseline
. "$(dirname "$0")/lib.sh"

step "perf gate: profiling backend matrix vs committed baseline"
cargo run --release -p nulpa-bench --bin profile_baseline -- --check "$@"

# Native multi-core scaling floor: on a host with >= 4 hardware threads
# the degree-bucketed fast path must reach a 2x speedup at 4 threads
# (the binary SKIPs — and passes — on smaller hosts, stamping
# `degraded: true` into the JSON rows instead of publishing a
# misleading ~1.0x as a regression).
# The gate run uses --quick and a scratch output path so it never
# clobbers the committed full-scale results/parallel_scaling.json.
step "perf gate: native thread-scaling floor (parallel_scaling --check-scaling)"
cargo run --release -p nulpa-bench --bin parallel_scaling -- \
  --quick --check-scaling --json "${TMPDIR:-/tmp}/parallel_scaling_gate.json"

# Host-parallel execution gate: profile the native fast path on the
# built-in trio at a 1/2/4 thread ladder and compare against the
# committed results/hostprof_baseline.json. Repair rate and iteration
# count are deterministic (thread-count-invariant commit schedule), so
# they gate tightly; imbalance only gates above a busy-time noise floor.
# Refresh the baseline deliberately with:
#   cargo run --release --bin nulpa -- profile --host --write-baseline results/hostprof_baseline.json
step "perf gate: host-parallel repair-rate/imbalance vs committed baseline"
cargo run --release --bin nulpa -- profile --host --check results/hostprof_baseline.json \
  > /dev/null
