#!/usr/bin/env bash
# CI gate. Tier 1 (must stay green): release build + root test suite.
# Then workspace tests, formatting, clippy with warnings denied (in both
# feature configurations), rustdoc with warnings denied, the static
# effect verifier + workspace linter, and the dynamic hazard checker
# over every shipped backend.
. "$(dirname "$0")/lib.sh"

step "tier 1: cargo build --release"
cargo build --release

step "tier 1: cargo test -q"
cargo test -q

step "workspace tests"
cargo test -q --workspace

step "workspace tests (all features)"
cargo test -q --workspace --all-features

# Telemetry neutrality: with every optional observability layer compiled
# out, the suite (including the byte-exact golden-trace tests) must still
# pass — observers may never perturb the algorithms.
step "root tests (no default features)"
cargo test -q --no-default-features

# The sharded wave scheduler and the native fast path both promise
# bit-identical results at any host thread count; run the suite at both
# extremes plus an in-between count to catch order leaks (2 exercises
# the speculative-pick/sequential-repair commit with exactly one
# non-lead worker — the smallest configuration that can race).
step "workspace tests (NULPA_THREADS=1)"
NULPA_THREADS=1 cargo test -q --workspace

step "workspace tests (NULPA_THREADS=2)"
NULPA_THREADS=2 cargo test -q --workspace

step "workspace tests (NULPA_THREADS=4)"
NULPA_THREADS=4 cargo test -q --workspace

step "rustfmt"
cargo fmt --all --check

step "clippy"
cargo clippy --workspace --all-targets -- -D warnings

step "clippy (all features)"
cargo clippy --workspace --all-targets --all-features -- -D warnings

step "rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Static verification: the kernel effect solver (lane disjointness,
# staging discipline, barrier uniformity, probe budgets) plus the
# workspace invariant linter. This subsumes the old inline unsafe-code
# grep: the allowlist now lives in check/unsafe_allowlist.toml and stale
# entries fail the gate too.
step "nulpa check (static effect verifier + workspace linter)"
cargo run --release --bin nulpa -- check

step "sancheck (dynamic hazard checker)"
cargo run --release --bin nulpa -- sancheck

# Host-parallel observatory smoke: the profiled fast path must run the
# trio ladder and emit a parseable JSON report (the regression gate
# itself runs inside perf_gate.sh below).
step "hostprof smoke (nulpa profile --host --json)"
cargo run --release --bin nulpa -- profile --host --json > /dev/null

step "perf gate (cycle-attribution baseline)"
bash scripts/perf_gate.sh

step "quality gate (convergence-telemetry baseline)"
bash scripts/quality_gate.sh

echo "CI OK"
