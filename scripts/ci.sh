#!/usr/bin/env bash
# CI gate. Tier 1 (must stay green): release build + root test suite.
# Then workspace tests, formatting, clippy with warnings denied (in both
# feature configurations), an unsafe-code audit, and the dynamic hazard
# checker over every shipped backend.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> workspace tests (all features)"
cargo test -q --workspace --all-features

# Telemetry neutrality: with every optional observability layer compiled
# out, the suite (including the byte-exact golden-trace tests) must still
# pass — observers may never perturb the algorithms.
echo "==> root tests (no default features)"
cargo test -q --no-default-features

# The sharded wave scheduler promises bit-identical results at any host
# thread count; run the suite at both extremes to catch order leaks.
echo "==> workspace tests (NULPA_THREADS=1)"
NULPA_THREADS=1 cargo test -q --workspace

echo "==> workspace tests (NULPA_THREADS=4)"
NULPA_THREADS=4 cargo test -q --workspace

echo "==> rustfmt"
cargo fmt --all --check

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> clippy (all features)"
cargo clippy --workspace --all-targets --all-features -- -D warnings

echo "==> unsafe audit"
# Every crate root must carry #![forbid(unsafe_code)] except nulpa-core
# and nulpa-telemetry, which carry #![deny(unsafe_code)] with allowlisted
# modules (core/disjoint: non-overlapping buffer split; core/native and
# core/gpu: vertex-disjoint table regions taken from it for parallel
# writes; telemetry/alloc: the counting GlobalAlloc shim — GlobalAlloc is
# an unsafe trait). Any unsafe outside the allowlist fails the gate.
stray=$(grep -rlE 'unsafe (fn|\{|impl)' --include="*.rs" crates/*/src src \
  | grep -v -e "crates/core/src/disjoint.rs" -e "crates/core/src/native.rs" \
    -e "crates/core/src/gpu.rs" -e "crates/telemetry/src/alloc.rs" \
  || true)
if [ -n "$stray" ]; then
  echo "unsafe audit: unsafe code outside the allowlist:"
  echo "$stray"
  exit 1
fi
for root in crates/graph crates/simt crates/hashtab crates/metrics \
            crates/baselines crates/obs crates/bench crates/sancheck \
            crates/prof; do
  grep -q '^#!\[forbid(unsafe_code)\]' "$root/src/lib.rs" \
    || { echo "unsafe audit: $root/src/lib.rs lacks #![forbid(unsafe_code)]"; exit 1; }
done
for root in crates/core crates/telemetry; do
  grep -q '^#!\[deny(unsafe_code)\]' "$root/src/lib.rs" \
    || { echo "unsafe audit: $root/src/lib.rs lacks #![deny(unsafe_code)]"; exit 1; }
done

echo "==> sancheck (dynamic hazard checker)"
cargo run --release --bin nulpa -- sancheck

echo "==> perf gate (cycle-attribution baseline)"
bash scripts/perf_gate.sh

echo "==> quality gate (convergence-telemetry baseline)"
bash scripts/quality_gate.sh

echo "CI OK"
