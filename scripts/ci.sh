#!/usr/bin/env bash
# CI gate. Tier 1 (must stay green): release build + root test suite.
# Then workspace tests, formatting, and clippy with warnings denied.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier 1: cargo build --release"
cargo build --release

echo "==> tier 1: cargo test -q"
cargo test -q

echo "==> workspace tests"
cargo test -q --workspace

echo "==> rustfmt"
cargo fmt --all --check

echo "==> clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
