//! Dynamic-graph scenario: maintain communities over a stream of edge
//! updates with Dynamic Frontier LPA instead of recomputing from scratch
//! (the ν-LPA lineage's dynamic extension).
//!
//! ```text
//! cargo run --release --example streaming_updates
//! ```

use nu_lpa::core::{lpa_dynamic, lpa_native, EdgeBatch, LpaConfig};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::metrics::{community_count, modularity};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let mut g = web_crawl(30_000, 8, 0.08, 11);
    let cfg = LpaConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(99);

    let t0 = Instant::now();
    let mut labels = lpa_native(&g, &cfg).labels;
    println!(
        "initial run: {} vertices, {} communities, Q = {:.4} in {:.1?}",
        g.num_vertices(),
        community_count(&labels),
        modularity(&g, &labels),
        t0.elapsed()
    );

    println!(
        "\n{:>6} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "batch", "updates", "t(dynamic)", "t(scratch)", "Q(dyn)", "changes(dyn)"
    );

    for batch_no in 1..=5 {
        // a batch of random insertions and deletions
        let n = g.num_vertices() as u32;
        let mut batch = EdgeBatch::default();
        for _ in 0..200 {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                batch.insertions.push((u, v, 1.0));
            }
        }
        for _ in 0..50 {
            let u = rng.gen_range(0..n);
            if let Some(&v) = g.neighbor_ids(u).first() {
                batch.deletions.push((u, v));
            }
        }

        let t0 = Instant::now();
        let (g_new, r) = lpa_dynamic(&g, &labels, &batch, &cfg);
        let t_dyn = t0.elapsed();

        let t0 = Instant::now();
        let fresh = lpa_native(&g_new, &cfg);
        let t_full = t0.elapsed();

        println!(
            "{:>6} {:>8} {:>10.1?} {:>10.1?} {:>10.4} {:>12}",
            batch_no,
            batch.insertions.len() + batch.deletions.len(),
            t_dyn,
            t_full,
            modularity(&g_new, &r.labels),
            r.total_changes(),
        );
        let _ = fresh;
        g = g_new;
        labels = r.labels;
    }

    println!("\nthe frontier update touches only vertices whose neighbourhood changed;");
    println!("quality stays in the from-scratch band at a fraction of the work.");
}
