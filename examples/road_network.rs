//! Road-network scenario: the regime where the paper reports ν-LPA's
//! largest quality win over FLPA (Fig. 6c, asia_osm / europe_osm).
//! Sparse near-planar graphs have no hubs; diffusion quality depends
//! almost entirely on the update schedule and tie handling.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use nu_lpa::baselines::flpa;
use nu_lpa::core::{lpa_native, lpa_seq, LpaConfig, SwapMode};
use nu_lpa::graph::gen::grid2d;
use nu_lpa::metrics::{community_count, max_community_size, modularity};

fn main() {
    // ~road density: thinned 2-D lattice, D_avg ≈ 2.1
    let g = grid2d(160, 160, 0.55, 11);
    println!(
        "road network: {} junctions, {} segments, D_avg = {:.2}",
        g.num_vertices(),
        g.num_edges() / 2,
        g.avg_degree()
    );

    println!(
        "\n{:<22} {:>8} {:>10} {:>12}",
        "method", "k", "Q", "largest"
    );
    let report = |name: &str, labels: &[u32]| {
        println!(
            "{:<22} {:>8} {:>10.4} {:>12}",
            name,
            community_count(labels),
            modularity(&g, labels),
            max_community_size(labels),
        );
    };

    let r = flpa(&g, 1);
    report("FLPA", &r.labels);

    let r = lpa_seq(&g, &LpaConfig::default());
    report("sequential LPA (PL4)", &r.labels);

    let r = lpa_native(&g, &LpaConfig::default());
    report("nu-LPA (PL4)", &r.labels);

    // Ablation: what the swap-mitigation schedule does to quality here.
    for mode in [
        SwapMode::Off,
        SwapMode::PickLess { every: 1 },
        SwapMode::CrossCheck { every: 2 },
    ] {
        let cfg = LpaConfig::default().with_swap_mode(mode);
        let r = lpa_native(&g, &cfg);
        report(&format!("nu-LPA ({})", mode.label()), &r.labels);
    }

    println!("\ncommunities on road networks are spatial patches; watch how the");
    println!("mitigation schedule changes patch size and modularity.");
}
