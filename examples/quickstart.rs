//! Quickstart: build a graph, run ν-LPA, inspect the communities.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nu_lpa::core::{lpa_native, LpaConfig};
use nu_lpa::graph::gen::caveman_weighted;
use nu_lpa::metrics::{community_count, community_sizes, modularity};

fn main() {
    // A graph with obvious structure: 4 cliques of 8 vertices, joined in a
    // ring by light bridges.
    let g = caveman_weighted(4, 8, 0.5);
    println!(
        "graph: {} vertices, {} directed edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Run ν-LPA with the paper's defaults: asynchronous LPA, Pick-Less
    // every 4 iterations, quadratic-double per-vertex hashtables, f32
    // values, tolerance 0.05, at most 20 iterations.
    let config = LpaConfig::default();
    let result = lpa_native(&g, &config);

    println!(
        "converged: {} after {} iterations (changes per iteration: {:?})",
        result.converged, result.iterations, result.changed_per_iter
    );
    println!("communities found: {}", community_count(&result.labels));
    println!("modularity Q = {:.4}", modularity(&g, &result.labels));

    let sizes = community_sizes(&result.labels);
    let mut nonempty: Vec<_> = sizes.iter().filter(|&&s| s > 0).collect();
    nonempty.sort_unstable_by(|a, b| b.cmp(a));
    println!("community sizes: {nonempty:?}");

    for v in [0u32, 8, 16, 24] {
        println!("vertex {v} -> community {}", result.labels[v as usize]);
    }
}
