//! Web-graph scenario: a miniature of the paper's Fig. 6 on one
//! host-structured web crawl — all five implementations, runtime and
//! modularity side by side.
//!
//! ```text
//! cargo run --release --example web_graph
//! ```

use nu_lpa::baselines::{
    flpa, gunrock_lp, louvain, networkit_plp, GunrockConfig, LouvainConfig, PlpConfig,
};
use nu_lpa::core::{lpa_native, LpaConfig};
use nu_lpa::graph::gen::{web_crawl, web_crawl_hosts};
use nu_lpa::metrics::{community_count, modularity, nmi};
use std::time::Instant;

fn main() {
    let n = 20_000;
    let seed = 7;
    let g = web_crawl(n, 8, 0.08, seed);
    let hosts = web_crawl_hosts(n, seed);
    println!(
        "web crawl: {} pages, {} links, {} hosts",
        g.num_vertices(),
        g.num_edges() / 2,
        community_count(&hosts)
    );
    println!(
        "\n{:<12} {:>10} {:>8} {:>10} {:>10}",
        "method", "time", "k", "Q", "host NMI"
    );

    let report = |name: &str, labels: Vec<u32>, t: std::time::Duration| {
        println!(
            "{:<12} {:>7.2?} {:>8} {:>10.4} {:>10.4}",
            name,
            t,
            community_count(&labels),
            modularity(&g, &labels),
            nmi(&labels, &hosts),
        );
    };

    let t0 = Instant::now();
    let r = flpa(&g, 1);
    report("FLPA", r.labels, t0.elapsed());

    let t0 = Instant::now();
    let r = networkit_plp(&g, &PlpConfig::default());
    report("NetworKit", r.labels, t0.elapsed());

    let t0 = Instant::now();
    let r = gunrock_lp(&g, &GunrockConfig::default());
    report("Gunrock-LP", r.labels, t0.elapsed());

    let t0 = Instant::now();
    let r = louvain(&g, &LouvainConfig::default());
    report("Louvain", r.labels, t0.elapsed());

    let t0 = Instant::now();
    let r = lpa_native(&g, &LpaConfig::default());
    report("nu-LPA", r.labels, t0.elapsed());
}
