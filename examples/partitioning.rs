//! Graph partitioning with label propagation — the application the
//! paper's conclusion targets ("partitioning of large graphs. We plan to
//! look into this in the future"), implemented PuLP-style in
//! `nu_lpa::core::pulp`.
//!
//! Partitions a road network and a web crawl into k balanced parts and
//! reports edge cut and load balance against naive splits.
//!
//! ```text
//! cargo run --release --example partitioning
//! ```

use nu_lpa::core::{pulp_partition, PulpConfig};
use nu_lpa::graph::gen::{grid2d, web_crawl};
use nu_lpa::graph::permute::shuffle_vertices;
use nu_lpa::graph::Csr;
use nu_lpa::metrics::{cut_fraction, imbalance};
use std::time::Instant;

fn demo(name: &str, g: &Csr, k: usize) {
    println!(
        "\n{name}: {} vertices, {} edges, k = {k}",
        g.num_vertices(),
        g.num_edges() / 2
    );

    // naive contiguous split (what you get for free from CSR order)
    let chunk = g.num_vertices().div_ceil(k);
    let naive: Vec<u32> = (0..g.num_vertices()).map(|v| (v / chunk) as u32).collect();
    println!(
        "  naive contiguous: cut fraction {:.3}, imbalance {:.3}",
        cut_fraction(g, &naive),
        imbalance(&naive, k)
    );

    let t0 = Instant::now();
    let r = pulp_partition(
        g,
        &PulpConfig {
            num_parts: k,
            balance: 1.05,
            ..Default::default()
        },
    );
    println!(
        "  LPA-refined:      cut fraction {:.3}, imbalance {:.3}  ({} sweeps, {:.1?})",
        cut_fraction(g, &r.parts),
        imbalance(&r.parts, k),
        r.iterations,
        t0.elapsed()
    );
}

fn main() {
    // Shuffle the lattice's vertex ids: real OSM exports are not laid out
    // row-by-row, so a contiguous id split is a poor partition — exactly
    // the situation a partitioner must fix.
    let (road, _) = shuffle_vertices(&grid2d(120, 120, 1.0, 3), 9);
    demo("road network (shuffled ids)", &road, 8);

    let web = web_crawl(15_000, 8, 0.08, 5);
    demo("web crawl", &web, 16);

    println!("\nlabel propagation refines a partition at LPA speed: each sweep is");
    println!("one pass over the edges, and the size constraint keeps parts balanced.");
}
