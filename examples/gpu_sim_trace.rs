//! Run ν-LPA on the simulated A100 and inspect the execution profile:
//! waves, simulated cycles, divergence, probe counts — the quantities
//! behind the paper's optimization figures.
//!
//! ```text
//! cargo run --release --example gpu_sim_trace
//! ```

use nu_lpa::core::{lpa_gpu, LpaConfig};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::hashtab::ProbeStrategy;
use nu_lpa::metrics::{community_count, modularity};
use nu_lpa::simt::DeviceConfig;

fn main() {
    let g = web_crawl(30_000, 8, 0.08, 3);
    println!(
        "graph: {} vertices, {} edges | device: A100 preset ({} SMs, {} resident threads)",
        g.num_vertices(),
        g.num_edges(),
        DeviceConfig::a100().sm_count,
        DeviceConfig::a100().resident_threads(),
    );

    println!(
        "\n{:<18} {:>12} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "probe strategy", "sim cycles", "waves", "probes", "diverg.", "iters", "Q"
    );
    for probe in ProbeStrategy::all() {
        let cfg = LpaConfig::default().with_probe(probe);
        let r = lpa_gpu(&g, &cfg);
        println!(
            "{:<18} {:>12} {:>8} {:>12} {:>9.1}% {:>8} {:>8.4}",
            probe.label(),
            r.stats.sim_cycles,
            r.stats.waves,
            r.stats.probes,
            100.0 * r.stats.divergence_ratio(),
            r.iterations,
            modularity(&g, &r.labels),
        );
    }

    let r = lpa_gpu(&g, &LpaConfig::default());
    println!("\ndefault run: {} communities", community_count(&r.labels));
    println!(
        "memory traffic: {} global reads, {} global writes, {} atomics",
        r.stats.global_reads, r.stats.global_writes, r.stats.atomics
    );
    println!(
        "lane cycles {} + idle cycles {} over {} threads",
        r.stats.lane_cycles, r.stats.idle_cycles, r.stats.threads
    );
    println!("changes per iteration: {:?}", r.changed_per_iter);
}
