//! The LPA application toolbox in one tour — the use cases the paper's
//! introduction motivates: graph coarsening (Valejo et al.), multilevel
//! partitioning, and community-based link prediction (Mohan et al.).
//!
//! ```text
//! cargo run --release --example applications
//! ```

use nu_lpa::core::{
    coarsen_lpa, lpa_native, pulp_partition_weighted, top_k_predictions, CoarsenConfig, LpaConfig,
    PulpConfig,
};
use nu_lpa::graph::gen::web_crawl;
use nu_lpa::metrics::{cut_fraction, imbalance};
use std::time::Instant;

fn main() {
    let g = web_crawl(20_000, 8, 0.08, 21);
    println!(
        "web crawl: {} pages, {} links",
        g.num_vertices(),
        g.num_edges() / 2
    );

    // 1. Coarsening: collapse to ~200 super-vertices under a weight cap.
    let t0 = Instant::now();
    let hierarchy = coarsen_lpa(
        &g,
        &CoarsenConfig {
            target_vertices: 200,
            max_weight_factor: 2.0,
            ..Default::default()
        },
    );
    let coarsest = hierarchy.coarsest().expect("graph is large enough");
    println!(
        "\n[coarsening] {} levels: {} -> {} vertices in {:.1?}",
        hierarchy.levels.len(),
        g.num_vertices(),
        coarsest.num_vertices(),
        t0.elapsed()
    );
    for (i, level) in hierarchy.levels.iter().enumerate() {
        let max_w = level.vertex_weights.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  level {}: {} vertices, heaviest super-vertex holds {:.0} pages",
            i,
            level.graph.num_vertices(),
            max_w
        );
    }

    // 2. Multilevel partitioning: partition the coarse graph *by weight*
    //    (super-vertices carry different page counts), project back.
    let k = 8;
    let t0 = Instant::now();
    let coarse_parts = pulp_partition_weighted(
        coarsest,
        &PulpConfig {
            num_parts: k,
            ..Default::default()
        },
        Some(&hierarchy.levels.last().unwrap().vertex_weights),
    );
    let fine_parts = hierarchy.project(&coarse_parts.parts);
    println!(
        "\n[multilevel partitioning] {k} parts via the coarse graph in {:.1?}:",
        t0.elapsed()
    );
    println!(
        "  cut fraction {:.3}, imbalance {:.3} (coarse-level decisions projected to all {} pages)",
        cut_fraction(&g, &fine_parts),
        imbalance(&nu_lpa::metrics::compact_labels(&fine_parts).0, k),
        g.num_vertices()
    );

    // 3. Link prediction: most likely missing links, community-aware.
    let t0 = Instant::now();
    let labels = lpa_native(&g, &LpaConfig::default()).labels;
    let preds = top_k_predictions(&g, &labels, 5);
    println!(
        "\n[link prediction] top 5 candidate links in {:.1?}:",
        t0.elapsed()
    );
    for (u, v, s) in preds {
        let same = labels[u as usize] == labels[v as usize];
        println!(
            "  {u} -- {v}  score {s:.3} ({}) ",
            if same {
                "same community"
            } else {
                "cross-community"
            }
        );
    }
}
