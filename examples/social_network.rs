//! Social-network scenario: detect communities in a planted-partition
//! graph (the com-LiveJournal/com-Orkut stand-in) and score them against
//! the ground truth with NMI — the criterion under which the paper cites
//! LPA as strong despite its moderate modularity.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use nu_lpa::baselines::{louvain, LouvainConfig};
use nu_lpa::core::{lpa_native, LpaConfig};
use nu_lpa::graph::gen::planted_partition;
use nu_lpa::metrics::{community_count, modularity, nmi};
use std::time::Instant;

fn main() {
    // 12 communities of heavy-tailed sizes, ~14 intra-community and ~2
    // inter-community neighbours per member.
    let sizes = [400, 350, 300, 250, 200, 150, 120, 100, 80, 60, 50, 40];
    let pp = planted_partition(&sizes, 14.0, 2.0, 42);
    let g = &pp.graph;
    println!(
        "social graph: {} members, {} friendships, {} planted communities",
        g.num_vertices(),
        g.num_edges() / 2,
        sizes.len()
    );

    let t0 = Instant::now();
    let lpa = lpa_native(g, &LpaConfig::default());
    let t_lpa = t0.elapsed();

    let t0 = Instant::now();
    let lv = louvain(g, &LouvainConfig::default());
    let t_lv = t0.elapsed();

    println!(
        "\n{:<10} {:>8} {:>10} {:>10} {:>12}",
        "method", "k", "Q", "NMI", "time"
    );
    println!(
        "{:<10} {:>8} {:>10.4} {:>10.4} {:>9.2?}",
        "nu-LPA",
        community_count(&lpa.labels),
        modularity(g, &lpa.labels),
        nmi(&lpa.labels, &pp.ground_truth),
        t_lpa
    );
    println!(
        "{:<10} {:>8} {:>10.4} {:>10.4} {:>9.2?}",
        "Louvain",
        community_count(&lv.labels),
        modularity(g, &lv.labels),
        nmi(&lv.labels, &pp.ground_truth),
        t_lv
    );

    println!(
        "\nthe paper's trade-off in miniature: LPA trades a little modularity for speed,\n\
         while NMI against the planted truth stays comparable."
    );
}
