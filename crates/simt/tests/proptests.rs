//! Property-based tests for the SIMT simulator.

use nulpa_simt::{CostModel, DeferredStore, DeviceConfig, LaneMeter, WaveScheduler, Width};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_item_runs_exactly_once_any_device(
        n_items in 0usize..5000,
        sm in 1usize..8,
        tps in 1usize..8,
    ) {
        let device = DeviceConfig {
            sm_count: sm,
            warp_size: 4,
            block_size: 4,
            max_threads_per_sm: tps * 4,
            warp_schedulers: 1,
            shared_mem_per_sm: 1024,
            saturation_warps_per_sm: 1,
        };
        let sched = WaveScheduler::new(device, CostModel::default_gpu());
        let items: Vec<usize> = (0..n_items).collect();
        let mut hits = vec![0u8; n_items];
        let stats = sched.launch_thread_per_item(&items, |i, _| hits[i] += 1, |_| {});
        prop_assert!(hits.iter().all(|&h| h == 1));
        prop_assert_eq!(stats.threads as usize, n_items);
        let expected_waves = n_items.div_ceil(device.resident_threads().max(1));
        prop_assert_eq!(stats.waves as usize, expected_waves);
    }

    #[test]
    fn sim_cycles_bounded_by_work(
        costs in proptest::collection::vec(0u64..200, 1..300),
    ) {
        let sched = WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu());
        let items: Vec<usize> = (0..costs.len()).collect();
        let stats = sched.launch_thread_per_item(
            &items,
            |i, m| m.alu(&CostModel::default_gpu(), costs[i]),
            |_| {},
        );
        // duration can never exceed total lockstep work nor undercut the
        // single slowest lane
        let max_cost = *costs.iter().max().unwrap();
        prop_assert!(stats.sim_cycles >= max_cost);
        prop_assert!(stats.sim_cycles <= stats.lane_cycles + stats.idle_cycles);
        // busy work is conserved exactly
        prop_assert_eq!(stats.lane_cycles, costs.iter().sum::<u64>());
    }

    #[test]
    fn deferred_store_last_write_wins(
        init in proptest::collection::vec(0u32..100, 1..50),
        writes in proptest::collection::vec((0usize..50, 0u32..100), 0..100),
    ) {
        let n = init.len();
        let mut store = DeferredStore::new(init.clone());
        let mut expected = init.clone();
        for &(i, v) in writes.iter().filter(|(i, _)| *i < n) {
            // reads always see the committed (pre-wave) state
            prop_assert_eq!(store.get(i), expected[i]);
            store.stage(i, v);
        }
        // model last-write-wins
        let mut last: Vec<u32> = init;
        for &(i, v) in writes.iter().filter(|(i, _)| *i < n) {
            last[i] = v;
        }
        store.flush();
        for (i, &want) in last.iter().enumerate() {
            prop_assert_eq!(store.get(i), want);
        }
        expected.clear(); // silence unused-assignment lint path
    }

    #[test]
    fn flush_matches_sequential_replay_and_collision_accounting(
        init in proptest::collection::vec(0u32..100, 1..40),
        waves in proptest::collection::vec(
            proptest::collection::vec((0usize..40, 0u32..100), 0..60),
            1..6,
        ),
    ) {
        // Across several waves, flush must (a) equal a sequential
        // last-write-wins replay of each wave's stream and (b) count
        // collisions exactly as the reference `writes - distinct cells`
        // accounting per wave, cumulatively.
        let n = init.len();
        let mut store = DeferredStore::new(init.clone());
        let mut replay = init;
        let mut expected_collisions = 0u64;
        for wave in &waves {
            let mut distinct = std::collections::HashSet::new();
            let mut writes = 0u64;
            for &(i, v) in wave.iter().filter(|(i, _)| *i < n) {
                store.stage(i, v);
                replay[i] = v;
                distinct.insert(i);
                writes += 1;
            }
            store.flush();
            expected_collisions += writes - distinct.len() as u64;
            prop_assert_eq!(store.as_slice(), replay.as_slice());
            prop_assert_eq!(store.staged_collisions(), expected_collisions);
        }
    }

    #[test]
    fn reduction_cost_is_exactly_log2_steps(
        count in 2usize..5000,
    ) {
        // charge_reduction models a tree reduction: ceil(log2(count))
        // steps, each costing one shared access + one ALU op = 2 cycles
        // on every participating lane, in lockstep.
        let sched = WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu());
        let stats = sched.launch_block_per_item(
            &[()],
            |_, ctx| ctx.charge_reduction(count),
            |_| {},
        );
        let steps = (usize::BITS - (count - 1).leading_zeros()) as u64;
        prop_assert_eq!(steps, (count as f64).log2().ceil() as u64);
        prop_assert_eq!(stats.sim_cycles, 2 * steps);
    }

    #[test]
    fn lane_meter_counters_add_up(
        ops in proptest::collection::vec((0u8..4, 0usize..10_000), 0..200),
    ) {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        let (mut reads, mut writes, mut atomics) = (0u64, 0u64, 0u64);
        for &(kind, addr) in &ops {
            match kind {
                0 => {
                    m.global_read(&c, addr, Width::W32);
                    reads += 1;
                }
                1 => {
                    m.global_write(&c, addr, Width::W32);
                    writes += 1;
                }
                2 => {
                    m.atomic(&c, addr, Width::W32);
                    atomics += 1;
                }
                _ => m.alu(&c, 1),
            }
        }
        prop_assert_eq!(m.global_reads, reads);
        prop_assert_eq!(m.global_writes, writes);
        prop_assert_eq!(m.atomics, atomics);
        // every op costs something except zero-count alu
        let min_cost = (reads + writes + atomics) * c.global_near;
        prop_assert!(m.cycles >= min_cost);
    }

    #[test]
    fn block_launch_conserves_strided_work(
        count in 0usize..500,
    ) {
        let sched = WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu());
        let mut seen = vec![false; count];
        sched.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.for_each_strided(count, |k, m| {
                    seen[k] = true;
                    m.alu(&CostModel::default_gpu(), 1);
                });
            },
            |_| {},
        );
        prop_assert!(seen.iter().all(|&s| s));
    }
}
