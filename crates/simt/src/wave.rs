//! Wave scheduler: lockstep kernel launches.
//!
//! A *wave* is the set of threads (or blocks) co-resident on the device at
//! one time — on the A100 preset, 108 SMs × 2048 threads. The paper's
//! community-swap pathology (§4.1) arises because co-resident symmetric
//! vertices read each other's *pre-wave* labels; pair this scheduler with
//! [`crate::deferred::DeferredStore`] and that visibility rule holds
//! exactly: the `wave_end` callback is the flush point.
//!
//! The simulator executes lanes serially (deterministically) while
//! *modelling* parallel lockstep timing: each lane meters its own cost,
//! a warp costs the max of its lanes, a wave the max of its warps, and the
//! kernel the sum of its waves. Atomics performed by kernels against real
//! `AtomicU32`/[`crate::atomics::AtomicF32`] cells are immediate, as on
//! hardware.

use crate::cost::{CostModel, LaneMeter};
use crate::device::DeviceConfig;
use crate::stats::KernelStats;
use nulpa_obs::{track, NullSink, TraceSink, Value};
#[cfg(feature = "sancheck")]
use nulpa_sancheck::hooks;

/// Lockstep kernel launcher for a fixed device.
#[derive(Clone, Copy, Debug)]
pub struct WaveScheduler {
    /// Device being simulated.
    pub device: DeviceConfig,
    /// Cost model charged to lanes.
    pub cost: CostModel,
}

impl WaveScheduler {
    /// Create a scheduler; panics on an invalid device.
    pub fn new(device: DeviceConfig, cost: CostModel) -> Self {
        device.validate().expect("invalid device config");
        WaveScheduler { device, cost }
    }

    /// Thread-per-item launch: one lane per item (the paper's
    /// thread-per-vertex kernel for low-degree vertices).
    ///
    /// `kernel(item, lane)` is invoked once per item; `wave_end(wave_idx)`
    /// fires after all items of a wave ran — flush deferred stores there.
    pub fn launch_thread_per_item<T, F, G>(
        &self,
        items: &[T],
        kernel: F,
        wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut LaneMeter),
        G: FnMut(u64),
    {
        self.launch_thread_per_item_traced(
            "kernel:thread",
            0,
            &mut NullSink,
            items,
            kernel,
            wave_end,
        )
    }

    /// [`Self::launch_thread_per_item`] with tracing: emits a kernel span
    /// named `name` starting at simulated cycle `t0`, one span per wave
    /// (warp-cost max/sum and divergence in the args), and the launch's
    /// probe-length and warp-cost histograms into `sink`.
    pub fn launch_thread_per_item_traced<T, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        mut kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut LaneMeter),
        G: FnMut(u64),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_threads();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let mut meters: Vec<LaneMeter> = Vec::with_capacity(wave_items.len());
            for (_i, &it) in wave_items.iter().enumerate() {
                #[cfg(feature = "sancheck")]
                hooks::lane_ctx((_i / warp) as u32, (_i % warp) as u32);
                let mut m = LaneMeter::new();
                kernel(it, &mut m);
                meters.push(m);
            }
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for warp_lanes in meters.chunks(warp) {
                let c = stats.fold_warp(warp_lanes);
                critical = critical.max(c);
                warp_total += c;
            }
            let dur = self.wave_duration(critical, warp_total);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64);
            // The epoch advances after the user's wave_end callback so that
            // DeferredStore::flush commits land in the wave they belong to.
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// Block-per-item launch: one cooperative block per item (the paper's
    /// block-per-vertex kernel for high-degree vertices).
    pub fn launch_block_per_item<T, F, G>(&self, items: &[T], kernel: F, wave_end: G) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut BlockCtx<'_>),
        G: FnMut(u64),
    {
        self.launch_block_per_item_traced("kernel:block", 0, &mut NullSink, items, kernel, wave_end)
    }

    /// [`Self::launch_block_per_item`] with tracing; see
    /// [`Self::launch_thread_per_item_traced`] for the span layout.
    pub fn launch_block_per_item_traced<T, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        mut kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut BlockCtx<'_>),
        G: FnMut(u64),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_blocks();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for (_b, &it) in wave_items.iter().enumerate() {
                #[cfg(feature = "sancheck")]
                hooks::block_ctx(_b as u32);
                let mut ctx = BlockCtx::new(self.device.block_size, warp, &self.cost);
                kernel(it, &mut ctx);
                // Lanes that never executed a metered op did no work in
                // this block: drop any barrier-alignment cycles they were
                // assigned so partially-filled trailing blocks are not
                // charged for phantom lanes.
                ctx.zero_untouched();
                let mut block_cost = 0u64;
                for warp_lanes in ctx.lanes.chunks(warp) {
                    let c = stats.fold_warp(warp_lanes);
                    block_cost = block_cost.max(c);
                    warp_total += c;
                }
                critical = critical.max(block_cost);
            }
            let dur = self.wave_duration(critical, warp_total);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64);
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// Close the kernel span and flush the launch's histograms.
    fn finish_kernel_span(
        &self,
        sink: &mut dyn TraceSink,
        name: &str,
        t0: u64,
        stats: &KernelStats,
    ) {
        if !sink.is_enabled() {
            return;
        }
        sink.span_end(
            track::KERNEL,
            name,
            t0 + stats.sim_cycles,
            &[
                ("waves", stats.waves.into()),
                ("threads", stats.threads.into()),
                ("sim_cycles", stats.sim_cycles.into()),
                ("divergence", stats.divergence_ratio().into()),
                ("probes", stats.probes.into()),
                ("atomics", stats.atomics.into()),
                ("global_reads", stats.global_reads.into()),
                ("global_writes", stats.global_writes.into()),
            ],
        );
        if !stats.probe_hist.is_empty() {
            sink.histogram("probe_len", &stats.probe_hist);
        }
        if !stats.warp_cost_hist.is_empty() {
            sink.histogram("warp_cost", &stats.warp_cost_hist);
        }
    }

    /// Duration of one wave under a latency/throughput/occupancy model.
    ///
    /// Each warp occupies its SM's issue pipeline for its lockstep cost
    /// (idle lanes included — that is what lockstep means), and the device
    /// issues warps on `sm_count × warp_schedulers` pipelines. A wave
    /// therefore lasts at least its critical path (the slowest warp/block)
    /// *and* at least the aggregate warp-cycles divided by the effective
    /// issue width. The effective width degrades below full **occupancy**:
    /// memory-bound kernels hide latency by switching among resident
    /// warps, so a device running at a fraction of its maximum resident
    /// warps only achieves that fraction of its issue throughput (down to
    /// a floor of one warp per SM). This is the penalty that makes
    /// shared-memory-hungry kernels unattractive — the paper's
    /// shared-memory-hashtable experiment (§4.2) hinges on it. Without the
    /// throughput term entirely, underfilled blocks would look free and a
    /// block-per-vertex kernel would always "win", erasing the Fig. 4
    /// trade-off.
    fn wave_duration(&self, critical: u64, warp_total: u64) -> u64 {
        let d = &self.device;
        let resident_warps = (d.max_threads_per_sm / d.warp_size).max(1); // per SM
        let occupancy = (resident_warps as f64 / d.saturation_warps_per_sm.max(1) as f64).min(1.0);
        let width = (d.issue_width() as f64 * occupancy).max(1.0);
        critical.max((warp_total as f64 / width).ceil() as u64)
    }
}

/// Pre-wave counter snapshot, used to attribute per-wave deltas (lane vs
/// idle cycles → wave-local divergence) to the wave's trace span.
#[derive(Clone, Copy)]
struct WaveSnapshot {
    lane_cycles: u64,
    idle_cycles: u64,
}

impl WaveSnapshot {
    fn of(stats: &KernelStats) -> Self {
        WaveSnapshot {
            lane_cycles: stats.lane_cycles,
            idle_cycles: stats.idle_cycles,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_wave(
        self,
        sink: &mut dyn TraceSink,
        wave_t0: u64,
        dur: u64,
        items: usize,
        warp_cost_max: u64,
        warp_cost_sum: u64,
        stats: &KernelStats,
    ) {
        if !sink.is_enabled() {
            return;
        }
        let lane = stats.lane_cycles - self.lane_cycles;
        let idle = stats.idle_cycles - self.idle_cycles;
        let divergence = if lane + idle == 0 {
            0.0
        } else {
            idle as f64 / (lane + idle) as f64
        };
        sink.span_begin(track::WAVE, "wave", wave_t0, &[]);
        sink.span_end(
            track::WAVE,
            "wave",
            wave_t0 + dur,
            &[
                ("items", items.into()),
                ("warp_cost_max", warp_cost_max.into()),
                ("warp_cost_sum", warp_cost_sum.into()),
                ("divergence", Value::F64(divergence)),
            ],
        );
    }
}

/// Execution context of one cooperative thread block.
pub struct BlockCtx<'a> {
    /// Per-lane meters (length = block size).
    pub lanes: Vec<LaneMeter>,
    /// Cost model in effect.
    pub cost: &'a CostModel,
    warp_size: usize,
    /// Lanes that executed at least one metered op. Lanes never touched
    /// are treated as not launched: their cycles (including any
    /// barrier-alignment charge) are zeroed when the block retires.
    touched: Vec<bool>,
    /// Lanes still participating in barriers. All lanes start active;
    /// [`Self::set_lane_active`] models an early `return`.
    active: Vec<bool>,
}

impl<'a> BlockCtx<'a> {
    fn new(block_size: usize, warp_size: usize, cost: &'a CostModel) -> Self {
        BlockCtx {
            lanes: vec![LaneMeter::new(); block_size],
            cost,
            warp_size,
            touched: vec![false; block_size],
            active: vec![true; block_size],
        }
    }

    /// Number of lanes in the block.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Warp width of the simulated device.
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Mutable access to lane `l`'s meter.
    pub fn lane(&mut self, l: usize) -> &mut LaneMeter {
        self.touched[l] = true;
        #[cfg(feature = "sancheck")]
        hooks::lane_ctx((l / self.warp_size) as u32, (l % self.warp_size) as u32);
        &mut self.lanes[l]
    }

    /// Mark lane `l` as having exited the kernel (`true` re-admits it).
    /// An inactive lane no longer participates in barriers — on hardware,
    /// a `__syncthreads()` reached by only part of a warp is undefined
    /// behaviour, which the `sancheck` checker reports as
    /// barrier-divergence.
    pub fn set_lane_active(&mut self, l: usize, on: bool) {
        self.active[l] = on;
    }

    /// Whether lane `l` still participates in barriers.
    pub fn lane_active(&self, l: usize) -> bool {
        self.active[l]
    }

    /// Grid-stride distribution: work unit `k` is handled by lane
    /// `k % block_size` — the access pattern of the paper's
    /// block-per-vertex neighbour scan.
    pub fn for_each_strided<F>(&mut self, count: usize, mut f: F)
    where
        F: FnMut(usize, &mut LaneMeter),
    {
        let b = self.lanes.len();
        for k in 0..count {
            let l = k % b;
            self.touched[l] = true;
            #[cfg(feature = "sancheck")]
            hooks::lane_ctx((l / self.warp_size) as u32, (l % self.warp_size) as u32);
            f(k, &mut self.lanes[l]);
        }
    }

    /// Charge a block-wide tree reduction over `count` elements
    /// (`ceil(log2(count))` shared-memory steps on every participating
    /// lane), used for `hashtableMaxKey` (Algorithm 1 line `maxkey`) and
    /// the ΔN block reduction.
    pub fn charge_reduction(&mut self, count: usize) {
        if count <= 1 {
            return;
        }
        let steps = usize::BITS - (count - 1).leading_zeros();
        let active = count.min(self.lanes.len());
        for l in 0..active {
            self.touched[l] = true;
            for _ in 0..steps {
                let c = self.cost;
                self.lanes[l].shared(c, crate::cost::Width::W32);
                self.lanes[l].alu(c, 1);
            }
        }
    }

    /// `__syncthreads()`: every *active* lane waits for the slowest active
    /// lane. Waiting time is charged as busy cycles on the waiting lanes
    /// (it occupies the SM). Lanes marked inactive via
    /// [`Self::set_lane_active`] have exited and are not aligned — if only
    /// part of a warp reaches the barrier the `sancheck` checker flags it.
    pub fn barrier(&mut self) {
        #[cfg(feature = "sancheck")]
        hooks::barrier(&self.active, self.warp_size);
        let max = self
            .lanes
            .iter()
            .zip(&self.active)
            .filter(|&(_, &a)| a)
            .map(|(l, _)| l.cycles)
            .max()
            .unwrap_or(0);
        for (l, &a) in self.lanes.iter_mut().zip(&self.active) {
            if a {
                l.cycles = max;
            }
        }
    }

    /// Reset lanes that never executed a metered op (see `touched`).
    fn zero_untouched(&mut self) {
        for (m, &t) in self.lanes.iter_mut().zip(&self.touched) {
            if !t {
                *m = LaneMeter::new();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Width;

    fn sched() -> WaveScheduler {
        WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu())
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let s = sched();
        let items: Vec<usize> = (0..1000).collect();
        let mut seen = vec![0u32; 1000];
        s.launch_thread_per_item(&items, |it, _| seen[it] += 1, |_| {});
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn wave_count_matches_capacity() {
        let s = sched(); // tiny: 64 resident threads
        let items: Vec<usize> = (0..130).collect();
        let stats = s.launch_thread_per_item(&items, |_, _| {}, |_| {});
        assert_eq!(stats.waves, 3); // 64 + 64 + 2
        assert_eq!(stats.threads, 130);
    }

    #[test]
    fn wave_end_fires_per_wave_in_order() {
        let s = sched();
        let items: Vec<usize> = (0..65).collect();
        let mut ends = Vec::new();
        s.launch_thread_per_item(&items, |_, _| {}, |w| ends.push(w));
        assert_eq!(ends, vec![0, 1]);
    }

    #[test]
    fn sim_cycles_take_max_over_lanes() {
        let s = sched();
        // one warp (4 lanes in tiny config): one lane does 10 ALU, rest do 1
        let items: Vec<usize> = (0..4).collect();
        let stats = s.launch_thread_per_item(
            &items,
            |it, m| {
                let n = if it == 0 { 10 } else { 1 };
                m.alu(&CostModel::default_gpu(), n);
            },
            |_| {},
        );
        assert_eq!(stats.sim_cycles, 10);
        assert_eq!(stats.lane_cycles, 13);
    }

    #[test]
    fn idle_cycles_are_max_minus_lane() {
        let s = sched();
        let items: Vec<usize> = (0..4).collect();
        let stats = s.launch_thread_per_item(
            &items,
            |it, m| m.alu(&CostModel::default_gpu(), if it == 0 { 10 } else { 1 }),
            |_| {},
        );
        // idle = (10-10) + (10-1)*3 = 27
        assert_eq!(stats.idle_cycles, 27);
    }

    #[test]
    fn empty_launch_is_free() {
        let s = sched();
        let stats = s.launch_thread_per_item(&[] as &[usize], |_, _| {}, |_| {});
        assert_eq!(stats, KernelStats::new());
    }

    #[test]
    fn block_launch_runs_each_item_with_full_block() {
        let s = sched(); // block_size 8
        let items = [0usize, 1, 2];
        let mut lanes_seen = Vec::new();
        let stats =
            s.launch_block_per_item(&items, |_, ctx| lanes_seen.push(ctx.num_lanes()), |_| {});
        assert_eq!(lanes_seen, vec![8, 8, 8]);
        assert_eq!(stats.threads, 24);
    }

    #[test]
    fn block_waves_respect_resident_blocks() {
        let s = sched(); // tiny: 2 SMs * (32/8) = 8 resident blocks
        let items: Vec<usize> = (0..17).collect();
        let stats = s.launch_block_per_item(&items, |_, _| {}, |_| {});
        assert_eq!(stats.waves, 3);
    }

    #[test]
    fn strided_distribution_covers_all_units() {
        let s = sched();
        let mut hits = [0u32; 20];
        s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.for_each_strided(20, |k, m| {
                    hits[k] += 1;
                    m.alu(&CostModel::default_gpu(), 1);
                })
            },
            |_| {},
        );
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn strided_work_balances_lanes() {
        let s = sched(); // block 8
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.for_each_strided(16, |_, m| m.alu(&CostModel::default_gpu(), 1));
            },
            |_| {},
        );
        // 16 units over 8 lanes = 2 each; perfectly balanced
        assert_eq!(stats.idle_cycles, 0);
        assert_eq!(stats.sim_cycles, 2);
    }

    #[test]
    fn barrier_aligns_lanes() {
        let s = sched();
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                let c = CostModel::default_gpu();
                ctx.lane(0).alu(&c, 9);
                ctx.barrier();
                // after barrier everyone is at 9; add one more on lane 1
                ctx.lane(1).alu(&c, 1);
            },
            |_| {},
        );
        assert_eq!(stats.sim_cycles, 10);
    }

    #[test]
    fn untouched_trailing_lanes_are_idle_not_busy() {
        // A block that only uses lane 0 and then hits a barrier must not
        // charge the 7 phantom lanes with lane 0's cycles: the barrier
        // aligns them while the block runs, but lanes that never executed
        // a metered op are dropped when the block retires.
        let s = sched(); // block 8, warp 4
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.lane(0).alu(&CostModel::default_gpu(), 9);
                ctx.barrier();
            },
            |_| {},
        );
        assert_eq!(stats.lane_cycles, 9); // lane 0 only
        assert_eq!(stats.idle_cycles, 27); // 3 idle lanes in warp 0; warp 1 empty
        assert_eq!(stats.sim_cycles, 9);
    }

    #[test]
    fn barrier_skips_explicitly_inactive_lanes() {
        // Lane 1 does some work and then exits (early return); the
        // barrier must not drag it up to the slowest active lane.
        let s = sched();
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                let c = CostModel::default_gpu();
                ctx.lane(1).alu(&c, 5);
                ctx.set_lane_active(1, false);
                assert!(!ctx.lane_active(1));
                ctx.lane(0).alu(&c, 9);
                ctx.barrier();
            },
            |_| {},
        );
        // lane 0 at 9, lane 1 keeps its 5; untouched lanes dropped
        assert_eq!(stats.lane_cycles, 14);
        assert_eq!(stats.sim_cycles, 9);
    }

    #[test]
    fn reduction_charges_log_steps() {
        let s = sched();
        let stats = s.launch_block_per_item(&[()], |_, ctx| ctx.charge_reduction(8), |_| {});
        // log2(8) = 3 steps; each step: shared (1) + alu (1) = 2 cycles
        assert_eq!(stats.sim_cycles, 6);
    }

    #[test]
    fn reduction_of_one_is_free() {
        let s = sched();
        let stats = s.launch_block_per_item(&[()], |_, ctx| ctx.charge_reduction(1), |_| {});
        assert_eq!(stats.sim_cycles, 0);
    }

    #[test]
    fn low_occupancy_reduces_throughput() {
        // two devices identical except for occupancy: the restricted one
        // must report proportionally more simulated cycles on a
        // throughput-bound (many equal warps) workload
        let mut full = DeviceConfig::a100();
        full.warp_size = 4; // keep the test small
        full.block_size = 8;
        let restricted = full.with_shared_mem_per_thread(2048); // 82 threads/SM
        let items: Vec<usize> = (0..200_000).collect();
        let run = |d: DeviceConfig| {
            let s = WaveScheduler::new(d, CostModel::default_gpu());
            s.launch_thread_per_item(&items, |_, m| m.alu(&CostModel::default_gpu(), 10), |_| {})
                .sim_cycles
        };
        let c_full = run(full);
        let c_restricted = run(restricted);
        assert!(
            c_restricted > 2 * c_full,
            "restricted {c_restricted} vs full {c_full}"
        );
    }

    #[test]
    fn traced_launch_emits_kernel_and_wave_spans() {
        let s = sched(); // tiny: 64 resident threads
        let items: Vec<usize> = (0..130).collect();
        let mut sink = nulpa_obs::RecordingSink::new();
        let stats = s.launch_thread_per_item_traced(
            "kernel:test",
            100,
            &mut sink,
            &items,
            |_, m| m.alu(&CostModel::default_gpu(), 1),
            |_| {},
        );
        // 1 kernel span + 3 wave spans
        assert_eq!(sink.span_counts(), (4, 4, 0));
        assert_eq!(sink.begin_names()[0], "kernel:test");
        assert_eq!(sink.begin_names()[1..], ["wave", "wave", "wave"]);
        // kernel span ends at t0 + sim_cycles
        let last = sink.events.last().unwrap();
        match last {
            nulpa_obs::TraceEvent::End { name, ts, .. } => {
                assert_eq!(name, "kernel:test");
                assert_eq!(*ts, 100 + stats.sim_cycles);
            }
            other => panic!("expected kernel End, got {other:?}"),
        }
        // warp-cost histogram flushed (probe hist empty: no probes made)
        assert!(sink.hists.contains_key("warp_cost"));
        assert!(!sink.hists.contains_key("probe_len"));
        assert_eq!(sink.hists["warp_cost"].count, stats.warp_cost_hist.count);
    }

    #[test]
    fn traced_and_untraced_launch_agree() {
        let s = sched();
        let items: Vec<usize> = (0..100).collect();
        let kernel = |it: usize, m: &mut LaneMeter| {
            m.alu(&CostModel::default_gpu(), (it % 7) as u64);
            m.global_read(&CostModel::default_gpu(), it * 3, Width::W32);
        };
        let plain = s.launch_thread_per_item(&items, kernel, |_| {});
        let mut sink = nulpa_obs::RecordingSink::new();
        let traced = s.launch_thread_per_item_traced("k", 0, &mut sink, &items, kernel, |_| {});
        assert_eq!(plain, traced);
    }

    #[test]
    fn block_traced_launch_spans() {
        let s = sched(); // 8 resident blocks
        let items: Vec<usize> = (0..9).collect();
        let mut sink = nulpa_obs::RecordingSink::new();
        let stats = s.launch_block_per_item_traced(
            "kernel:block",
            0,
            &mut sink,
            &items,
            |_, ctx| ctx.for_each_strided(4, |_, m| m.alu(&CostModel::default_gpu(), 2)),
            |_| {},
        );
        assert_eq!(stats.waves, 2);
        assert_eq!(sink.span_counts(), (3, 3, 0)); // kernel + 2 waves
    }

    #[test]
    fn probe_done_reaches_kernel_hist() {
        let s = sched();
        let stats = s.launch_thread_per_item(
            &[0usize, 1, 2],
            |it, m| {
                m.probe();
                m.probe_done(1 + it as u64);
            },
            |_| {},
        );
        assert_eq!(stats.probe_hist.count, 3);
        assert_eq!(stats.probe_hist.max, 3);
        assert_eq!(stats.probes, 3);
    }

    #[test]
    fn atomic_width_visible_in_stats() {
        let s = sched();
        let stats = s.launch_thread_per_item(
            &[0usize],
            |_, m| m.atomic(&CostModel::default_gpu(), 0, Width::W64),
            |_| {},
        );
        assert_eq!(stats.atomics, 1);
        assert!(stats.sim_cycles > 0);
    }
}
