//! Wave scheduler: lockstep kernel launches.
//!
//! A *wave* is the set of threads (or blocks) co-resident on the device at
//! one time — on the A100 preset, 108 SMs × 2048 threads. The paper's
//! community-swap pathology (§4.1) arises because co-resident symmetric
//! vertices read each other's *pre-wave* labels; pair this scheduler with
//! [`crate::deferred::DeferredStore`] and that visibility rule holds
//! exactly: the `wave_end` callback is the flush point.
//!
//! The simulator executes lanes serially (deterministically) while
//! *modelling* parallel lockstep timing: each lane meters its own cost,
//! a warp costs the max of its lanes, a wave the max of its warps, and the
//! kernel the sum of its waves. Atomics performed by kernels against real
//! `AtomicU32`/[`crate::atomics::AtomicF32`] cells are immediate, as on
//! hardware.

use crate::cost::{CostModel, LaneMeter};
use crate::device::DeviceConfig;
use crate::stats::KernelStats;
use nulpa_obs::{track, NullSink, TraceSink, Value};
#[cfg(feature = "sancheck")]
use nulpa_sancheck::hooks;

/// `true` while a sancheck checker is installed (sharded launches fall
/// back to serial execution so hook order stays deterministic).
#[inline]
fn checker_active() -> bool {
    #[cfg(feature = "sancheck")]
    {
        hooks::is_active()
    }
    #[cfg(not(feature = "sancheck"))]
    {
        false
    }
}

/// Report a lane's (warp, lane) context to the hazard checker; no-op
/// without the `sancheck` feature.
#[inline]
fn hook_lane_ctx(lane_idx: usize, warp: usize) {
    #[cfg(feature = "sancheck")]
    hooks::lane_ctx((lane_idx / warp) as u32, (lane_idx % warp) as u32);
    #[cfg(not(feature = "sancheck"))]
    let _ = (lane_idx, warp);
}

/// Report a block's index to the hazard checker; no-op without the
/// `sancheck` feature.
#[inline]
fn hook_block_ctx(block_idx: usize) {
    #[cfg(feature = "sancheck")]
    hooks::block_ctx(block_idx as u32);
    #[cfg(not(feature = "sancheck"))]
    let _ = block_idx;
}

/// Run `work` over contiguous `chunk_len`-sized chunks of `items`, one
/// scoped host thread per chunk, and return the results in chunk order.
/// A worker panic is re-raised on the calling thread.
fn run_chunks<T, R, W>(items: &[T], chunk_len: usize, work: W) -> Vec<R>
where
    T: Sync,
    R: Send,
    W: Fn(&[T]) -> R + Sync,
{
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || work(chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// Minimum lanes per host-thread chunk in a sharded thread-per-item wave;
/// waves smaller than `2 × this` stay on one host thread (spawn cost would
/// dominate the lane work).
const MIN_LANES_PER_CHUNK: usize = 16;

/// Lockstep kernel launcher for a fixed device.
#[derive(Clone, Copy, Debug)]
pub struct WaveScheduler {
    /// Device being simulated.
    pub device: DeviceConfig,
    /// Cost model charged to lanes.
    pub cost: CostModel,
    /// Host threads the sharded launches may use (1 = serial). The
    /// classic `launch_*_per_item` entry points ignore this and always
    /// run serially; only the `*_sharded` variants parallelise.
    pub threads: usize,
}

impl WaveScheduler {
    /// Create a scheduler; panics on an invalid device.
    pub fn new(device: DeviceConfig, cost: CostModel) -> Self {
        device.validate().expect("invalid device config");
        WaveScheduler {
            device,
            cost,
            threads: 1,
        }
    }

    /// Builder-style setter for the host-thread count used by the sharded
    /// launches (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Thread-per-item launch: one lane per item (the paper's
    /// thread-per-vertex kernel for low-degree vertices).
    ///
    /// `kernel(item, lane)` is invoked once per item; `wave_end(wave_idx)`
    /// fires after all items of a wave ran — flush deferred stores there.
    pub fn launch_thread_per_item<T, F, G>(
        &self,
        items: &[T],
        kernel: F,
        wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut LaneMeter),
        G: FnMut(u64),
    {
        self.launch_thread_per_item_traced(
            "kernel:thread",
            0,
            &mut NullSink,
            items,
            kernel,
            wave_end,
        )
    }

    /// [`Self::launch_thread_per_item`] with tracing: emits a kernel span
    /// named `name` starting at simulated cycle `t0`, one span per wave
    /// (warp-cost max/sum and divergence in the args), and the launch's
    /// probe-length and warp-cost histograms into `sink`.
    pub fn launch_thread_per_item_traced<T, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        mut kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut LaneMeter),
        G: FnMut(u64),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_threads();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let mut meters: Vec<LaneMeter> = Vec::with_capacity(wave_items.len());
            for (i, &it) in wave_items.iter().enumerate() {
                hook_lane_ctx(i, warp);
                let mut m = LaneMeter::new();
                kernel(it, &mut m);
                meters.push(m);
            }
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for warp_lanes in meters.chunks(warp) {
                let c = stats.fold_warp(warp_lanes);
                critical = critical.max(c);
                warp_total += c;
            }
            let dur = self.wave_duration(critical, warp_total);
            before.settle(&mut stats, critical, dur);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64);
            // The epoch advances after the user's wave_end callback so that
            // DeferredStore::flush commits land in the wave they belong to.
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// Block-per-item launch: one cooperative block per item (the paper's
    /// block-per-vertex kernel for high-degree vertices).
    pub fn launch_block_per_item<T, F, G>(&self, items: &[T], kernel: F, wave_end: G) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut BlockCtx<'_>),
        G: FnMut(u64),
    {
        self.launch_block_per_item_traced("kernel:block", 0, &mut NullSink, items, kernel, wave_end)
    }

    /// [`Self::launch_block_per_item`] with tracing; see
    /// [`Self::launch_thread_per_item_traced`] for the span layout.
    pub fn launch_block_per_item_traced<T, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        mut kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy,
        F: FnMut(T, &mut BlockCtx<'_>),
        G: FnMut(u64),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_blocks();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for (b, &it) in wave_items.iter().enumerate() {
                hook_block_ctx(b);
                let mut ctx = BlockCtx::new(self.device.block_size, warp, &self.cost);
                kernel(it, &mut ctx);
                // Lanes that never executed a metered op did no work in
                // this block: drop any barrier-alignment cycles they were
                // assigned so partially-filled trailing blocks are not
                // charged for phantom lanes.
                ctx.zero_untouched();
                let mut block_cost = 0u64;
                for warp_lanes in ctx.lanes.chunks(warp) {
                    let c = stats.fold_warp(warp_lanes);
                    block_cost = block_cost.max(c);
                    warp_total += c;
                }
                critical = critical.max(block_cost);
            }
            let dur = self.wave_duration(critical, warp_total);
            before.settle(&mut stats, critical, dur);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64);
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// Thread-per-item launch that may execute lanes on multiple host
    /// threads, with results bit-for-bit identical to the serial path.
    ///
    /// Lanes within a wave are independent by construction — reads see
    /// wave-start state, writes are staged — so the only ordering that can
    /// leak into results is the order in which staged writes are merged.
    /// The sharded launch pins that order: each wave is split into
    /// **contiguous** chunks of lanes, each chunk runs serially on one
    /// host thread against its own shard `S` (created by `make_shard`),
    /// and `wave_end` receives the shards **in chunk order**, which equals
    /// lane order. Concatenating the shards' staged writes therefore
    /// reproduces the serial staging order exactly, for any thread count.
    /// Per-lane meters are likewise collected in lane order and folded
    /// into warps serially, so `KernelStats` and trace spans are
    /// unchanged.
    ///
    /// Falls back to serial execution (one shard, identical results) when
    /// `threads <= 1` or a `sancheck` checker is installed — the checker's
    /// shadow state tracks one lane at a time and hooks would interleave
    /// nondeterministically across host threads.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_thread_per_item_sharded_traced<T, S, M, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        make_shard: M,
        kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy + Sync,
        S: Send,
        M: Fn() -> S + Sync,
        F: Fn(T, &mut LaneMeter, &mut S) + Sync,
        G: FnMut(u64, &mut [S]),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_threads();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        let serial = self.threads <= 1 || checker_active();
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let (meters, mut shards) = if serial {
                self.run_lanes_serial(wave_items, &make_shard, &kernel)
            } else {
                self.run_lanes_parallel(wave_items, &make_shard, &kernel)
            };
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for warp_lanes in meters.chunks(warp) {
                let c = stats.fold_warp(warp_lanes);
                critical = critical.max(c);
                warp_total += c;
            }
            let dur = self.wave_duration(critical, warp_total);
            before.settle(&mut stats, critical, dur);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64, &mut shards);
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// Block-per-item counterpart of
    /// [`Self::launch_thread_per_item_sharded_traced`]: whole blocks are
    /// distributed over host threads (a block's lanes share a `BlockCtx`
    /// and must stay together), shards merge in block order.
    #[allow(clippy::too_many_arguments)]
    pub fn launch_block_per_item_sharded_traced<T, S, M, F, G>(
        &self,
        name: &str,
        t0: u64,
        sink: &mut dyn TraceSink,
        items: &[T],
        make_shard: M,
        kernel: F,
        mut wave_end: G,
    ) -> KernelStats
    where
        T: Copy + Sync,
        S: Send,
        M: Fn() -> S + Sync,
        F: Fn(T, &mut BlockCtx<'_>, &mut S) + Sync,
        G: FnMut(u64, &mut [S]),
    {
        let mut stats = KernelStats::new();
        let wave_cap = self.device.resident_blocks();
        let warp = self.device.warp_size;
        if sink.is_enabled() {
            sink.span_begin(
                track::KERNEL,
                name,
                t0,
                &[
                    ("items", items.len().into()),
                    ("wave_capacity", wave_cap.into()),
                ],
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_begin(name);
        let serial = self.threads <= 1 || checker_active();
        for (w, wave_items) in items.chunks(wave_cap).enumerate() {
            let before = WaveSnapshot::of(&stats);
            #[cfg(feature = "sancheck")]
            hooks::wave_begin(w as u64);
            let (blocks, mut shards) = if serial {
                self.run_blocks_serial(wave_items, &make_shard, &kernel)
            } else {
                self.run_blocks_parallel(wave_items, &make_shard, &kernel)
            };
            let mut critical = 0u64;
            let mut warp_total = 0u64;
            for lanes in &blocks {
                let mut block_cost = 0u64;
                for warp_lanes in lanes.chunks(warp) {
                    let c = stats.fold_warp(warp_lanes);
                    block_cost = block_cost.max(c);
                    warp_total += c;
                }
                critical = critical.max(block_cost);
            }
            let dur = self.wave_duration(critical, warp_total);
            before.settle(&mut stats, critical, dur);
            let wave_t0 = t0 + stats.sim_cycles;
            stats.sim_cycles += dur;
            stats.waves += 1;
            before.emit_wave(
                sink,
                wave_t0,
                dur,
                wave_items.len(),
                critical,
                warp_total,
                &stats,
            );
            wave_end(w as u64, &mut shards);
            #[cfg(feature = "sancheck")]
            hooks::wave_end();
        }
        #[cfg(feature = "sancheck")]
        hooks::kernel_end();
        self.finish_kernel_span(sink, name, t0, &stats);
        stats
    }

    /// One wave of thread-per-item lanes on the calling thread (the
    /// sancheck-compatible path: lane coordinates are reported per lane).
    fn run_lanes_serial<T, S, M, F>(
        &self,
        wave_items: &[T],
        make_shard: &M,
        kernel: &F,
    ) -> (Vec<LaneMeter>, Vec<S>)
    where
        T: Copy,
        M: Fn() -> S,
        F: Fn(T, &mut LaneMeter, &mut S),
    {
        let mut shard = make_shard();
        let mut meters = Vec::with_capacity(wave_items.len());
        for (i, &it) in wave_items.iter().enumerate() {
            hook_lane_ctx(i, self.device.warp_size);
            let mut m = LaneMeter::new();
            kernel(it, &mut m, &mut shard);
            meters.push(m);
        }
        (meters, vec![shard])
    }

    /// One wave of thread-per-item lanes split into contiguous chunks on
    /// scoped host threads; meters and shards return in chunk (= lane)
    /// order.
    fn run_lanes_parallel<T, S, M, F>(
        &self,
        wave_items: &[T],
        make_shard: &M,
        kernel: &F,
    ) -> (Vec<LaneMeter>, Vec<S>)
    where
        T: Copy + Sync,
        S: Send,
        M: Fn() -> S + Sync,
        F: Fn(T, &mut LaneMeter, &mut S) + Sync,
    {
        let n = wave_items.len();
        let nchunks = self.threads.min(n.div_ceil(MIN_LANES_PER_CHUNK)).max(1);
        if nchunks <= 1 {
            return self.run_lanes_serial(wave_items, make_shard, kernel);
        }
        let chunk_len = n.div_ceil(nchunks);
        let results = run_chunks(wave_items, chunk_len, |chunk| {
            let mut shard = make_shard();
            let mut ms = Vec::with_capacity(chunk.len());
            for &it in chunk {
                let mut m = LaneMeter::new();
                kernel(it, &mut m, &mut shard);
                ms.push(m);
            }
            (ms, shard)
        });
        let mut meters = Vec::with_capacity(n);
        let mut shards = Vec::with_capacity(results.len());
        for (ms, s) in results {
            meters.extend(ms);
            shards.push(s);
        }
        (meters, shards)
    }

    /// One wave of block-per-item blocks on the calling thread; returns
    /// each block's retired lane meters in block order.
    #[allow(clippy::type_complexity)]
    fn run_blocks_serial<T, S, M, F>(
        &self,
        wave_items: &[T],
        make_shard: &M,
        kernel: &F,
    ) -> (Vec<Vec<LaneMeter>>, Vec<S>)
    where
        T: Copy,
        M: Fn() -> S,
        F: Fn(T, &mut BlockCtx<'_>, &mut S),
    {
        let mut shard = make_shard();
        let mut blocks = Vec::with_capacity(wave_items.len());
        for (b, &it) in wave_items.iter().enumerate() {
            hook_block_ctx(b);
            let mut ctx = BlockCtx::new(self.device.block_size, self.device.warp_size, &self.cost);
            kernel(it, &mut ctx, &mut shard);
            ctx.zero_untouched();
            blocks.push(ctx.lanes);
        }
        (blocks, vec![shard])
    }

    /// One wave of block-per-item blocks split into contiguous chunks on
    /// scoped host threads; blocks and shards return in block order.
    #[allow(clippy::type_complexity)]
    fn run_blocks_parallel<T, S, M, F>(
        &self,
        wave_items: &[T],
        make_shard: &M,
        kernel: &F,
    ) -> (Vec<Vec<LaneMeter>>, Vec<S>)
    where
        T: Copy + Sync,
        S: Send,
        M: Fn() -> S + Sync,
        F: Fn(T, &mut BlockCtx<'_>, &mut S) + Sync,
    {
        let n = wave_items.len();
        let nchunks = self.threads.min(n).max(1);
        if nchunks <= 1 {
            return self.run_blocks_serial(wave_items, make_shard, kernel);
        }
        let chunk_len = n.div_ceil(nchunks);
        let results = run_chunks(wave_items, chunk_len, |chunk| {
            let mut shard = make_shard();
            let mut blocks = Vec::with_capacity(chunk.len());
            for &it in chunk {
                let mut ctx =
                    BlockCtx::new(self.device.block_size, self.device.warp_size, &self.cost);
                kernel(it, &mut ctx, &mut shard);
                ctx.zero_untouched();
                blocks.push(ctx.lanes);
            }
            (blocks, shard)
        });
        let mut blocks = Vec::with_capacity(n);
        let mut shards = Vec::with_capacity(results.len());
        for (bs, s) in results {
            blocks.extend(bs);
            shards.push(s);
        }
        (blocks, shards)
    }

    /// Close the kernel span and flush the launch's histograms.
    fn finish_kernel_span(
        &self,
        sink: &mut dyn TraceSink,
        name: &str,
        t0: u64,
        stats: &KernelStats,
    ) {
        if !sink.is_enabled() {
            return;
        }
        sink.span_end(
            track::KERNEL,
            name,
            t0 + stats.sim_cycles,
            &[
                ("waves", stats.waves.into()),
                ("threads", stats.threads.into()),
                ("sim_cycles", stats.sim_cycles.into()),
                ("divergence", stats.divergence_ratio().into()),
                ("probes", stats.probes.into()),
                ("atomics", stats.atomics.into()),
                ("global_reads", stats.global_reads.into()),
                ("global_writes", stats.global_writes.into()),
            ],
        );
        if !stats.probe_hist.is_empty() {
            sink.histogram("probe_len", &stats.probe_hist);
        }
        if !stats.warp_cost_hist.is_empty() {
            sink.histogram("warp_cost", &stats.warp_cost_hist);
        }
        #[cfg(feature = "prof")]
        {
            use crate::cost::Comp;
            let c = &stats.comp;
            sink.metrics(
                "kernel",
                t0 + stats.sim_cycles,
                &[
                    ("sim_cycles", stats.sim_cycles),
                    ("lane_cycles", stats.lane_cycles),
                    ("idle_cycles", stats.idle_cycles),
                    ("imbalance_cycles", stats.imbalance_cycles),
                    ("stall_cycles", stats.stall_cycles),
                    ("waves", stats.waves),
                    ("threads", stats.threads),
                    ("probes", stats.probes),
                    ("alu", c.get(Comp::Alu)),
                    ("global_near", c.get(Comp::GlobalNear)),
                    ("global_far", c.get(Comp::GlobalFar)),
                    ("atomic", c.get(Comp::Atomic)),
                    ("probe_near", c.get(Comp::ProbeNear)),
                    ("probe_far", c.get(Comp::ProbeFar)),
                    ("shared", c.get(Comp::Shared)),
                    ("barrier", c.get(Comp::Barrier)),
                    ("frontier_compact", c.get(Comp::FrontierCompact)),
                ],
            );
        }
    }

    /// Duration of one wave under a latency/throughput/occupancy model.
    ///
    /// Each warp occupies its SM's issue pipeline for its lockstep cost
    /// (idle lanes included — that is what lockstep means), and the device
    /// issues warps on `sm_count × warp_schedulers` pipelines. A wave
    /// therefore lasts at least its critical path (the slowest warp/block)
    /// *and* at least the aggregate warp-cycles divided by the effective
    /// issue width. The effective width degrades below full **occupancy**:
    /// memory-bound kernels hide latency by switching among resident
    /// warps, so a device running at a fraction of its maximum resident
    /// warps only achieves that fraction of its issue throughput (down to
    /// a floor of one warp per SM). This is the penalty that makes
    /// shared-memory-hungry kernels unattractive — the paper's
    /// shared-memory-hashtable experiment (§4.2) hinges on it. Without the
    /// throughput term entirely, underfilled blocks would look free and a
    /// block-per-vertex kernel would always "win", erasing the Fig. 4
    /// trade-off.
    fn wave_duration(&self, critical: u64, warp_total: u64) -> u64 {
        let d = &self.device;
        let resident_warps = (d.max_threads_per_sm / d.warp_size).max(1); // per SM
        let occupancy = (resident_warps as f64 / d.saturation_warps_per_sm.max(1) as f64).min(1.0);
        let width = (d.issue_width() as f64 * occupancy).max(1.0);
        critical.max((warp_total as f64 / width).ceil() as u64)
    }
}

/// Pre-wave counter snapshot, used to attribute per-wave deltas (lane vs
/// idle cycles → wave-local divergence) to the wave's trace span, and to
/// settle the wave's imbalance/stall ledger entries.
#[derive(Clone, Copy)]
struct WaveSnapshot {
    lane_cycles: u64,
    idle_cycles: u64,
    threads: u64,
}

impl WaveSnapshot {
    fn of(stats: &KernelStats) -> Self {
        WaveSnapshot {
            lane_cycles: stats.lane_cycles,
            idle_cycles: stats.idle_cycles,
            threads: stats.threads,
        }
    }

    /// Book the wave's load-imbalance and throughput-stall losses.
    ///
    /// The lanes folded this wave occupied `critical × slots` lane-slot
    /// cycles (every slot is held for the wave's critical path); `lane +
    /// idle` of those were accounted per warp, the remainder is warps
    /// finishing before the slowest warp/block — load imbalance. The
    /// duration beyond the critical path is the throughput/occupancy
    /// stall of [`WaveScheduler::wave_duration`]. Together these keep two
    /// exact ledgers: `lane + idle + imbalance = Σ critical × slots` and
    /// `sim_cycles = Σ critical + stall`.
    fn settle(self, stats: &mut KernelStats, critical: u64, dur: u64) {
        let slots = stats.threads - self.threads;
        let busy = (stats.lane_cycles - self.lane_cycles) + (stats.idle_cycles - self.idle_cycles);
        stats.imbalance_cycles += critical * slots - busy;
        stats.stall_cycles += dur - critical;
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_wave(
        self,
        sink: &mut dyn TraceSink,
        wave_t0: u64,
        dur: u64,
        items: usize,
        warp_cost_max: u64,
        warp_cost_sum: u64,
        stats: &KernelStats,
    ) {
        if !sink.is_enabled() {
            return;
        }
        let lane = stats.lane_cycles - self.lane_cycles;
        let idle = stats.idle_cycles - self.idle_cycles;
        let divergence = if lane + idle == 0 {
            0.0
        } else {
            idle as f64 / (lane + idle) as f64
        };
        sink.span_begin(track::WAVE, "wave", wave_t0, &[]);
        sink.span_end(
            track::WAVE,
            "wave",
            wave_t0 + dur,
            &[
                ("items", items.into()),
                ("warp_cost_max", warp_cost_max.into()),
                ("warp_cost_sum", warp_cost_sum.into()),
                ("divergence", Value::F64(divergence)),
            ],
        );
        #[cfg(feature = "prof")]
        sink.metrics(
            "wave",
            wave_t0,
            &[
                ("dur", dur),
                ("items", items as u64),
                ("slots", stats.threads - self.threads),
                ("critical", warp_cost_max),
                ("stall", dur - warp_cost_max),
                ("busy", lane),
                ("idle", idle),
            ],
        );
    }
}

/// Execution context of one cooperative thread block.
pub struct BlockCtx<'a> {
    /// Per-lane meters (length = block size).
    pub lanes: Vec<LaneMeter>,
    /// Cost model in effect.
    pub cost: &'a CostModel,
    warp_size: usize,
    /// Lanes that executed at least one metered op. Lanes never touched
    /// are treated as not launched: their cycles (including any
    /// barrier-alignment charge) are zeroed when the block retires.
    touched: Vec<bool>,
    /// Lanes still participating in barriers. All lanes start active;
    /// [`Self::set_lane_active`] models an early `return`.
    active: Vec<bool>,
}

impl<'a> BlockCtx<'a> {
    fn new(block_size: usize, warp_size: usize, cost: &'a CostModel) -> Self {
        BlockCtx {
            lanes: vec![LaneMeter::new(); block_size],
            cost,
            warp_size,
            touched: vec![false; block_size],
            active: vec![true; block_size],
        }
    }

    /// Number of lanes in the block.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Warp width of the simulated device.
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Mutable access to lane `l`'s meter.
    pub fn lane(&mut self, l: usize) -> &mut LaneMeter {
        self.touched[l] = true;
        #[cfg(feature = "sancheck")]
        hooks::lane_ctx((l / self.warp_size) as u32, (l % self.warp_size) as u32);
        &mut self.lanes[l]
    }

    /// Mark lane `l` as having exited the kernel (`true` re-admits it).
    /// An inactive lane no longer participates in barriers — on hardware,
    /// a `__syncthreads()` reached by only part of a warp is undefined
    /// behaviour, which the `sancheck` checker reports as
    /// barrier-divergence.
    pub fn set_lane_active(&mut self, l: usize, on: bool) {
        self.active[l] = on;
    }

    /// Whether lane `l` still participates in barriers.
    pub fn lane_active(&self, l: usize) -> bool {
        self.active[l]
    }

    /// Grid-stride distribution: work unit `k` is handled by lane
    /// `k % block_size` — the access pattern of the paper's
    /// block-per-vertex neighbour scan.
    pub fn for_each_strided<F>(&mut self, count: usize, mut f: F)
    where
        F: FnMut(usize, &mut LaneMeter),
    {
        let b = self.lanes.len();
        for k in 0..count {
            let l = k % b;
            self.touched[l] = true;
            #[cfg(feature = "sancheck")]
            hooks::lane_ctx((l / self.warp_size) as u32, (l % self.warp_size) as u32);
            f(k, &mut self.lanes[l]);
        }
    }

    /// Charge a block-wide tree reduction over `count` elements
    /// (`ceil(log2(count))` shared-memory steps on every participating
    /// lane), used for `hashtableMaxKey` (Algorithm 1 line `maxkey`) and
    /// the ΔN block reduction.
    pub fn charge_reduction(&mut self, count: usize) {
        if count <= 1 {
            return;
        }
        let steps = usize::BITS - (count - 1).leading_zeros();
        let active = count.min(self.lanes.len());
        for l in 0..active {
            self.touched[l] = true;
            for _ in 0..steps {
                let c = self.cost;
                self.lanes[l].shared(c, crate::cost::Width::W32);
                self.lanes[l].alu(c, 1);
            }
        }
    }

    /// `__syncthreads()`: every *active* lane waits for the slowest active
    /// lane. Waiting time is charged as busy cycles on the waiting lanes
    /// (it occupies the SM). Lanes marked inactive via
    /// [`Self::set_lane_active`] have exited and are not aligned — if only
    /// part of a warp reaches the barrier the `sancheck` checker flags it.
    pub fn barrier(&mut self) {
        #[cfg(feature = "sancheck")]
        hooks::barrier(&self.active, self.warp_size);
        let max = self
            .lanes
            .iter()
            .zip(&self.active)
            .filter(|&(_, &a)| a)
            .map(|(l, _)| l.cycles)
            .max()
            .unwrap_or(0);
        for (l, &a) in self.lanes.iter_mut().zip(&self.active) {
            if a {
                let wait = max - l.cycles;
                l.cycles = max;
                l.tag(crate::cost::Comp::Barrier, wait);
            }
        }
    }

    /// Reset lanes that never executed a metered op (see `touched`).
    fn zero_untouched(&mut self) {
        for (m, &t) in self.lanes.iter_mut().zip(&self.touched) {
            if !t {
                *m = LaneMeter::new();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Width;

    fn sched() -> WaveScheduler {
        WaveScheduler::new(DeviceConfig::tiny(), CostModel::default_gpu())
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let s = sched();
        let items: Vec<usize> = (0..1000).collect();
        let mut seen = vec![0u32; 1000];
        s.launch_thread_per_item(&items, |it, _| seen[it] += 1, |_| {});
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn wave_count_matches_capacity() {
        let s = sched(); // tiny: 64 resident threads
        let items: Vec<usize> = (0..130).collect();
        let stats = s.launch_thread_per_item(&items, |_, _| {}, |_| {});
        assert_eq!(stats.waves, 3); // 64 + 64 + 2
        assert_eq!(stats.threads, 130);
    }

    #[test]
    fn wave_end_fires_per_wave_in_order() {
        let s = sched();
        let items: Vec<usize> = (0..65).collect();
        let mut ends = Vec::new();
        s.launch_thread_per_item(&items, |_, _| {}, |w| ends.push(w));
        assert_eq!(ends, vec![0, 1]);
    }

    #[test]
    fn sim_cycles_take_max_over_lanes() {
        let s = sched();
        // one warp (4 lanes in tiny config): one lane does 10 ALU, rest do 1
        let items: Vec<usize> = (0..4).collect();
        let stats = s.launch_thread_per_item(
            &items,
            |it, m| {
                let n = if it == 0 { 10 } else { 1 };
                m.alu(&CostModel::default_gpu(), n);
            },
            |_| {},
        );
        assert_eq!(stats.sim_cycles, 10);
        assert_eq!(stats.lane_cycles, 13);
    }

    #[test]
    fn idle_cycles_are_max_minus_lane() {
        let s = sched();
        let items: Vec<usize> = (0..4).collect();
        let stats = s.launch_thread_per_item(
            &items,
            |it, m| m.alu(&CostModel::default_gpu(), if it == 0 { 10 } else { 1 }),
            |_| {},
        );
        // idle = (10-10) + (10-1)*3 = 27
        assert_eq!(stats.idle_cycles, 27);
    }

    #[test]
    fn empty_launch_is_free() {
        let s = sched();
        let stats = s.launch_thread_per_item(&[] as &[usize], |_, _| {}, |_| {});
        assert_eq!(stats, KernelStats::new());
    }

    #[test]
    fn block_launch_runs_each_item_with_full_block() {
        let s = sched(); // block_size 8
        let items = [0usize, 1, 2];
        let mut lanes_seen = Vec::new();
        let stats =
            s.launch_block_per_item(&items, |_, ctx| lanes_seen.push(ctx.num_lanes()), |_| {});
        assert_eq!(lanes_seen, vec![8, 8, 8]);
        assert_eq!(stats.threads, 24);
    }

    #[test]
    fn block_waves_respect_resident_blocks() {
        let s = sched(); // tiny: 2 SMs * (32/8) = 8 resident blocks
        let items: Vec<usize> = (0..17).collect();
        let stats = s.launch_block_per_item(&items, |_, _| {}, |_| {});
        assert_eq!(stats.waves, 3);
    }

    #[test]
    fn strided_distribution_covers_all_units() {
        let s = sched();
        let mut hits = [0u32; 20];
        s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.for_each_strided(20, |k, m| {
                    hits[k] += 1;
                    m.alu(&CostModel::default_gpu(), 1);
                })
            },
            |_| {},
        );
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn strided_work_balances_lanes() {
        let s = sched(); // block 8
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.for_each_strided(16, |_, m| m.alu(&CostModel::default_gpu(), 1));
            },
            |_| {},
        );
        // 16 units over 8 lanes = 2 each; perfectly balanced
        assert_eq!(stats.idle_cycles, 0);
        assert_eq!(stats.sim_cycles, 2);
    }

    #[test]
    fn barrier_aligns_lanes() {
        let s = sched();
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                let c = CostModel::default_gpu();
                ctx.lane(0).alu(&c, 9);
                ctx.barrier();
                // after barrier everyone is at 9; add one more on lane 1
                ctx.lane(1).alu(&c, 1);
            },
            |_| {},
        );
        assert_eq!(stats.sim_cycles, 10);
    }

    #[test]
    fn untouched_trailing_lanes_are_idle_not_busy() {
        // A block that only uses lane 0 and then hits a barrier must not
        // charge the 7 phantom lanes with lane 0's cycles: the barrier
        // aligns them while the block runs, but lanes that never executed
        // a metered op are dropped when the block retires.
        let s = sched(); // block 8, warp 4
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                ctx.lane(0).alu(&CostModel::default_gpu(), 9);
                ctx.barrier();
            },
            |_| {},
        );
        assert_eq!(stats.lane_cycles, 9); // lane 0 only
        assert_eq!(stats.idle_cycles, 27); // 3 idle lanes in warp 0; warp 1 empty
        assert_eq!(stats.sim_cycles, 9);
    }

    #[test]
    fn barrier_skips_explicitly_inactive_lanes() {
        // Lane 1 does some work and then exits (early return); the
        // barrier must not drag it up to the slowest active lane.
        let s = sched();
        let stats = s.launch_block_per_item(
            &[()],
            |_, ctx| {
                let c = CostModel::default_gpu();
                ctx.lane(1).alu(&c, 5);
                ctx.set_lane_active(1, false);
                assert!(!ctx.lane_active(1));
                ctx.lane(0).alu(&c, 9);
                ctx.barrier();
            },
            |_| {},
        );
        // lane 0 at 9, lane 1 keeps its 5; untouched lanes dropped
        assert_eq!(stats.lane_cycles, 14);
        assert_eq!(stats.sim_cycles, 9);
    }

    #[test]
    fn reduction_charges_log_steps() {
        let s = sched();
        let stats = s.launch_block_per_item(&[()], |_, ctx| ctx.charge_reduction(8), |_| {});
        // log2(8) = 3 steps; each step: shared (1) + alu (1) = 2 cycles
        assert_eq!(stats.sim_cycles, 6);
    }

    #[test]
    fn reduction_of_one_is_free() {
        let s = sched();
        let stats = s.launch_block_per_item(&[()], |_, ctx| ctx.charge_reduction(1), |_| {});
        assert_eq!(stats.sim_cycles, 0);
    }

    #[test]
    fn low_occupancy_reduces_throughput() {
        // two devices identical except for occupancy: the restricted one
        // must report proportionally more simulated cycles on a
        // throughput-bound (many equal warps) workload
        let mut full = DeviceConfig::a100();
        full.warp_size = 4; // keep the test small
        full.block_size = 8;
        let restricted = full.with_shared_mem_per_thread(2048); // 82 threads/SM
        let items: Vec<usize> = (0..200_000).collect();
        let run = |d: DeviceConfig| {
            let s = WaveScheduler::new(d, CostModel::default_gpu());
            s.launch_thread_per_item(&items, |_, m| m.alu(&CostModel::default_gpu(), 10), |_| {})
                .sim_cycles
        };
        let c_full = run(full);
        let c_restricted = run(restricted);
        assert!(
            c_restricted > 2 * c_full,
            "restricted {c_restricted} vs full {c_full}"
        );
    }

    #[test]
    fn traced_launch_emits_kernel_and_wave_spans() {
        let s = sched(); // tiny: 64 resident threads
        let items: Vec<usize> = (0..130).collect();
        let mut sink = nulpa_obs::RecordingSink::new();
        let stats = s.launch_thread_per_item_traced(
            "kernel:test",
            100,
            &mut sink,
            &items,
            |_, m| m.alu(&CostModel::default_gpu(), 1),
            |_| {},
        );
        // 1 kernel span + 3 wave spans
        assert_eq!(sink.span_counts(), (4, 4, 0));
        assert_eq!(sink.begin_names()[0], "kernel:test");
        assert_eq!(sink.begin_names()[1..], ["wave", "wave", "wave"]);
        // kernel span ends at t0 + sim_cycles
        let last = sink.events.last().unwrap();
        match last {
            nulpa_obs::TraceEvent::End { name, ts, .. } => {
                assert_eq!(name, "kernel:test");
                assert_eq!(*ts, 100 + stats.sim_cycles);
            }
            other => panic!("expected kernel End, got {other:?}"),
        }
        // warp-cost histogram flushed (probe hist empty: no probes made)
        assert!(sink.hists.contains_key("warp_cost"));
        assert!(!sink.hists.contains_key("probe_len"));
        assert_eq!(sink.hists["warp_cost"].count, stats.warp_cost_hist.count);
    }

    #[test]
    fn traced_and_untraced_launch_agree() {
        let s = sched();
        let items: Vec<usize> = (0..100).collect();
        let kernel = |it: usize, m: &mut LaneMeter| {
            m.alu(&CostModel::default_gpu(), (it % 7) as u64);
            m.global_read(&CostModel::default_gpu(), it * 3, Width::W32);
        };
        let plain = s.launch_thread_per_item(&items, kernel, |_| {});
        let mut sink = nulpa_obs::RecordingSink::new();
        let traced = s.launch_thread_per_item_traced("k", 0, &mut sink, &items, kernel, |_| {});
        assert_eq!(plain, traced);
    }

    #[test]
    fn block_traced_launch_spans() {
        let s = sched(); // 8 resident blocks
        let items: Vec<usize> = (0..9).collect();
        let mut sink = nulpa_obs::RecordingSink::new();
        let stats = s.launch_block_per_item_traced(
            "kernel:block",
            0,
            &mut sink,
            &items,
            |_, ctx| ctx.for_each_strided(4, |_, m| m.alu(&CostModel::default_gpu(), 2)),
            |_| {},
        );
        assert_eq!(stats.waves, 2);
        assert_eq!(sink.span_counts(), (3, 3, 0)); // kernel + 2 waves
    }

    #[test]
    fn probe_done_reaches_kernel_hist() {
        let s = sched();
        let stats = s.launch_thread_per_item(
            &[0usize, 1, 2],
            |it, m| {
                m.probe();
                m.probe_done(1 + it as u64);
            },
            |_| {},
        );
        assert_eq!(stats.probe_hist.count, 3);
        assert_eq!(stats.probe_hist.max, 3);
        assert_eq!(stats.probes, 3);
    }

    fn thread_kernel_for_shards(it: usize, m: &mut LaneMeter, shard: &mut Vec<usize>) {
        let c = CostModel::default_gpu();
        m.alu(&c, (it % 5) as u64);
        m.global_read(&c, it * 7, Width::W32);
        if it.is_multiple_of(3) {
            shard.push(it);
        }
    }

    fn run_sharded_thread(threads: usize, items: &[usize]) -> (Vec<usize>, Vec<u64>, KernelStats) {
        let s = sched().with_threads(threads);
        let mut order = Vec::new();
        let mut waves = Vec::new();
        let stats = s.launch_thread_per_item_sharded_traced(
            "k",
            0,
            &mut NullSink,
            items,
            Vec::new,
            thread_kernel_for_shards,
            |w, shards: &mut [Vec<usize>]| {
                waves.push(w);
                for sh in shards.iter_mut() {
                    order.append(sh);
                }
            },
        );
        (order, waves, stats)
    }

    #[test]
    fn sharded_thread_launch_is_bitwise_identical_across_thread_counts() {
        let items: Vec<usize> = (0..500).collect();
        let (o1, w1, s1) = run_sharded_thread(1, &items);
        for threads in [2, 4, 7] {
            let (o, w, s) = run_sharded_thread(threads, &items);
            assert_eq!(o, o1, "staged order diverged at {threads} threads");
            assert_eq!(w, w1);
            assert_eq!(s, s1, "stats diverged at {threads} threads");
        }
        // shards merged in lane order == serial staging order
        let expect: Vec<usize> = items.iter().copied().filter(|i| i % 3 == 0).collect();
        assert_eq!(o1, expect);
    }

    #[test]
    fn sharded_thread_launch_matches_classic_launch_stats() {
        let items: Vec<usize> = (0..300).collect();
        let classic = sched().launch_thread_per_item(
            &items,
            |it, m| {
                let mut unused = Vec::new();
                thread_kernel_for_shards(it, m, &mut unused);
            },
            |_| {},
        );
        let (_, _, sharded) = run_sharded_thread(4, &items);
        assert_eq!(classic, sharded);
    }

    #[test]
    fn sharded_block_launch_is_bitwise_identical_across_thread_counts() {
        let items: Vec<usize> = (0..40).collect();
        let run = |threads: usize| {
            let s = sched().with_threads(threads);
            let mut order = Vec::new();
            let stats = s.launch_block_per_item_sharded_traced(
                "k",
                0,
                &mut NullSink,
                &items,
                Vec::new,
                |it: usize, ctx: &mut BlockCtx<'_>, shard: &mut Vec<usize>| {
                    ctx.for_each_strided(it % 9 + 1, |_, m| m.alu(&CostModel::default_gpu(), 2));
                    ctx.barrier();
                    shard.push(it);
                },
                |_, shards: &mut [Vec<usize>]| {
                    for sh in shards.iter_mut() {
                        order.append(sh);
                    }
                },
            );
            (order, stats)
        };
        let (o1, s1) = run(1);
        let (o4, s4) = run(4);
        assert_eq!(o1, items, "blocks must merge shards in block order");
        assert_eq!(o1, o4);
        assert_eq!(s1, s4);
    }

    #[test]
    fn sharded_traced_spans_match_serial_launch() {
        let items: Vec<usize> = (0..130).collect();
        let trace = |threads: usize| {
            let s = sched().with_threads(threads);
            let mut sink = nulpa_obs::RecordingSink::new();
            s.launch_thread_per_item_sharded_traced(
                "kernel:test",
                50,
                &mut sink,
                &items,
                || (),
                |it, m, _| m.alu(&CostModel::default_gpu(), (it % 7) as u64),
                |_, _| {},
            );
            sink.events
        };
        assert_eq!(trace(1), trace(4));
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(sched().with_threads(0).threads, 1);
        assert_eq!(sched().with_threads(3).threads, 3);
    }

    #[test]
    fn worker_panic_propagates() {
        let s = sched().with_threads(4);
        let items: Vec<usize> = (0..200).collect();
        let r = std::panic::catch_unwind(|| {
            s.launch_thread_per_item_sharded_traced(
                "k",
                0,
                &mut NullSink,
                &items,
                || (),
                |it, _m, _| {
                    if it == 137 {
                        panic!("lane fault");
                    }
                },
                |_, _| {},
            )
        });
        assert!(r.is_err());
    }

    #[test]
    fn atomic_width_visible_in_stats() {
        let s = sched();
        let stats = s.launch_thread_per_item(
            &[0usize],
            |_, m| m.atomic(&CostModel::default_gpu(), 0, Width::W64),
            |_| {},
        );
        assert_eq!(stats.atomics, 1);
        assert!(stats.sim_cycles > 0);
    }
}
