//! Symbolic kernel effect descriptors — the vocabulary of the static
//! verifier (`nulpa-check`).
//!
//! Every SIMT kernel the workspace launches declares an [`Effects`]
//! descriptor: which address-space regions it reads, writes, or updates
//! atomically, as interval-or-strided expressions over `(lane item,
//! vertex, CSR offsets)`; where its barriers sit and under which lane
//! predicate; and the termination bound of its hashtable probe loops.
//! The descriptors live next to the kernels (`nulpa-core` registers the
//! ν-LPA kernels, `nulpa-hashtab` contributes the probe bound), are
//! collected into an [`EffectsRegistry`], and are consumed by the
//! `nulpa-check` solver, which proves — for *all* inputs, not just the
//! graphs a dynamic run happens to visit — lane-pairwise disjointness,
//! staged-write discipline, barrier uniformity, probe-budget
//! conformance, and the confinement of immediate writes to
//! immediate-class kernels.
//!
//! The vocabulary deliberately mirrors the dynamic hazard taxonomy of
//! `nulpa-sancheck`: each static check discharges one of the checker's
//! runtime hazard classes (see DESIGN.md §9). This module only *describes*
//! kernels; all reasoning lives in `nulpa-check` so the simulator itself
//! carries no analysis code.

/// Named region of the simulated global address space, in [`AddrMap`]
/// order (labels, processed flags, CSR targets, CSR weights, hash keys,
/// hash values, the dedicated ΔN word), plus the per-block shared space.
///
/// Region extents are symbolic in `(n, m)` — see [`Region::extent`] —
/// and `nulpa-check` cross-validates them against the concrete
/// `AddrMap` layout in `nulpa-core`.
///
/// [`AddrMap`]: https://docs.rs/nulpa-core (crate `nulpa-core`, `addr::AddrMap`)
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// Vertex labels, `n` words.
    Labels,
    /// Processed flags, `n` words.
    Processed,
    /// CSR edge targets, `m` words.
    Targets,
    /// CSR edge weights, `m` words.
    Weights,
    /// Hashtable key buffer, `2m` words.
    Keys,
    /// Hashtable value buffer, `2m` words.
    Values,
    /// The dedicated ΔN counter word.
    Dn,
    /// Per-block (or per-lane, in the thread kernel's shared-tables
    /// ablation) shared memory — private to one execution unit by
    /// construction.
    Shared,
}

impl Region {
    /// All global regions, in address order (excludes [`Region::Shared`],
    /// which is not part of the global address map).
    pub const GLOBAL: [Region; 7] = [
        Region::Labels,
        Region::Processed,
        Region::Targets,
        Region::Weights,
        Region::Keys,
        Region::Values,
        Region::Dn,
    ];

    /// Stable lower-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Region::Labels => "labels",
            Region::Processed => "processed",
            Region::Targets => "targets",
            Region::Weights => "weights",
            Region::Keys => "keys",
            Region::Values => "values",
            Region::Dn => "dn",
            Region::Shared => "shared",
        }
    }

    /// Symbolic extent in words for a graph with `n` vertices and `m`
    /// stored directed edges. [`Region::Shared`] has no global extent and
    /// returns 0.
    pub fn extent(self, n: usize, m: usize) -> usize {
        match self {
            Region::Labels | Region::Processed => n,
            Region::Targets | Region::Weights => m,
            Region::Keys | Region::Values => 2 * m,
            Region::Dn => 1,
            Region::Shared => 0,
        }
    }

    /// Whether the region holds *algorithm state* shared between lanes
    /// across the iteration (labels, processed flags, the ΔN counter) as
    /// opposed to per-lane scratch (the hashtable buffers, which the CSR
    /// layout tiles into lane-private slices) or read-only topology.
    pub fn is_shared_state(self) -> bool {
        matches!(self, Region::Labels | Region::Processed | Region::Dn)
    }

    /// Whether the region is read-only topology (never written by any
    /// kernel after graph construction).
    pub fn is_topology(self) -> bool {
        matches!(self, Region::Targets | Region::Weights)
    }
}

/// Symbolic word-index expression within a region, describing the set of
/// addresses *one lane* (execution unit) touches as a function of its
/// item `v`, the CSR offsets `off(·)`, and degrees `deg(·)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexExpr {
    /// `v` — the lane's own item id. Distinct per lane within a launch
    /// whenever the kernel declares [`Effects::distinct_items`].
    OwnVertex,
    /// `j ∈ N(v)` — any neighbour of the lane's item. Two lanes may share
    /// a neighbour, so cross-lane overlap is always possible.
    Neighbor,
    /// `c` — a *label value* loaded from memory; an arbitrary vertex id,
    /// aliasing any cell of a vertex-indexed region.
    LabelValue,
    /// `s·off(v) + k` for `k ∈ [0, e·deg(v))` — an interval carved from
    /// the CSR offsets with start scale `s` and extent scale `e`. CSR
    /// offsets are monotone with `off(v⁺) ≥ off(v) + deg(v)`, so the
    /// intervals of distinct items are disjoint iff `e ≤ s`, and the
    /// interval stays inside a region of extent `s·m` iff `e ≤ s` — the
    /// single inequality the solver discharges for both the overlap and
    /// the out-of-bounds check.
    CsrInterval {
        /// Start scale `s` (`2` for the hashtable buffers, `1` for the
        /// CSR target/weight arrays).
        start_scale: u32,
        /// Extent scale `e` (`2` for a vertex's full table reservation,
        /// `1` for its edge slice).
        extent_scale: u32,
    },
    /// The region's single dedicated word (only [`Region::Dn`]).
    Fixed,
}

impl IndexExpr {
    /// Render the expression the way findings report it.
    pub fn render(self, region: Region) -> String {
        let r = region.name();
        match self {
            IndexExpr::OwnVertex => format!("{r}[v]"),
            IndexExpr::Neighbor => format!("{r}[j], j ∈ N(v)"),
            IndexExpr::LabelValue => format!("{r}[c], c a label value"),
            IndexExpr::CsrInterval {
                start_scale,
                extent_scale,
            } => format!("{r}[{start_scale}·off(v) + 0..{extent_scale}·deg(v))"),
            IndexExpr::Fixed => format!("{r}[·]"),
        }
    }
}

/// A symbolic lane-relative address set: a region plus an index
/// expression into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddrExpr {
    /// Address-space region.
    pub region: Region,
    /// Word-index expression within the region.
    pub index: IndexExpr,
}

impl AddrExpr {
    /// Shorthand constructor.
    pub const fn new(region: Region, index: IndexExpr) -> Self {
        AddrExpr { region, index }
    }

    /// Render as `region[expr]` for findings.
    pub fn render(&self) -> String {
        self.index.render(self.region)
    }
}

/// When a write becomes visible to other lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Visibility {
    /// Staged through a deferred store; committed at the wave boundary,
    /// so same-wave readers observe wave-start state.
    Staged,
    /// Plain immediate store, visible as soon as it executes.
    Immediate,
}

/// The kind of access one effect entry performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Plain load.
    Read,
    /// Plain store.
    Write {
        /// Staging class of the store.
        vis: Visibility,
        /// `true` when every possible writer stores the same value
        /// (e.g. the processed-flag clears, which always write `false`),
        /// making write–write overlap benign.
        idempotent: bool,
    },
    /// Atomic read-modify-write; immediate, as on hardware.
    Atomic,
}

/// One declared effect: an access of some kind to a symbolic address set,
/// labelled with the source site it describes.
#[derive(Clone, Copy, Debug)]
pub struct AccessEffect {
    /// Human-readable site label (e.g. `"label move"`, `"flag clear"`).
    pub site: &'static str,
    /// The addresses touched.
    pub addr: AddrExpr,
    /// How they are touched.
    pub kind: AccessKind,
}

/// Lane predicate dominating a barrier site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pred {
    /// Unconditional — every lane of the block reaches the barrier.
    Uniform,
    /// Guarded by a block-uniform condition (a property of the block's
    /// item, e.g. its degree): all lanes of a block agree, so the barrier
    /// is still uniform *within* each block.
    BlockUniform,
    /// Guarded by a lane-divergent condition (lane id or per-lane data):
    /// part of a warp can reach the barrier while the rest does not —
    /// undefined behaviour for `__syncthreads()` on hardware.
    LaneDivergent,
}

/// One `BlockCtx::barrier()` site with its dominating predicate.
#[derive(Clone, Copy, Debug)]
pub struct BarrierSite {
    /// Site label (e.g. `"post-clear"`).
    pub site: &'static str,
    /// Dominating lane predicate.
    pub pred: Pred,
}

/// Termination bound of a kernel's hashtable probe loops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeBound {
    /// The kernel performs no hashtable probing.
    None,
    /// Probe loops take at most `budget` strategy-driven steps before
    /// falling back to a bounded linear scan (`fallback_linear`); total
    /// steps are then ≤ `budget + capacity`.
    Bounded {
        /// Maximum strategy-driven probe steps.
        budget: u32,
        /// Whether a linear fallback guarantees termination within
        /// capacity further steps.
        fallback_linear: bool,
    },
    /// No declared bound — always a finding.
    Unbounded,
}

/// Launch flavour of a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelFlavor {
    /// One lane per item (`launch_thread_per_item*`).
    ThreadPerItem,
    /// One cooperative block per item (`launch_block_per_item*`).
    BlockPerItem,
}

/// How the scheduler orders the kernel's lanes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneOrder {
    /// Lockstep-parallel wave semantics: lanes of a wave are unordered
    /// and must be pairwise independent.
    Lockstep,
    /// Deliberately serial lane execution (the Cross-Check revert pass):
    /// lane order is semantics-bearing and deterministic.
    Sequential,
}

/// Staging class of the kernel as a whole.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StagingClass {
    /// The kernel mutates shared state only through staged writes or
    /// atomics; plain immediate writes are confined to lane-private
    /// scratch.
    Staged,
    /// A separate-launch kernel whose writes take effect immediately
    /// (Cross-Check): permitted, but its immediate writes must be
    /// lane-disjoint or atomic, and they are confined to this launch.
    Immediate,
}

/// The full symbolic effect descriptor of one kernel.
#[derive(Clone, Debug)]
pub struct Effects {
    /// Launch name, exactly as passed to the wave scheduler
    /// (e.g. `"kernel:thread"`).
    pub kernel: &'static str,
    /// Launch flavour.
    pub flavor: KernelFlavor,
    /// Lane ordering semantics.
    pub order: LaneOrder,
    /// Staging class.
    pub staging: StagingClass,
    /// `true` when each item appears at most once per launch (ν-LPA's
    /// candidate sets guarantee this), making `OwnVertex` indices
    /// pairwise distinct.
    pub distinct_items: bool,
    /// Declared accesses.
    pub accesses: Vec<AccessEffect>,
    /// Barrier sites (empty for thread-per-item kernels).
    pub barriers: Vec<BarrierSite>,
    /// Probe-loop termination bound.
    pub probes: ProbeBound,
}

/// Registry of kernel effect descriptors, keyed by launch name.
#[derive(Clone, Debug, Default)]
pub struct EffectsRegistry {
    entries: Vec<Effects>,
}

impl EffectsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        EffectsRegistry::default()
    }

    /// Register a descriptor.
    ///
    /// # Panics
    /// Panics if a descriptor with the same kernel name is already
    /// registered — duplicate declarations would make `lookup` ambiguous.
    pub fn register(&mut self, e: Effects) {
        assert!(
            self.lookup(e.kernel).is_none(),
            "duplicate effects descriptor for kernel `{}`",
            e.kernel
        );
        self.entries.push(e);
    }

    /// Descriptor for a launch name, if registered.
    pub fn lookup(&self, kernel: &str) -> Option<&Effects> {
        self.entries.iter().find(|e| e.kernel == kernel)
    }

    /// All descriptors, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Effects> {
        self.entries.iter()
    }

    /// Number of registered descriptors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal(name: &'static str) -> Effects {
        Effects {
            kernel: name,
            flavor: KernelFlavor::ThreadPerItem,
            order: LaneOrder::Lockstep,
            staging: StagingClass::Staged,
            distinct_items: true,
            accesses: Vec::new(),
            barriers: Vec::new(),
            probes: ProbeBound::None,
        }
    }

    #[test]
    fn registry_register_and_lookup() {
        let mut r = EffectsRegistry::new();
        assert!(r.is_empty());
        r.register(minimal("kernel:a"));
        r.register(minimal("kernel:b"));
        assert_eq!(r.len(), 2);
        assert!(r.lookup("kernel:a").is_some());
        assert!(r.lookup("kernel:c").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate effects descriptor")]
    fn registry_rejects_duplicates() {
        let mut r = EffectsRegistry::new();
        r.register(minimal("kernel:a"));
        r.register(minimal("kernel:a"));
    }

    #[test]
    fn region_extents_are_the_addrmap_formulas() {
        let (n, m) = (100, 400);
        assert_eq!(Region::Labels.extent(n, m), 100);
        assert_eq!(Region::Processed.extent(n, m), 100);
        assert_eq!(Region::Targets.extent(n, m), 400);
        assert_eq!(Region::Weights.extent(n, m), 400);
        assert_eq!(Region::Keys.extent(n, m), 800);
        assert_eq!(Region::Values.extent(n, m), 800);
        assert_eq!(Region::Dn.extent(n, m), 1);
    }

    #[test]
    fn region_classification() {
        assert!(Region::Labels.is_shared_state());
        assert!(Region::Dn.is_shared_state());
        assert!(!Region::Keys.is_shared_state());
        assert!(Region::Targets.is_topology());
        assert!(!Region::Labels.is_topology());
    }

    #[test]
    fn render_is_stable() {
        let a = AddrExpr::new(
            Region::Keys,
            IndexExpr::CsrInterval {
                start_scale: 2,
                extent_scale: 2,
            },
        );
        assert_eq!(a.render(), "keys[2·off(v) + 0..2·deg(v))");
        assert_eq!(
            AddrExpr::new(Region::Labels, IndexExpr::Neighbor).render(),
            "labels[j], j ∈ N(v)"
        );
        assert_eq!(
            AddrExpr::new(Region::Dn, IndexExpr::Fixed).render(),
            "dn[·]"
        );
    }
}
