//! Wave-visibility memory: reads see wave-start state, writes flush at the
//! wave boundary.
//!
//! This models the crucial SIMT property behind the paper's community-swap
//! analysis: two co-resident (same-wave) vertices that update their labels
//! "simultaneously" each observe the *other's old* label, so symmetric
//! neighbours adopt each other's labels and swap forever (§4.1). Writes by
//! earlier waves are visible to later waves, which is what makes the
//! algorithm asynchronous across waves.
//!
//! A cell may be staged at most once per wave in ν-LPA (each vertex is
//! written by exactly one thread per iteration); the store nevertheless
//! defines last-stage-wins semantics and exposes the collision count for
//! assertion in tests.

use std::collections::HashMap;

/// A `Vec<T>`-backed memory with deferred (wave-buffered) writes.
#[derive(Clone, Debug)]
pub struct DeferredStore<T: Copy> {
    data: Vec<T>,
    pending: Vec<(usize, T)>,
    staged_collisions: u64,
}

impl<T: Copy + PartialEq> DeferredStore<T> {
    /// Wrap an initial state.
    pub fn new(init: Vec<T>) -> Self {
        DeferredStore {
            data: init,
            pending: Vec::new(),
            staged_collisions: 0,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Committed (wave-start) value of cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// Stage a write to cell `i`; becomes visible after [`Self::flush`].
    #[inline]
    pub fn stage(&mut self, i: usize, v: T) {
        debug_assert!(i < self.data.len());
        self.pending.push((i, v));
    }

    /// Number of writes staged in the current wave.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Apply all staged writes (call from the scheduler's `wave_end`).
    /// Last stage to a cell wins; earlier stages to the same cell are
    /// counted in [`Self::staged_collisions`].
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let mut first_writer: HashMap<usize, ()> = HashMap::with_capacity(self.pending.len());
        for &(i, _) in &self.pending {
            if first_writer.insert(i, ()).is_some() {
                self.staged_collisions += 1;
            }
        }
        for (i, v) in self.pending.drain(..) {
            self.data[i] = v;
        }
    }

    /// Immediately-visible write, bypassing wave buffering. Models a
    /// write made by a *separate kernel launch* (e.g. ν-LPA's Cross-Check
    /// revert pass, whose atomic reverts take effect at once).
    #[inline]
    pub fn write_through(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// Cells written more than once within a single wave, cumulative.
    pub fn staged_collisions(&self) -> u64 {
        self.staged_collisions
    }

    /// View of the committed state.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into the committed state. Pending (unflushed) writes are
    /// dropped — flush first if they matter.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_wave_start_values() {
        let mut s = DeferredStore::new(vec![1, 2, 3]);
        s.stage(0, 10);
        assert_eq!(s.get(0), 1); // not yet visible
        s.flush();
        assert_eq!(s.get(0), 10);
    }

    #[test]
    fn swap_scenario_reproduced() {
        // Two symmetric vertices each adopt the other's label within a
        // wave: with deferred semantics both reads see old values and the
        // labels genuinely swap — the paper's non-convergence pathology.
        let mut labels = DeferredStore::new(vec![0u32, 1]);
        let a = labels.get(1); // vertex 0 reads neighbour 1
        let b = labels.get(0); // vertex 1 reads neighbour 0
        labels.stage(0, a);
        labels.stage(1, b);
        labels.flush();
        assert_eq!(labels.as_slice(), &[1, 0]); // swapped
    }

    #[test]
    fn later_wave_sees_earlier_writes() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 5);
        s.flush();
        // next wave
        let seen = s.get(0);
        assert_eq!(seen, 5);
    }

    #[test]
    fn last_stage_wins_and_collision_counted() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 1);
        s.stage(0, 2);
        s.flush();
        assert_eq!(s.get(0), 2);
        assert_eq!(s.staged_collisions(), 1);
    }

    #[test]
    fn flush_empty_is_noop() {
        let mut s = DeferredStore::new(vec![7]);
        s.flush();
        assert_eq!(s.get(0), 7);
        assert_eq!(s.staged_collisions(), 0);
    }

    #[test]
    fn pending_len_resets_on_flush() {
        let mut s = DeferredStore::new(vec![0, 0]);
        s.stage(0, 1);
        s.stage(1, 1);
        assert_eq!(s.pending_len(), 2);
        s.flush();
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn into_inner_returns_committed_state() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 9);
        s.flush();
        assert_eq!(s.into_inner(), vec![9]);
    }
}
