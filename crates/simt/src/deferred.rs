//! Wave-visibility memory: reads see wave-start state, writes flush at the
//! wave boundary.
//!
//! This models the crucial SIMT property behind the paper's community-swap
//! analysis: two co-resident (same-wave) vertices that update their labels
//! "simultaneously" each observe the *other's old* label, so symmetric
//! neighbours adopt each other's labels and swap forever (§4.1). Writes by
//! earlier waves are visible to later waves, which is what makes the
//! algorithm asynchronous across waves.
//!
//! A cell may be staged at most once per wave in ν-LPA (each vertex is
//! written by exactly one thread per iteration); the store nevertheless
//! defines last-stage-wins semantics and exposes the collision count for
//! assertion in tests. With the `sancheck` feature, every access is also
//! reported to the [`nulpa_sancheck`] hazard checker, which turns the
//! one-writer-per-wave rule (and init-before-read) into a checked
//! invariant.

#[cfg(feature = "sancheck")]
use nulpa_sancheck::hooks;

/// A `Vec<T>`-backed memory with deferred (wave-buffered) writes.
#[derive(Clone, Debug)]
pub struct DeferredStore<T: Copy> {
    data: Vec<T>,
    pending: Vec<(usize, T)>,
    /// Reused index scratch for collision counting in [`Self::flush`]
    /// (avoids a per-flush allocation).
    scratch: Vec<usize>,
    staged_collisions: u64,
}

impl<T: Copy + PartialEq> DeferredStore<T> {
    /// Wrap an initial state.
    pub fn new(init: Vec<T>) -> Self {
        DeferredStore {
            data: init,
            pending: Vec::new(),
            scratch: Vec::new(),
            staged_collisions: 0,
        }
    }

    /// Wrap backing memory whose contents are *not* considered
    /// initialised — `cudaMalloc` without a memset. Functionally
    /// identical to [`Self::new`]; under the `sancheck` feature the
    /// checker flags any read of a cell before a write to it commits.
    pub fn new_uninit(backing: Vec<T>) -> Self {
        let s = Self::new(backing);
        #[cfg(feature = "sancheck")]
        hooks::mark_uninit(
            s.data.as_ptr() as usize,
            std::mem::size_of::<T>(),
            s.data.len(),
        );
        s
    }

    /// Host byte address of cell `i` — the shadow-memory key.
    #[cfg(feature = "sancheck")]
    #[inline]
    fn addr_of(&self, i: usize) -> usize {
        self.data.as_ptr() as usize + i * std::mem::size_of::<T>()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Committed (wave-start) value of cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        #[cfg(feature = "sancheck")]
        hooks::ds_read(self.addr_of(i));
        self.data[i]
    }

    /// Stage a write to cell `i`; becomes visible after [`Self::flush`].
    ///
    /// The index is validated eagerly — a bad index would otherwise only
    /// blow up later, inside `flush`, far from the faulting kernel.
    #[inline]
    pub fn stage(&mut self, i: usize, v: T) {
        if i >= self.data.len() {
            #[cfg(feature = "sancheck")]
            hooks::ds_oob(i, self.data.len());
            panic!(
                "DeferredStore::stage: cell index {i} out of bounds for store of {} cells",
                self.data.len()
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::ds_stage(self.addr_of(i));
        self.pending.push((i, v));
    }

    /// Number of writes staged in the current wave.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Apply all staged writes (call from the scheduler's `wave_end`).
    /// Last stage to a cell wins; earlier stages to the same cell are
    /// counted in [`Self::staged_collisions`]. `pending` and the sort
    /// scratch keep their capacity across waves.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Collisions = staged writes minus distinct cells, counted by
        // sorting the indices and counting adjacent duplicates.
        self.scratch.clear();
        self.scratch.extend(self.pending.iter().map(|&(i, _)| i));
        self.scratch.sort_unstable();
        self.staged_collisions += self.scratch.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        #[cfg(feature = "sancheck")]
        if hooks::is_active() {
            for &(i, _) in &self.pending {
                hooks::ds_flush_commit(self.addr_of(i));
            }
        }
        for (i, v) in self.pending.drain(..) {
            self.data[i] = v;
        }
    }

    /// Immediately-visible write, bypassing wave buffering. Models a
    /// write made by a *separate kernel launch* (e.g. ν-LPA's Cross-Check
    /// revert pass, whose atomic reverts take effect at once).
    #[inline]
    pub fn write_through(&mut self, i: usize, v: T) {
        #[cfg(feature = "sancheck")]
        hooks::ds_write_through(self.addr_of(i));
        self.data[i] = v;
    }

    /// Atomic exchange: immediately-visible write that returns the
    /// previous value — `atomicExch` semantics. Like atomics on hardware
    /// (and unlike [`Self::stage`]) the effect is not deferred to the
    /// wave boundary; the checker tracks it as an atomic access.
    #[inline]
    pub fn atomic_exchange(&mut self, i: usize, v: T) -> T {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(self.addr_of(i));
        let old = self.data[i];
        self.data[i] = v;
        old
    }

    /// Cells written more than once within a single wave, cumulative.
    pub fn staged_collisions(&self) -> u64 {
        self.staged_collisions
    }

    /// View of the committed state.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Consume into the committed state. Pending (unflushed) writes are
    /// dropped — flush first if they matter.
    pub fn into_inner(self) -> Vec<T> {
        self.data
    }
}

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Thread-shareable variant of [`DeferredStore`] for `u32` cells: reads
/// go through `&self` (so concurrent lanes can share the store), while
/// staged writes live in caller-owned per-shard pending lists that the
/// wave scheduler merges in deterministic lane order via
/// [`Self::flush_shards`].
///
/// All atomics use `Relaxed` ordering: committed cells are only written
/// at wave boundaries (between `thread::scope` joins, which already
/// provide the happens-before edges) or by explicitly-immediate
/// `write_through`/`atomic_exchange` calls whose cross-lane ordering the
/// simulated algorithm does not rely on.
#[derive(Debug)]
pub struct SyncDeferredStore {
    data: Vec<AtomicU32>,
    staged_collisions: AtomicU64,
}

/// One shard's staged writes, to be passed back to
/// [`SyncDeferredStore::flush_shards`].
pub type StagedWrites = Vec<(usize, u32)>;

impl SyncDeferredStore {
    /// Wrap an initial state.
    pub fn new(init: Vec<u32>) -> Self {
        SyncDeferredStore {
            data: init.into_iter().map(AtomicU32::new).collect(),
            staged_collisions: AtomicU64::new(0),
        }
    }

    /// Host byte address of cell `i` — the shadow-memory key.
    #[cfg(feature = "sancheck")]
    #[inline]
    fn addr_of(&self, i: usize) -> usize {
        self.data.as_ptr() as usize + i * std::mem::size_of::<AtomicU32>()
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the store has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Committed (wave-start) value of cell `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        #[cfg(feature = "sancheck")]
        hooks::ds_read(self.addr_of(i));
        self.data[i].load(Ordering::Relaxed)
    }

    /// Stage a write to cell `i` into `pending`; becomes visible after the
    /// shard is passed to [`Self::flush_shards`]. The index is validated
    /// eagerly, exactly like [`DeferredStore::stage`].
    #[inline]
    pub fn stage(&self, pending: &mut StagedWrites, i: usize, v: u32) {
        if i >= self.data.len() {
            #[cfg(feature = "sancheck")]
            hooks::ds_oob(i, self.data.len());
            panic!(
                "DeferredStore::stage: cell index {i} out of bounds for store of {} cells",
                self.data.len()
            );
        }
        #[cfg(feature = "sancheck")]
        hooks::ds_stage(self.addr_of(i));
        pending.push((i, v));
    }

    /// Apply the staged writes of every shard, in shard order (call from
    /// the scheduler's `wave_end` with shards in lane order — the
    /// concatenation then equals the serial staging order, so
    /// last-stage-wins and [`Self::staged_collisions`] match
    /// [`DeferredStore::flush`] exactly). `scratch` is the caller-owned
    /// sort buffer for collision counting (kept across waves to avoid a
    /// per-flush allocation).
    pub fn flush_shards<S>(
        &self,
        shards: &mut [S],
        pending_of: impl Fn(&mut S) -> &mut StagedWrites,
        scratch: &mut Vec<usize>,
    ) {
        scratch.clear();
        for s in shards.iter_mut() {
            scratch.extend(pending_of(s).iter().map(|&(i, _)| i));
        }
        if scratch.is_empty() {
            return;
        }
        scratch.sort_unstable();
        let dups = scratch.windows(2).filter(|w| w[0] == w[1]).count() as u64;
        self.staged_collisions.fetch_add(dups, Ordering::Relaxed);
        #[cfg(feature = "sancheck")]
        if hooks::is_active() {
            for s in shards.iter_mut() {
                for &(i, _) in pending_of(s).iter() {
                    hooks::ds_flush_commit(self.addr_of(i));
                }
            }
        }
        for s in shards.iter_mut() {
            for (i, v) in pending_of(s).drain(..) {
                self.data[i].store(v, Ordering::Relaxed);
            }
        }
    }

    /// Immediately-visible write, bypassing wave buffering (see
    /// [`DeferredStore::write_through`]).
    #[inline]
    pub fn write_through(&self, i: usize, v: u32) {
        #[cfg(feature = "sancheck")]
        hooks::ds_write_through(self.addr_of(i));
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Atomic exchange: immediately-visible write returning the previous
    /// value — `atomicExch` semantics (see
    /// [`DeferredStore::atomic_exchange`]).
    #[inline]
    pub fn atomic_exchange(&self, i: usize, v: u32) -> u32 {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(self.addr_of(i));
        self.data[i].swap(v, Ordering::Relaxed)
    }

    /// Cells written more than once within a single wave, cumulative.
    pub fn staged_collisions(&self) -> u64 {
        self.staged_collisions.load(Ordering::Relaxed)
    }

    /// Copy of the committed state (no instrumentation hooks, like
    /// [`DeferredStore::as_slice`]).
    pub fn snapshot(&self) -> Vec<u32> {
        self.data
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Consume into the committed state.
    pub fn into_inner(self) -> Vec<u32> {
        self.data.into_iter().map(AtomicU32::into_inner).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_see_wave_start_values() {
        let mut s = DeferredStore::new(vec![1, 2, 3]);
        s.stage(0, 10);
        assert_eq!(s.get(0), 1); // not yet visible
        s.flush();
        assert_eq!(s.get(0), 10);
    }

    #[test]
    fn swap_scenario_reproduced() {
        // Two symmetric vertices each adopt the other's label within a
        // wave: with deferred semantics both reads see old values and the
        // labels genuinely swap — the paper's non-convergence pathology.
        let mut labels = DeferredStore::new(vec![0u32, 1]);
        let a = labels.get(1); // vertex 0 reads neighbour 1
        let b = labels.get(0); // vertex 1 reads neighbour 0
        labels.stage(0, a);
        labels.stage(1, b);
        labels.flush();
        assert_eq!(labels.as_slice(), &[1, 0]); // swapped
    }

    #[test]
    fn later_wave_sees_earlier_writes() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 5);
        s.flush();
        // next wave
        let seen = s.get(0);
        assert_eq!(seen, 5);
    }

    #[test]
    fn last_stage_wins_and_collision_counted() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 1);
        s.stage(0, 2);
        s.flush();
        assert_eq!(s.get(0), 2);
        assert_eq!(s.staged_collisions(), 1);
    }

    #[test]
    fn collision_counts_match_distinct_cell_accounting() {
        // Micro-assert for the sort-based dedup: collisions per flush must
        // equal staged writes minus distinct cells, exactly as the old
        // hash-set accounting defined them — including across several
        // flushes reusing the same scratch buffer.
        let mut s = DeferredStore::new(vec![0u32; 8]);
        for &(writes, expected) in &[
            (&[0usize, 1, 0, 2, 0, 1][..], 3u64), // 6 writes, 3 distinct
            (&[5, 5, 5, 5][..], 3),               // 4 writes, 1 distinct
            (&[3, 4, 6][..], 0),                  // all distinct
        ] {
            let before = s.staged_collisions();
            for &i in writes {
                s.stage(i, 9);
            }
            s.flush();
            assert_eq!(s.staged_collisions() - before, expected);
        }
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn pending_capacity_kept_across_waves() {
        let mut s = DeferredStore::new(vec![0u32; 64]);
        for i in 0..64 {
            s.stage(i, 1);
        }
        s.flush();
        let cap = s.pending.capacity();
        assert!(cap >= 64);
        for i in 0..64 {
            s.stage(i, 2);
        }
        s.flush();
        assert_eq!(s.pending.capacity(), cap); // no realloc, no shrink
    }

    #[test]
    #[should_panic(expected = "cell index 9 out of bounds for store of 3 cells")]
    fn stage_out_of_bounds_panics_eagerly_with_context() {
        let mut s = DeferredStore::new(vec![0u32; 3]);
        s.stage(9, 1);
    }

    #[test]
    fn flush_empty_is_noop() {
        let mut s = DeferredStore::new(vec![7]);
        s.flush();
        assert_eq!(s.get(0), 7);
        assert_eq!(s.staged_collisions(), 0);
    }

    #[test]
    fn pending_len_resets_on_flush() {
        let mut s = DeferredStore::new(vec![0, 0]);
        s.stage(0, 1);
        s.stage(1, 1);
        assert_eq!(s.pending_len(), 2);
        s.flush();
        assert_eq!(s.pending_len(), 0);
    }

    #[test]
    fn into_inner_returns_committed_state() {
        let mut s = DeferredStore::new(vec![0]);
        s.stage(0, 9);
        s.flush();
        assert_eq!(s.into_inner(), vec![9]);
    }

    #[test]
    fn atomic_exchange_is_immediate_and_returns_old() {
        let mut s = DeferredStore::new(vec![1u32, 2]);
        assert_eq!(s.atomic_exchange(0, 7), 1);
        assert_eq!(s.get(0), 7); // visible at once, no flush needed
    }

    #[test]
    fn new_uninit_behaves_like_new_functionally() {
        let mut s = DeferredStore::new_uninit(vec![0u32; 4]);
        s.stage(2, 5);
        s.flush();
        assert_eq!(s.get(2), 5);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn sync_store_matches_deferred_store_semantics() {
        // Differential check: the same staged-write sequence through one
        // shard must commit the same state and collision count as the
        // single-threaded DeferredStore.
        let writes: &[(usize, u32)] = &[(0, 1), (1, 2), (0, 3), (2, 4), (0, 5), (1, 6)];
        let mut reference = DeferredStore::new(vec![0u32; 4]);
        for &(i, v) in writes {
            reference.stage(i, v);
        }
        reference.flush();

        let sync = SyncDeferredStore::new(vec![0u32; 4]);
        let mut shard: StagedWrites = Vec::new();
        for &(i, v) in writes {
            sync.stage(&mut shard, i, v);
        }
        let mut scratch = Vec::new();
        sync.flush_shards(&mut [shard], |s| s, &mut scratch);
        assert_eq!(sync.snapshot(), reference.as_slice());
        assert_eq!(sync.staged_collisions(), reference.staged_collisions());
    }

    #[test]
    fn sync_store_shard_order_is_stage_order() {
        // Writes split across shards commit in shard order: the last
        // shard's write wins, and collisions count across the whole wave.
        let s = SyncDeferredStore::new(vec![0u32; 2]);
        let mut a: StagedWrites = Vec::new();
        let mut b: StagedWrites = Vec::new();
        s.stage(&mut a, 0, 1);
        s.stage(&mut b, 0, 2);
        let mut scratch = Vec::new();
        s.flush_shards(&mut [a, b], |sh| sh, &mut scratch);
        assert_eq!(s.get(0), 2);
        assert_eq!(s.staged_collisions(), 1);
    }

    #[test]
    fn sync_store_write_through_and_exchange_are_immediate() {
        let s = SyncDeferredStore::new(vec![1u32, 2]);
        s.write_through(1, 9);
        assert_eq!(s.get(1), 9);
        assert_eq!(s.atomic_exchange(0, 7), 1);
        assert_eq!(s.get(0), 7);
        assert_eq!(s.into_inner(), vec![7, 9]);
    }

    #[test]
    fn sync_store_flush_empty_shards_is_noop() {
        let s = SyncDeferredStore::new(vec![4u32]);
        let mut scratch = Vec::new();
        s.flush_shards(&mut [StagedWrites::new()], |sh| sh, &mut scratch);
        assert_eq!(s.get(0), 4);
        assert_eq!(s.staged_collisions(), 0);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "cell index 9 out of bounds for store of 3 cells")]
    fn sync_store_stage_out_of_bounds_panics_eagerly() {
        let s = SyncDeferredStore::new(vec![0u32; 3]);
        let mut shard = StagedWrites::new();
        s.stage(&mut shard, 9, 1);
    }
}
