//! Cycle-cost model for simulated kernels.
//!
//! The paper's relative-runtime figures (probing strategy, switch degree,
//! datatype, coalesced chaining) are all claims about memory traffic and
//! lockstep divergence. The model charges each *lane* for the operations
//! it performs; warp cost is the **maximum** over its lanes (lockstep),
//! which is what turns probe-count variance into the large slowdowns the
//! paper reports for high-clustering probe sequences.
//!
//! Memory locality: a global access within the same 128-byte line
//! (32 × 4-byte words) as the lane's previous access costs
//! [`CostModel::global_near`]; otherwise [`CostModel::global_far`]. This
//! preserves linear probing's cache advantage and double hashing's
//! scatter penalty. Wide (64-bit) operations cost twice their 32-bit
//! counterparts, which drives the Fig. 5 datatype ablation.

/// Words (4-byte units) per modelled cache line.
pub const LINE_WORDS: usize = 32;

/// Operation costs in abstract cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Register/ALU operation.
    pub alu: u64,
    /// Global access hitting the lane's current line.
    pub global_near: u64,
    /// Global access to a different line.
    pub global_far: u64,
    /// Additional latency of an atomic over a plain access.
    pub atomic_extra: u64,
    /// Shared-memory access.
    pub shared: u64,
}

impl CostModel {
    /// Default weights: far global ≈ 8× ALU, near global ≈ 2× ALU,
    /// atomics pay a contention surcharge, shared ≈ ALU.
    pub fn default_gpu() -> Self {
        CostModel {
            alu: 1,
            global_near: 2,
            global_far: 8,
            atomic_extra: 4,
            shared: 1,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_gpu()
    }
}

/// Width of a memory operand, for the Fig. 5 datatype ablation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Width {
    /// 32-bit operand (one word).
    W32,
    /// 64-bit operand (two words — charged double).
    W64,
}

impl Width {
    #[inline]
    fn factor(self) -> u64 {
        match self {
            Width::W32 => 1,
            Width::W64 => 2,
        }
    }
    #[inline]
    fn words(self) -> usize {
        match self {
            Width::W32 => 1,
            Width::W64 => 2,
        }
    }
}

use nulpa_obs::Hist;

/// Cycle-attribution component: where a charged cycle went. Every cycle a
/// [`LaneMeter`] charges belongs to exactly one component, so (with the
/// `prof` feature) the per-component totals partition `LaneMeter::cycles`
/// — the conservation law the profiler's tables rest on.
///
/// Memory charges made inside a hash-probe sequence (between
/// [`LaneMeter::probe_scope`]`(true)` and `(false)`) are attributed to the
/// probe components instead of the plain global ones; atomics keep their
/// own component even inside a probe scope, and the ALU work of computing
/// probe steps stays in [`Comp::Alu`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Comp {
    /// Register/ALU operations.
    Alu = 0,
    /// Global accesses hitting a warm line, outside probe sequences.
    GlobalNear = 1,
    /// Global accesses to a cold line, outside probe sequences.
    GlobalFar = 2,
    /// Atomic RMWs (memory cost plus contention surcharge).
    Atomic = 3,
    /// Probe-sequence global accesses hitting a warm line.
    ProbeNear = 4,
    /// Probe-sequence global accesses to a cold line.
    ProbeFar = 5,
    /// Shared-memory accesses.
    Shared = 6,
    /// Barrier alignment: cycles a lane waited at `__syncthreads()`.
    Barrier = 7,
    /// Frontier compaction: every cycle charged while a lane runs the
    /// sparse-frontier compaction kernel (flag reads, predicate ALU, and
    /// the warp-aggregated emit), regardless of operation kind.
    FrontierCompact = 8,
}

/// Number of [`Comp`] variants (length of a [`CompCycles`] array).
pub const NUM_COMPS: usize = 9;

impl Comp {
    /// All components, in display order.
    pub fn all() -> [Comp; NUM_COMPS] {
        [
            Comp::Alu,
            Comp::GlobalNear,
            Comp::GlobalFar,
            Comp::Atomic,
            Comp::ProbeNear,
            Comp::ProbeFar,
            Comp::Shared,
            Comp::Barrier,
            Comp::FrontierCompact,
        ]
    }

    /// Stable snake_case name used in metrics records and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Comp::Alu => "alu",
            Comp::GlobalNear => "global_near",
            Comp::GlobalFar => "global_far",
            Comp::Atomic => "atomic",
            Comp::ProbeNear => "probe_near",
            Comp::ProbeFar => "probe_far",
            Comp::Shared => "shared",
            Comp::Barrier => "barrier",
            Comp::FrontierCompact => "frontier_compact",
        }
    }
}

/// Per-component cycle totals, indexed by [`Comp`]. A plain fixed array so
/// it stays `Copy` and free to merge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompCycles(pub [u64; NUM_COMPS]);

impl CompCycles {
    /// Zeroed totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cycles attributed to `comp`.
    #[inline]
    pub fn get(&self, comp: Comp) -> u64 {
        self.0[comp as usize]
    }

    /// Add `cycles` to `comp`.
    #[inline]
    pub fn add(&mut self, comp: Comp, cycles: u64) {
        self.0[comp as usize] += cycles;
    }

    /// Element-wise merge of another total into this one.
    #[inline]
    pub fn merge(&mut self, other: &CompCycles) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Sum over all components — equals the charged cycles they partition.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// Per-lane meter: accumulates cycles and event counts for one simulated
/// thread (lane) during one kernel. Cheap to create; the wave scheduler
/// makes one per lane and folds them into [`crate::stats::KernelStats`].
#[derive(Clone, Debug, Default)]
pub struct LaneMeter {
    /// Accumulated cycles for this lane.
    pub cycles: u64,
    /// Hash-probe count (incremented by the hashtable layer).
    pub probes: u64,
    /// Completed probe-sequence lengths (one sample per
    /// [`LaneMeter::probe_done`] call from the hashtable layer).
    pub probe_hist: Hist,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Global reads issued.
    pub global_reads: u64,
    /// Global writes issued.
    pub global_writes: u64,
    /// Tiny per-lane LRU of recently touched lines (models the L1/L2
    /// lines a thread keeps warm; one entry would make any alternation
    /// between two buffers — e.g. `H_k`/`H_v` — look uncached).
    recent_lines: [usize; 4],
    recent_len: u8,
    /// Per-component attribution of `cycles` (profiling builds only).
    #[cfg(feature = "prof")]
    pub comp: CompCycles,
    /// Whether the lane is currently inside a probe sequence (see
    /// [`LaneMeter::probe_scope`]).
    #[cfg(feature = "prof")]
    in_probe: bool,
    /// Whether the lane is currently inside the frontier-compaction
    /// kernel (see [`LaneMeter::compact_scope`]).
    #[cfg(feature = "prof")]
    in_compact: bool,
}

impl LaneMeter {
    /// Fresh meter with zero cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attribute `cycles` to `comp`; compiles away without `prof`.
    /// Inside a compact scope every charge belongs to
    /// [`Comp::FrontierCompact`] instead.
    #[inline]
    pub(crate) fn tag(&mut self, comp: Comp, cycles: u64) {
        #[cfg(feature = "prof")]
        {
            let comp = if self.in_compact {
                Comp::FrontierCompact
            } else {
                comp
            };
            self.comp.add(comp, cycles);
        }
        #[cfg(not(feature = "prof"))]
        let _ = (comp, cycles);
    }

    /// Attribute a plain memory charge, picking the near/far and
    /// global/probe component from the hit flag and the probe scope.
    #[inline]
    fn tag_mem(&mut self, near: bool, cycles: u64) {
        #[cfg(feature = "prof")]
        {
            let comp = if self.in_compact {
                Comp::FrontierCompact
            } else {
                match (self.in_probe, near) {
                    (false, true) => Comp::GlobalNear,
                    (false, false) => Comp::GlobalFar,
                    (true, true) => Comp::ProbeNear,
                    (true, false) => Comp::ProbeFar,
                }
            };
            self.comp.add(comp, cycles);
        }
        #[cfg(not(feature = "prof"))]
        let _ = (near, cycles);
    }

    /// Mark the start (`true`) / end (`false`) of a hash-probe sequence.
    /// While set, plain global charges are attributed to
    /// [`Comp::ProbeNear`]/[`Comp::ProbeFar`] instead of the global
    /// components. Called by the hashtable layer around its probe loops;
    /// a no-op (and cost-free) without the `prof` feature.
    #[inline]
    pub fn probe_scope(&mut self, on: bool) {
        #[cfg(feature = "prof")]
        {
            self.in_probe = on;
        }
        #[cfg(not(feature = "prof"))]
        let _ = on;
    }

    /// Mark the start (`true`) / end (`false`) of the frontier-compaction
    /// kernel. While set, *every* charge (memory, ALU, atomic, shared,
    /// barrier) is attributed to [`Comp::FrontierCompact`], so the cost of
    /// building the sparse active set is a separate line in the profiler's
    /// tables. A no-op (and cost-free) without the `prof` feature.
    #[inline]
    pub fn compact_scope(&mut self, on: bool) {
        #[cfg(feature = "prof")]
        {
            self.in_compact = on;
        }
        #[cfg(not(feature = "prof"))]
        let _ = on;
    }

    /// Charge `n` ALU operations.
    #[inline]
    pub fn alu(&mut self, cost: &CostModel, n: u64) {
        self.cycles += cost.alu * n;
        self.tag(Comp::Alu, cost.alu * n);
    }

    /// Charge a global read of the word at index `addr` (in words).
    #[inline]
    pub fn global_read(&mut self, cost: &CostModel, addr: usize, width: Width) {
        self.global_reads += 1;
        let (c, near) = self.mem_cost(cost, addr, width);
        self.cycles += c;
        self.tag_mem(near, c);
    }

    /// Charge a global write.
    #[inline]
    pub fn global_write(&mut self, cost: &CostModel, addr: usize, width: Width) {
        self.global_writes += 1;
        let (c, near) = self.mem_cost(cost, addr, width);
        self.cycles += c;
        self.tag_mem(near, c);
    }

    /// Charge an atomic RMW (global access + surcharge). Attributed to
    /// [`Comp::Atomic`] as a whole, even inside a probe scope.
    #[inline]
    pub fn atomic(&mut self, cost: &CostModel, addr: usize, width: Width) {
        self.atomics += 1;
        let (mem, _near) = self.mem_cost(cost, addr, width);
        let c = mem + cost.atomic_extra * width.factor();
        self.cycles += c;
        self.tag(Comp::Atomic, c);
    }

    /// Charge a shared-memory access.
    #[inline]
    pub fn shared(&mut self, cost: &CostModel, width: Width) {
        self.cycles += cost.shared * width.factor();
        self.tag(Comp::Shared, cost.shared * width.factor());
    }

    /// Count one hash probe (cost is charged by the accompanying memory
    /// ops; this is a pure statistic).
    #[inline]
    pub fn probe(&mut self) {
        self.probes += 1;
    }

    /// Record the completion of one probe sequence of `len` probes. Called
    /// by the hashtable layer when a lookup/insert settles; feeds the
    /// probe-length histogram surfaced in `KernelStats` and traces.
    #[inline]
    pub fn probe_done(&mut self, len: u64) {
        self.probe_hist.record(len);
    }

    /// Memory charge for a global access; returns `(cycles, near)` so the
    /// caller can attribute the charge to a locality component.
    #[inline]
    fn mem_cost(&mut self, cost: &CostModel, addr: usize, width: Width) -> (u64, bool) {
        let line = addr / LINE_WORDS;
        // a 64-bit access straddling into the next line still counts as
        // near when either of its lines is warm
        let line2 = (addr + width.words() - 1) / LINE_WORDS;
        let near = self.touch(line) | (line2 != line && self.touch(line2));
        let c = if near {
            cost.global_near * width.factor()
        } else {
            cost.global_far * width.factor()
        };
        (c, near)
    }

    /// LRU lookup-and-insert; returns `true` on a hit.
    #[inline]
    fn touch(&mut self, line: usize) -> bool {
        let len = self.recent_len as usize;
        for i in 0..len {
            if self.recent_lines[i] == line {
                // move to front
                self.recent_lines[..=i].rotate_right(1);
                return true;
            }
        }
        let new_len = (len + 1).min(self.recent_lines.len());
        self.recent_lines[..new_len].rotate_right(1);
        self.recent_lines[0] = line;
        self.recent_len = new_len as u8;
        false
    }

    /// Merge another lane's counters into this one (used for folding).
    pub fn absorb(&mut self, other: &LaneMeter) {
        self.cycles += other.cycles;
        self.probes += other.probes;
        self.probe_hist.merge(&other.probe_hist);
        self.atomics += other.atomics;
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        #[cfg(feature = "prof")]
        self.comp.merge(&other.comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_is_near() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        m.global_read(&c, 0, Width::W32); // first: far
        m.global_read(&c, 1, Width::W32); // same line: near
        m.global_read(&c, 2, Width::W32);
        assert_eq!(m.cycles, c.global_far + 2 * c.global_near);
        assert_eq!(m.global_reads, 3);
    }

    #[test]
    fn scattered_access_is_far() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        for i in 0..6 {
            m.global_read(&c, i * 1000, Width::W32);
        }
        assert_eq!(m.cycles, 6 * c.global_far);
    }

    #[test]
    fn lru_keeps_a_few_lines_warm() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        m.global_read(&c, 0, Width::W32); // far
        m.global_read(&c, 1000, Width::W32); // far
        m.global_read(&c, 5, Width::W32); // line 0 still warm: near
        assert_eq!(m.cycles, 2 * c.global_far + c.global_near);
        // evict with 4 fresh lines, then line 0 is cold again
        for i in 2..6 {
            m.global_read(&c, i * 1000, Width::W32);
        }
        let before = m.cycles;
        m.global_read(&c, 0, Width::W32);
        assert_eq!(m.cycles - before, c.global_far);
    }

    #[test]
    fn wide_ops_cost_double() {
        let c = CostModel::default_gpu();
        let mut narrow = LaneMeter::new();
        narrow.global_read(&c, 0, Width::W32);
        let mut wide = LaneMeter::new();
        wide.global_read(&c, 0, Width::W64);
        assert_eq!(wide.cycles, 2 * narrow.cycles);
    }

    #[test]
    fn atomic_surcharge() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        m.atomic(&c, 0, Width::W32);
        assert_eq!(m.cycles, c.global_far + c.atomic_extra);
        assert_eq!(m.atomics, 1);
    }

    #[test]
    fn alu_and_shared() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        m.alu(&c, 5);
        m.shared(&c, Width::W32);
        assert_eq!(m.cycles, 5 * c.alu + c.shared);
    }

    #[test]
    fn probes_are_pure_counts() {
        let mut m = LaneMeter::new();
        m.probe();
        m.probe();
        assert_eq!(m.probes, 2);
        assert_eq!(m.cycles, 0);
    }

    #[test]
    fn absorb_accumulates() {
        let c = CostModel::default_gpu();
        let mut a = LaneMeter::new();
        a.alu(&c, 1);
        let mut b = LaneMeter::new();
        b.global_read(&c, 0, Width::W32);
        b.probe();
        a.absorb(&b);
        assert_eq!(a.cycles, c.alu + c.global_far);
        assert_eq!(a.probes, 1);
    }

    #[test]
    fn line_straddle_counts_second_word_near() {
        let c = CostModel::default_gpu();
        let mut m = LaneMeter::new();
        m.global_read(&c, LINE_WORDS - 1, Width::W32); // end of line 0
        m.global_read(&c, LINE_WORDS - 1, Width::W64); // straddles into line 1
        assert_eq!(m.cycles, c.global_far + 2 * c.global_near);
    }

    #[cfg(feature = "prof")]
    mod prof {
        use super::*;

        #[test]
        fn components_partition_cycles() {
            let c = CostModel::default_gpu();
            let mut m = LaneMeter::new();
            m.alu(&c, 3);
            m.global_read(&c, 0, Width::W32); // far
            m.global_read(&c, 1, Width::W32); // near
            m.atomic(&c, 5000, Width::W64);
            m.shared(&c, Width::W32);
            m.probe_scope(true);
            m.global_read(&c, 9000, Width::W32); // probe far
            m.global_read(&c, 9001, Width::W32); // probe near
            m.probe_scope(false);
            m.global_write(&c, 9002, Width::W32); // back to plain global (near)
            assert_eq!(m.comp.total(), m.cycles);
            assert_eq!(m.comp.get(Comp::Alu), 3 * c.alu);
            assert_eq!(m.comp.get(Comp::GlobalFar), c.global_far);
            assert_eq!(m.comp.get(Comp::GlobalNear), 2 * c.global_near);
            assert_eq!(
                m.comp.get(Comp::Atomic),
                2 * (c.global_far + c.atomic_extra)
            );
            assert_eq!(m.comp.get(Comp::Shared), c.shared);
            assert_eq!(m.comp.get(Comp::ProbeFar), c.global_far);
            assert_eq!(m.comp.get(Comp::ProbeNear), c.global_near);
            assert_eq!(m.comp.get(Comp::Barrier), 0);
        }

        #[test]
        fn atomic_in_probe_scope_stays_atomic() {
            let c = CostModel::default_gpu();
            let mut m = LaneMeter::new();
            m.probe_scope(true);
            m.atomic(&c, 0, Width::W32);
            m.probe_scope(false);
            assert_eq!(m.comp.get(Comp::Atomic), m.cycles);
            assert_eq!(m.comp.get(Comp::ProbeFar), 0);
        }

        #[test]
        fn compact_scope_reroutes_every_charge() {
            let c = CostModel::default_gpu();
            let mut m = LaneMeter::new();
            m.compact_scope(true);
            m.global_read(&c, 0, Width::W32);
            m.alu(&c, 3);
            m.atomic(&c, 5000, Width::W32);
            m.probe_scope(true); // compact wins over probe scope
            m.global_read(&c, 9000, Width::W32);
            m.probe_scope(false);
            m.compact_scope(false);
            m.alu(&c, 1); // outside the scope again
            assert_eq!(m.comp.get(Comp::FrontierCompact), m.cycles - c.alu);
            assert_eq!(m.comp.get(Comp::Alu), c.alu);
            assert_eq!(m.comp.total(), m.cycles);
        }

        #[test]
        fn absorb_merges_components() {
            let c = CostModel::default_gpu();
            let mut a = LaneMeter::new();
            a.alu(&c, 2);
            let mut b = LaneMeter::new();
            b.shared(&c, Width::W64);
            a.absorb(&b);
            assert_eq!(a.comp.get(Comp::Alu), 2 * c.alu);
            assert_eq!(a.comp.get(Comp::Shared), 2 * c.shared);
            assert_eq!(a.comp.total(), a.cycles);
        }

        #[test]
        fn comp_cycles_merge_and_labels() {
            let mut x = CompCycles::new();
            x.add(Comp::Alu, 5);
            let mut y = CompCycles::new();
            y.add(Comp::Alu, 2);
            y.add(Comp::Barrier, 7);
            x.merge(&y);
            assert_eq!(x.get(Comp::Alu), 7);
            assert_eq!(x.total(), 14);
            let labels: Vec<&str> = Comp::all().iter().map(|c| c.label()).collect();
            assert_eq!(labels.len(), NUM_COMPS);
            // labels are unique and stable (JSON/metrics schema)
            let mut dedup = labels.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), NUM_COMPS);
        }
    }
}
