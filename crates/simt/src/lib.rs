//! # nulpa-simt
//!
//! A SIMT (GPU) *execution-model* simulator — the substrate standing in
//! for the paper's NVIDIA A100 (see DESIGN.md §1). It does not interpret
//! GPU machine code; it reproduces the properties of SIMT execution that
//! the ν-LPA paper's design and experiments rest on:
//!
//! * **Waves of co-resident threads** ([`WaveScheduler`]) — kernels launch
//!   over items, scheduled in waves sized by the device's resident-thread
//!   capacity ([`DeviceConfig`]).
//! * **Lockstep visibility** ([`DeferredStore`]) — non-atomic global
//!   writes made inside a wave become visible at the wave boundary, which
//!   deterministically reproduces the community-swap pathology of §4.1.
//! * **Lockstep timing** ([`CostModel`], [`KernelStats`]) — a warp costs
//!   the maximum of its lanes, so divergence (e.g. unlucky probe
//!   sequences) is amplified exactly as on hardware; a locality model
//!   preserves the cache trade-offs between probing strategies.
//! * **Immediate atomics** ([`AtomicF32`], [`AtomicF64`]) — as on GPUs,
//!   atomic RMWs take effect immediately, unlike plain stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomics;
pub mod cost;
pub mod deferred;
pub mod device;
pub mod effects;
pub mod stats;
pub mod wave;

pub use atomics::{AtomicF32, AtomicF64};
pub use cost::{Comp, CompCycles, CostModel, LaneMeter, Width, LINE_WORDS, NUM_COMPS};
pub use deferred::{DeferredStore, StagedWrites, SyncDeferredStore};
pub use device::DeviceConfig;
pub use effects::{
    AccessEffect, AccessKind, AddrExpr, BarrierSite, Effects, EffectsRegistry, IndexExpr,
    KernelFlavor, LaneOrder, Pred, ProbeBound, Region, StagingClass, Visibility,
};
pub use stats::KernelStats;
pub use wave::{BlockCtx, WaveScheduler};

// Tracing vocabulary, re-exported so instrumented crates depending on
// nulpa-simt don't each need a direct nulpa-obs dependency.
pub use nulpa_obs::{track, Hist, MetricsEvent, NullSink, RecordingSink, TraceSink, Value};
