//! Atomic floating-point cells.
//!
//! CUDA provides native `atomicAdd` on `float`/`double`; Rust's standard
//! library does not, so these wrappers implement the canonical
//! compare-exchange loop over the bit representation (the same technique
//! pre-Kepler CUDA used). The hashtable's value arrays (`H_v` in the
//! paper) are built from these cells.
//!
//! Orderings are `Relaxed` throughout: ν-LPA only needs atomicity of the
//! read-modify-write, never inter-thread ordering — labels are published
//! by the wave flush, not by these cells (see `Rust Atomics and Locks`,
//! ch. 2–3, for why relaxed RMWs still form a single modification order
//! per cell, which is all weight accumulation requires).

#[cfg(feature = "sancheck")]
use nulpa_sancheck::hooks;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomic `f32` cell.
#[derive(Debug, Default)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// New cell holding `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f32) {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(std::ptr::from_ref(self) as usize);
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomic `fetch_add` via CAS loop; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f32) -> f32 {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(std::ptr::from_ref(self) as usize);
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Atomic `f64` cell (for the Fig. 5 datatype ablation).
#[derive(Debug, Default)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// New cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Atomic load.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Atomic store.
    #[inline]
    pub fn store(&self, v: f64) {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(std::ptr::from_ref(self) as usize);
        self.0.store(v.to_bits(), Ordering::Relaxed)
    }

    /// Atomic `fetch_add` via CAS loop; returns the previous value.
    #[inline]
    pub fn fetch_add(&self, v: f64) -> f64 {
        #[cfg(feature = "sancheck")]
        hooks::atomic_access(std::ptr::from_ref(self) as usize);
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn f32_load_store() {
        let a = AtomicF32::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn f32_fetch_add_returns_previous() {
        let a = AtomicF32::new(1.0);
        assert_eq!(a.fetch_add(2.0), 1.0);
        assert_eq!(a.load(), 3.0);
    }

    #[test]
    fn f64_fetch_add() {
        let a = AtomicF64::new(0.5);
        a.fetch_add(0.25);
        a.fetch_add(0.25);
        assert_eq!(a.load(), 1.0);
    }

    #[test]
    fn concurrent_f32_adds_sum_exactly_with_integers() {
        // integer-valued f32 adds are exact below 2^24, so the concurrent
        // sum must be exact regardless of interleaving
        let a = Arc::new(AtomicF32::new(0.0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        a.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(a.load(), 4000.0);
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(AtomicF32::default().load(), 0.0);
        assert_eq!(AtomicF64::default().load(), 0.0);
    }
}
