//! Aggregated kernel statistics.

#[cfg(feature = "prof")]
use crate::cost::CompCycles;
use crate::cost::LaneMeter;
use nulpa_obs::Hist;

/// Statistics for one kernel launch (or a sum over launches).
///
/// `sim_cycles` is the simulated duration under lockstep semantics: per
/// wave, the maximum warp cost (warps run concurrently across SMs); per
/// warp, the maximum lane cost (lanes run in lockstep). `lane_cycles` is
/// the total useful work; `idle_cycles` is the lockstep waste — the gap
/// between each warp's duration × width and the work its lanes actually
/// did. The ratio `idle / (idle + lane)` is the divergence the paper's
/// probing-strategy experiment (Fig. 3) is designed to reduce.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Simulated kernel duration (cycles).
    pub sim_cycles: u64,
    /// Sum of per-lane busy cycles.
    pub lane_cycles: u64,
    /// Lockstep idle cycles (divergence + load imbalance within warps).
    pub idle_cycles: u64,
    /// Hash probes performed.
    pub probes: u64,
    /// Atomic operations performed.
    pub atomics: u64,
    /// Global reads.
    pub global_reads: u64,
    /// Global writes.
    pub global_writes: u64,
    /// Waves launched.
    pub waves: u64,
    /// Threads (lanes with work) launched.
    pub threads: u64,
    /// Log2 histogram of completed probe-sequence lengths (fed by
    /// [`LaneMeter::probe_done`] via the hashtable layer).
    pub probe_hist: Hist,
    /// Log2 histogram of per-warp lockstep costs (one sample per warp
    /// folded) — the divergence distribution behind `idle_cycles`.
    pub warp_cost_hist: Hist,
    /// Load-imbalance loss: per wave, the gap between the wave's critical
    /// path × folded lane slots and the lane slots actually occupied
    /// (`lane_cycles + idle_cycles`). Cycles where whole warps sat
    /// finished while the slowest warp/block of the wave was still
    /// running. Ledger: `lane + idle + imbalance = Σ critical × slots`.
    pub imbalance_cycles: u64,
    /// Issue-throughput stall: per wave, the duration beyond the critical
    /// path charged by the occupancy-degraded throughput term of
    /// `wave_duration`. Ledger: `sim_cycles = Σ critical + stall`.
    pub stall_cycles: u64,
    /// Per-component attribution of `lane_cycles` (profiling builds):
    /// tagged at charge time by [`LaneMeter`], so `comp.total()` equals
    /// `lane_cycles` exactly — the profiler's conservation law.
    #[cfg(feature = "prof")]
    pub comp: CompCycles,
}

impl KernelStats {
    /// Zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate another launch into this one (sequential composition:
    /// durations add).
    pub fn add(&mut self, other: &KernelStats) {
        self.sim_cycles += other.sim_cycles;
        self.lane_cycles += other.lane_cycles;
        self.idle_cycles += other.idle_cycles;
        self.probes += other.probes;
        self.atomics += other.atomics;
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.waves += other.waves;
        self.threads += other.threads;
        self.probe_hist.merge(&other.probe_hist);
        self.warp_cost_hist.merge(&other.warp_cost_hist);
        self.imbalance_cycles += other.imbalance_cycles;
        self.stall_cycles += other.stall_cycles;
        #[cfg(feature = "prof")]
        self.comp.merge(&other.comp);
    }

    /// Fold one warp's lanes into the stats; returns the warp's cost
    /// (max lane cycles) for the caller's wave-level max-reduction.
    pub fn fold_warp(&mut self, lanes: &[LaneMeter]) -> u64 {
        let warp_cost = lanes.iter().map(|l| l.cycles).max().unwrap_or(0);
        for l in lanes {
            self.lane_cycles += l.cycles;
            self.idle_cycles += warp_cost - l.cycles;
            self.probes += l.probes;
            self.probe_hist.merge(&l.probe_hist);
            self.atomics += l.atomics;
            self.global_reads += l.global_reads;
            self.global_writes += l.global_writes;
            self.threads += 1;
            #[cfg(feature = "prof")]
            self.comp.merge(&l.comp);
        }
        if !lanes.is_empty() {
            self.warp_cost_hist.record(warp_cost);
        }
        warp_cost
    }

    /// Total occupied lane-slot cycles across waves: `lane_cycles +
    /// idle_cycles + imbalance_cycles`, which equals the sum over waves of
    /// the wave's critical path × folded lane slots.
    pub fn slot_cycles(&self) -> u64 {
        self.lane_cycles + self.idle_cycles + self.imbalance_cycles
    }

    /// Fraction of lockstep time wasted idle, in `[0, 1]`.
    pub fn divergence_ratio(&self) -> f64 {
        let total = self.lane_cycles + self.idle_cycles;
        if total == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / total as f64
        }
    }

    /// Fraction of lockstep time spent on useful work:
    /// `1 − divergence_ratio`.
    pub fn utilization(&self) -> f64 {
        1.0 - self.divergence_ratio()
    }

    /// Achieved occupancy in `[0, 1]`: mean fraction of the device's
    /// per-wave capacity (`wave_capacity` items) actually filled. A value
    /// well below 1 means the tail wave dominates or launches are small.
    pub fn occupancy(&self, wave_capacity: u64) -> f64 {
        let cap = self.waves * wave_capacity;
        if cap == 0 {
            0.0
        } else {
            self.threads as f64 / cap as f64
        }
    }

    /// Atomic operations per graph edge — the contention-pressure metric
    /// the paper's atomics discussion is phrased in (`edges` = directed
    /// edge count processed by the kernel).
    pub fn atomics_per_edge(&self, edges: u64) -> f64 {
        if edges == 0 {
            0.0
        } else {
            self.atomics as f64 / edges as f64
        }
    }

    /// Mean completed probe-sequence length (0 when no probes recorded).
    pub fn mean_probe_len(&self) -> f64 {
        self.probe_hist.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, LaneMeter};

    fn lane_with_cycles(n: u64) -> LaneMeter {
        let mut l = LaneMeter::new();
        l.alu(&CostModel::default_gpu(), n);
        l
    }

    #[test]
    fn fold_warp_takes_max_and_counts_idle() {
        let mut s = KernelStats::new();
        let lanes = vec![
            lane_with_cycles(10),
            lane_with_cycles(4),
            lane_with_cycles(7),
        ];
        let warp = s.fold_warp(&lanes);
        assert_eq!(warp, 10);
        assert_eq!(s.lane_cycles, 21);
        assert_eq!(s.idle_cycles, (10 - 4) + (10 - 7));
        assert_eq!(s.threads, 3);
    }

    #[test]
    fn divergence_ratio_balanced_is_zero() {
        let mut s = KernelStats::new();
        s.fold_warp(&[lane_with_cycles(5), lane_with_cycles(5)]);
        assert_eq!(s.divergence_ratio(), 0.0);
    }

    #[test]
    fn divergence_ratio_skewed() {
        let mut s = KernelStats::new();
        s.fold_warp(&[lane_with_cycles(10), lane_with_cycles(0)]);
        assert!((s.divergence_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn add_composes() {
        let mut a = KernelStats {
            sim_cycles: 5,
            waves: 1,
            ..Default::default()
        };
        let b = KernelStats {
            sim_cycles: 7,
            waves: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.sim_cycles, 12);
        assert_eq!(a.waves, 3);
    }

    #[test]
    fn empty_warp_costs_nothing() {
        let mut s = KernelStats::new();
        assert_eq!(s.fold_warp(&[]), 0);
        assert_eq!(s.divergence_ratio(), 0.0);
    }
}
