//! Simulated device descriptions.
//!
//! The simulator does not execute PTX; it reproduces the *execution model*
//! that the paper's arguments rest on: a fixed number of SMs, warps of 32
//! lanes executing in lockstep, a bounded number of co-resident threads
//! (one *wave*), and block-level cooperation through shared memory and
//! atomics. `DeviceConfig::a100()` mirrors the paper's evaluation GPU
//! (§5.1.1: NVIDIA A100, 108 SMs).

/// Static description of a simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Lanes per warp (32 on all NVIDIA hardware).
    pub warp_size: usize,
    /// Threads per block for block-per-vertex kernels.
    pub block_size: usize,
    /// Maximum co-resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Warp schedulers per SM (4 on the A100): each can issue one warp
    /// instruction per cycle, so the device's aggregate issue width is
    /// `sm_count * warp_schedulers` warps.
    pub warp_schedulers: usize,
    /// Shared memory per SM in bytes (A100: 164 KB). Kernels that reserve
    /// per-thread shared memory reduce their occupancy accordingly.
    pub shared_mem_per_sm: usize,
    /// Resident warps per SM needed to fully hide memory latency
    /// (hardware constant). Global-memory latency on Ampere is ~400–600
    /// cycles, so latency-bound kernels need close to the full 64-warp
    /// complement; kernels resident below this run at proportionally
    /// reduced throughput.
    pub saturation_warps_per_sm: usize,
}

impl DeviceConfig {
    /// The paper's evaluation GPU: NVIDIA A100 (108 SMs, 2048 resident
    /// threads per SM, 32-lane warps; we use 256-thread blocks for
    /// block-per-vertex kernels).
    pub fn a100() -> Self {
        DeviceConfig {
            sm_count: 108,
            warp_size: 32,
            block_size: 256,
            max_threads_per_sm: 2048,
            warp_schedulers: 4,
            shared_mem_per_sm: 164 * 1024,
            saturation_warps_per_sm: 64,
        }
    }

    /// A deliberately tiny device for tests: waves are small enough that
    /// multi-wave behaviour shows up on graphs with a few hundred vertices.
    pub fn tiny() -> Self {
        DeviceConfig {
            sm_count: 2,
            warp_size: 4,
            block_size: 8,
            max_threads_per_sm: 32,
            warp_schedulers: 1,
            shared_mem_per_sm: 1024,
            saturation_warps_per_sm: 1,
        }
    }

    /// Total co-resident threads — the size of one thread-per-item wave.
    pub fn resident_threads(&self) -> usize {
        self.sm_count * self.max_threads_per_sm
    }

    /// Total co-resident blocks — the size of one block-per-item wave.
    pub fn resident_blocks(&self) -> usize {
        self.sm_count * (self.max_threads_per_sm / self.block_size).max(1)
    }

    /// Aggregate warp-issue width of the device.
    pub fn issue_width(&self) -> usize {
        self.sm_count * self.warp_schedulers.max(1)
    }

    /// Device with occupancy limited by a per-thread shared-memory
    /// reservation of `bytes_per_thread`: resident threads per SM drop to
    /// what the SM's shared memory can back (at least one warp).
    pub fn with_shared_mem_per_thread(mut self, bytes_per_thread: usize) -> Self {
        if let Some(quot) = self.shared_mem_per_sm.checked_div(bytes_per_thread) {
            let limit = quot.max(self.warp_size);
            self.max_threads_per_sm = self.max_threads_per_sm.min(limit);
        }
        self
    }

    /// Human-readable preset label for reports and run provenance:
    /// `"a100"` or `"tiny"` for the shipped presets, otherwise a
    /// `"custom-<sms>sm-<threads>t"` description.
    pub fn preset_name(&self) -> String {
        if *self == Self::a100() {
            "a100".into()
        } else if *self == Self::tiny() {
            "tiny".into()
        } else {
            format!("custom-{}sm-{}t", self.sm_count, self.max_threads_per_sm)
        }
    }

    /// Validate internal consistency (warp divides block, etc.).
    pub fn validate(&self) -> Result<(), String> {
        if self.sm_count == 0 || self.warp_size == 0 || self.block_size == 0 {
            return Err("device dimensions must be positive".into());
        }
        if !self.block_size.is_multiple_of(self.warp_size) {
            return Err(format!(
                "block size {} not a multiple of warp size {}",
                self.block_size, self.warp_size
            ));
        }
        if self.max_threads_per_sm < self.block_size {
            return Err("an SM must fit at least one block".into());
        }
        Ok(())
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::a100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_shape() {
        let d = DeviceConfig::a100();
        assert_eq!(d.resident_threads(), 108 * 2048);
        assert_eq!(d.resident_blocks(), 108 * 8);
        assert!(d.validate().is_ok());
    }

    #[test]
    fn tiny_is_valid() {
        assert!(DeviceConfig::tiny().validate().is_ok());
        assert_eq!(DeviceConfig::tiny().resident_threads(), 64);
    }

    #[test]
    fn invalid_block_warp_ratio() {
        let mut d = DeviceConfig::a100();
        d.block_size = 100; // not a multiple of 32
        assert!(d.validate().is_err());
    }

    #[test]
    fn invalid_zero_sms() {
        let mut d = DeviceConfig::a100();
        d.sm_count = 0;
        assert!(d.validate().is_err());
    }

    #[test]
    fn preset_names() {
        assert_eq!(DeviceConfig::a100().preset_name(), "a100");
        assert_eq!(DeviceConfig::tiny().preset_name(), "tiny");
        let mut d = DeviceConfig::a100();
        d.sm_count = 7;
        assert_eq!(d.preset_name(), "custom-7sm-2048t");
    }

    #[test]
    fn issue_width_counts_schedulers() {
        assert_eq!(DeviceConfig::a100().issue_width(), 108 * 4);
        assert_eq!(DeviceConfig::tiny().issue_width(), 2);
    }

    #[test]
    fn shared_mem_reservation_limits_occupancy() {
        let d = DeviceConfig::a100();
        // 512 B per thread: 164 KB / 512 B = 328 threads per SM
        let limited = d.with_shared_mem_per_thread(512);
        assert_eq!(limited.max_threads_per_sm, 328);
        // tiny reservations leave occupancy untouched
        let free = d.with_shared_mem_per_thread(1);
        assert_eq!(free.max_threads_per_sm, d.max_threads_per_sm);
        // zero reservation is a no-op
        assert_eq!(d.with_shared_mem_per_thread(0), d);
        // enormous reservations still leave one warp resident
        let floor = d.with_shared_mem_per_thread(10 * 1024 * 1024);
        assert_eq!(floor.max_threads_per_sm, d.warp_size);
    }

    #[test]
    fn block_must_fit_in_sm() {
        let mut d = DeviceConfig::tiny();
        d.block_size = 64;
        d.max_threads_per_sm = 32;
        assert!(d.validate().is_err());
    }
}
