//! Shared utilities for the figure/table binaries.

use nulpa_graph::datasets::{DEFAULT_SCALE, TEST_SCALE};
use std::time::{Duration, Instant};

/// Command-line arguments shared by every harness binary.
#[derive(Clone, Copy, Debug)]
pub struct BenchArgs {
    /// Fraction of the paper's dataset sizes to generate.
    pub scale: f64,
    /// Wall-clock repetitions per measurement (paper: 5).
    pub repeats: usize,
}

impl BenchArgs {
    /// Parse `--scale <f>`, `--quick`, `--repeats <n>` from `std::env`.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{e} (supported: --scale <f>, --quick, --repeats <n>)");
                std::process::exit(2);
            }
        }
    }

    /// Testable parser over any argument iterator.
    pub fn parse_from<I>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut scale = DEFAULT_SCALE;
        let mut repeats = 5;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => {
                    scale = TEST_SCALE;
                    repeats = 2;
                }
                "--scale" => {
                    scale = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--scale needs a float")?;
                }
                "--repeats" => {
                    repeats = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--repeats needs an integer")?;
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(BenchArgs { scale, repeats })
    }
}

/// Median wall time of `repeats` runs of `f` (the paper averages five
/// runs; the median is more robust on a shared machine).
pub fn median_time<T>(repeats: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(repeats >= 1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed());
        last = Some(out);
    }
    times.sort();
    (times[times.len() / 2], last.unwrap())
}

/// Geometric mean of a series of positive ratios (the paper's "mean
/// relative runtime" aggregation).
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    let s: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    (s / xs.len() as f64).exp()
}

/// Print a figure/table header with a separator line.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_time_returns_result() {
        let (d, v) = median_time(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_defaults() {
        let a = BenchArgs::parse_from(strs(&[])).unwrap();
        assert_eq!(a.scale, nulpa_graph::datasets::DEFAULT_SCALE);
        assert_eq!(a.repeats, 5);
    }

    #[test]
    fn args_quick_and_overrides() {
        let a = BenchArgs::parse_from(strs(&["--quick"])).unwrap();
        assert_eq!(a.scale, nulpa_graph::datasets::TEST_SCALE);
        assert_eq!(a.repeats, 2);
        let a = BenchArgs::parse_from(strs(&["--scale", "0.001", "--repeats", "7"])).unwrap();
        assert_eq!(a.scale, 0.001);
        assert_eq!(a.repeats, 7);
    }

    #[test]
    fn args_errors() {
        assert!(BenchArgs::parse_from(strs(&["--scale"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--scale", "x"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--bogus"])).is_err());
    }
}
