//! Shared utilities for the figure/table binaries.

use nulpa_graph::datasets::{DEFAULT_SCALE, TEST_SCALE};
use nulpa_obs::json::{escape, fmt_f64};
use std::time::{Duration, Instant};

/// Flag summary printed by `--help` and appended to parse errors.
pub const USAGE: &str = "options: --scale <f> (fraction of the paper's graph sizes), \
--quick (tiny test scale), --repeats <n> (runs per measurement), \
--threads <n> (host threads for the simulator; also NULPA_THREADS), \
--json <path> (machine-readable results), \
--telemetry <path> (metrics-registry snapshot: .prom or JSONL), --help";

/// Command-line arguments shared by every harness binary.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchArgs {
    /// Fraction of the paper's dataset sizes to generate.
    pub scale: f64,
    /// Wall-clock repetitions per measurement (paper: 5).
    pub repeats: usize,
    /// Host threads for the simulator's sharded wave execution (`None` =
    /// auto). [`Self::parse`] exports this as `NULPA_THREADS` so every
    /// `LpaConfig::default()` in a harness picks it up.
    pub threads: Option<usize>,
    /// Override path for the machine-readable JSON report (binaries that
    /// emit one default to `results/<binary>.json`).
    pub json: Option<String>,
    /// Path for a metrics-registry snapshot written at exit via
    /// [`Self::write_telemetry`] (`.prom` → Prometheus text, else JSONL).
    pub telemetry: Option<String>,
}

impl BenchArgs {
    /// Parse `--scale <f>`, `--quick`, `--repeats <n>`, `--json <path>`
    /// from `std::env`. `--help`/`-h` prints usage and exits 0; a parse
    /// error prints usage and exits 2.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(Some(a)) => {
                if let Some(t) = a.threads {
                    // Export before any backend call so every
                    // `LpaConfig::default()` (threads = 0 → resolve via
                    // env) in this process honours the flag.
                    std::env::set_var("NULPA_THREADS", t.to_string());
                }
                a
            }
            Ok(None) => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Testable parser over any argument iterator. `Ok(None)` means
    /// `--help` was requested.
    pub fn parse_from<I>(args: I) -> Result<Option<Self>, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut scale = DEFAULT_SCALE;
        let mut repeats = 5;
        let mut threads = None;
        let mut json = None;
        let mut telemetry = None;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--help" | "-h" => return Ok(None),
                "--quick" => {
                    scale = TEST_SCALE;
                    repeats = 2;
                }
                "--scale" => {
                    scale = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--scale needs a float")?;
                }
                "--repeats" => {
                    repeats = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--repeats needs an integer")?;
                    if repeats == 0 {
                        return Err(
                            "--repeats must be at least 1 (0 runs cannot produce a measurement)"
                                .into(),
                        );
                    }
                }
                "--threads" => {
                    let t: usize = args
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a positive integer")?;
                    if t == 0 {
                        return Err("--threads needs a positive integer".into());
                    }
                    threads = Some(t);
                }
                "--json" => {
                    json = Some(args.next().ok_or("--json needs a path")?);
                }
                "--telemetry" => {
                    telemetry = Some(args.next().ok_or("--telemetry needs a path")?);
                }
                other => return Err(format!("unknown argument `{other}`")),
            }
        }
        Ok(Some(BenchArgs {
            scale,
            repeats,
            threads,
            json,
            telemetry,
        }))
    }

    /// Write a snapshot of the global metrics registry to the
    /// `--telemetry` path, if one was given. Returns the path written.
    pub fn write_telemetry(&self) -> Result<Option<&str>, String> {
        match &self.telemetry {
            None => Ok(None),
            Some(path) => {
                nulpa_telemetry::write_snapshot(path, &nulpa_telemetry::global().snapshot())?;
                Ok(Some(path))
            }
        }
    }
}

/// Wall-clock distribution over the repeats of one measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimingStats {
    /// Fastest run.
    pub min: Duration,
    /// Median (p50; even counts take the midpoint of the middle pair).
    pub p50: Duration,
    /// 95th percentile (nearest-rank; equals the max below 20 repeats).
    pub p95: Duration,
    /// Slowest run.
    pub max: Duration,
    /// Number of runs measured.
    pub repeats: usize,
}

impl TimingStats {
    /// Compute from a non-empty sample set (sorts `times` in place).
    pub fn from_times(times: &mut [Duration]) -> Self {
        assert!(!times.is_empty());
        let p50 = median_duration(times); // sorts
        let n = times.len();
        // nearest-rank percentile: smallest sample covering 95% of runs
        let p95_idx = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        TimingStats {
            min: times[0],
            p50,
            p95: times[p95_idx],
            max: times[n - 1],
            repeats: n,
        }
    }
}

/// Time `repeats` runs of `f`, returning the full timing distribution
/// alongside the last result.
pub fn timing_stats<T>(repeats: usize, mut f: impl FnMut() -> T) -> (TimingStats, T) {
    assert!(repeats >= 1, "timing_stats needs at least one repeat");
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let out = f();
        times.push(t0.elapsed());
        last = Some(out);
    }
    (TimingStats::from_times(&mut times), last.unwrap())
}

/// Median wall time of `repeats` runs of `f` (the paper averages five
/// runs; the median is more robust on a shared machine). For an even
/// number of runs the median is the midpoint of the two middle samples —
/// taking the upper element would bias every even-`repeats` measurement
/// upward by up to half the inter-sample gap.
pub fn median_time<T>(repeats: usize, f: impl FnMut() -> T) -> (Duration, T) {
    let (stats, out) = timing_stats(repeats, f);
    (stats.p50, out)
}

/// Median of a non-empty set of durations; even counts take the midpoint
/// of the two middle elements. Sorts `times` in place.
fn median_duration(times: &mut [Duration]) -> Duration {
    times.sort();
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2
    } else {
        times[mid]
    }
}

/// Geometric mean of a series of positive ratios (the paper's "mean
/// relative runtime" aggregation). `None` on an empty series — there is
/// no meaningful mean of nothing, and benchmark sweeps can legitimately
/// produce empty series (e.g. `--scale` so small a dataset degenerates).
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let s: f64 = xs.iter().map(|&x| x.max(1e-300).ln()).sum();
    Some((s / xs.len() as f64).exp())
}

/// Print a figure/table header with a separator line.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// One labelled table of a machine-readable benchmark report.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title, e.g. `"Fig. 6a: runtime in seconds"`.
    pub title: String,
    /// Column names (one per value in each row).
    pub columns: Vec<String>,
    /// Rows: a label (graph or config name) plus one value per column.
    /// Non-finite values serialise as `null`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// New empty table.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, label: &str, values: &[f64]) -> &mut Self {
        self.rows.push((label.to_string(), values.to_vec()));
        self
    }
}

/// Machine-readable benchmark report: the same tables a figure binary
/// prints, serialised as hand-rolled JSON (the build is offline — no
/// serde). See EXPERIMENTS.md for the schema.
#[derive(Clone, Debug)]
pub struct Report {
    /// Report name; the default output path is `results/<name>.json`.
    pub name: String,
    /// Scale the datasets were generated at.
    pub scale: f64,
    /// Repetitions per measurement.
    pub repeats: usize,
    /// Run provenance (`git_rev`, `threads`, `device`, `probe`), stamped
    /// into the JSON as a `meta` object. [`Self::new`] records the
    /// defaults of the run; binaries that sweep a dimension can override
    /// with [`Self::set_meta`].
    pub meta: Vec<(String, String)>,
    /// The tables, in print order.
    pub tables: Vec<Table>,
    /// Labelled timing distributions ([`Self::record_timing`]),
    /// serialised as a `timings` array with min/p50/p95/median columns.
    pub timings: Vec<(String, TimingStats)>,
}

impl Report {
    /// New empty report carrying the run's arguments and default
    /// provenance: git revision, resolved host thread count, and the
    /// device preset / probe scheme of `LpaConfig::default()` (the
    /// baseline configuration every harness starts from).
    pub fn new(name: &str, args: &BenchArgs) -> Self {
        let cfg = nulpa_core::LpaConfig::default();
        let meta = nulpa_obs::meta::run_meta(&[
            (
                "threads",
                nulpa_core::resolve_threads(args.threads.unwrap_or(0)).to_string(),
            ),
            ("device", cfg.device.preset_name()),
            ("probe", cfg.probe.label().to_string()),
            (
                "hw_threads",
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .to_string(),
            ),
        ]);
        Report {
            name: name.to_string(),
            scale: args.scale,
            repeats: args.repeats,
            meta,
            tables: Vec::new(),
            timings: Vec::new(),
        }
    }

    /// Record one labelled timing distribution for the `timings` section,
    /// mirrored into the global metrics registry (as a
    /// `bench.<report>.<label>.us` histogram) so `--telemetry` snapshots
    /// carry the same numbers.
    pub fn record_timing(&mut self, label: &str, stats: TimingStats) -> &mut Self {
        let hist = nulpa_telemetry::global().histogram(&format!(
            "bench.{}.{}.us",
            self.name,
            label.replace([' ', ':'], "_")
        ));
        for d in [stats.min, stats.p50, stats.p95, stats.max] {
            hist.record(d.as_micros() as u64);
        }
        self.timings.push((label.to_string(), stats));
        self
    }

    /// Override or append one provenance key.
    pub fn set_meta(&mut self, key: &str, value: &str) -> &mut Self {
        match self.meta.iter_mut().find(|(k, _)| k == key) {
            Some(kv) => kv.1 = value.to_string(),
            None => self.meta.push((key.to_string(), value.to_string())),
        }
        self
    }

    /// Append a table.
    pub fn push(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Serialise to a JSON document. Host memory peaks (counting
    /// allocator high-water, `VmHWM` RSS) are stamped into `meta` at
    /// serialisation time so they cover the whole measured run.
    pub fn to_json(&self) -> String {
        let mut meta = self.meta.clone();
        if let Some(h) = nulpa_telemetry::heap_stats() {
            meta.push(("alloc_peak_bytes".to_string(), h.peak_bytes.to_string()));
        }
        if let Some(rss) = nulpa_telemetry::peak_rss_bytes() {
            meta.push(("peak_rss_bytes".to_string(), rss.to_string()));
        }
        let mut out = String::new();
        out.push_str("{\n  \"name\": ");
        out.push_str(&escape(&self.name));
        out.push_str(",\n  \"scale\": ");
        out.push_str(&fmt_f64(self.scale));
        out.push_str(",\n  \"repeats\": ");
        out.push_str(&fmt_f64(self.repeats as f64));
        out.push_str(",\n  \"meta\": ");
        out.push_str(&nulpa_obs::meta::meta_json(&meta));
        out.push_str(",\n  \"timings\": [");
        for (i, (label, s)) in self.timings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"label\": ");
            out.push_str(&escape(label));
            out.push_str(&format!(
                ", \"repeats\": {}, \"min_ms\": {}, \"p50_ms\": {}, \"median_ms\": {}, \"p95_ms\": {}, \"max_ms\": {}}}",
                s.repeats,
                fmt_f64(s.min.as_secs_f64() * 1e3),
                fmt_f64(s.p50.as_secs_f64() * 1e3),
                fmt_f64(s.p50.as_secs_f64() * 1e3),
                fmt_f64(s.p95.as_secs_f64() * 1e3),
                fmt_f64(s.max.as_secs_f64() * 1e3),
            ));
        }
        if !self.timings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"title\": ");
            out.push_str(&escape(&t.title));
            out.push_str(", \"columns\": [");
            for (j, c) in t.columns.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&escape(c));
            }
            out.push_str("], \"rows\": [");
            for (j, (label, values)) in t.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("\n      {\"label\": ");
                out.push_str(&escape(label));
                out.push_str(", \"values\": [");
                for (k, v) in values.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&fmt_f64(*v));
                }
                out.push_str("]}");
            }
            if !t.rows.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]}");
        }
        if !self.tables.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Write the report to `args.json` if set, else `results/<name>.json`,
    /// creating the directory as needed. Returns the path written.
    pub fn write(&self, json_override: &Option<String>) -> Result<String, String> {
        let path = json_override
            .clone()
            .unwrap_or_else(|| format!("results/{}.json", self.name));
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
            }
        }
        std::fs::write(&path, self.to_json()).map_err(|e| format!("{path}: {e}"))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0]).unwrap() - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean(&[0.5, 2.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_empty_is_none() {
        assert_eq!(geomean(&[]), None);
    }

    #[test]
    fn median_time_returns_result() {
        let (d, v) = median_time(3, || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < 1_000_000_000);
    }

    #[test]
    fn median_even_count_is_midpoint_of_middle_pair() {
        // The old implementation returned the upper of the two middle
        // elements (40ms here), inflating every even-`repeats` run.
        let ms = Duration::from_millis;
        let mut times = vec![ms(100), ms(10), ms(40), ms(20)];
        assert_eq!(median_duration(&mut times), ms(30));
        let mut two = vec![ms(10), ms(20)];
        assert_eq!(median_duration(&mut two), ms(15));
    }

    #[test]
    fn median_odd_count_is_middle_element() {
        let ms = Duration::from_millis;
        let mut times = vec![ms(500), ms(10), ms(30)];
        assert_eq!(median_duration(&mut times), ms(30));
        let mut one = vec![ms(7)];
        assert_eq!(median_duration(&mut one), ms(7));
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_defaults() {
        let a = BenchArgs::parse_from(strs(&[])).unwrap().unwrap();
        assert_eq!(a.scale, nulpa_graph::datasets::DEFAULT_SCALE);
        assert_eq!(a.repeats, 5);
        assert_eq!(a.json, None);
    }

    #[test]
    fn args_quick_and_overrides() {
        let a = BenchArgs::parse_from(strs(&["--quick"])).unwrap().unwrap();
        assert_eq!(a.scale, nulpa_graph::datasets::TEST_SCALE);
        assert_eq!(a.repeats, 2);
        let a = BenchArgs::parse_from(strs(&["--scale", "0.001", "--repeats", "7"]))
            .unwrap()
            .unwrap();
        assert_eq!(a.scale, 0.001);
        assert_eq!(a.repeats, 7);
    }

    #[test]
    fn args_help_is_not_an_error() {
        assert_eq!(BenchArgs::parse_from(strs(&["--help"])), Ok(None));
        assert_eq!(BenchArgs::parse_from(strs(&["-h"])), Ok(None));
        assert_eq!(BenchArgs::parse_from(strs(&["--quick", "-h"])), Ok(None));
    }

    #[test]
    fn args_threads_flag() {
        let a = BenchArgs::parse_from(strs(&["--threads", "4"]))
            .unwrap()
            .unwrap();
        assert_eq!(a.threads, Some(4));
        let a = BenchArgs::parse_from(strs(&[])).unwrap().unwrap();
        assert_eq!(a.threads, None);
        assert!(BenchArgs::parse_from(strs(&["--threads"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--threads", "0"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--threads", "x"])).is_err());
    }

    #[test]
    fn args_json_flag() {
        let a = BenchArgs::parse_from(strs(&["--json", "out/x.json"]))
            .unwrap()
            .unwrap();
        assert_eq!(a.json.as_deref(), Some("out/x.json"));
        assert!(BenchArgs::parse_from(strs(&["--json"])).is_err());
    }

    #[test]
    fn args_errors() {
        assert!(BenchArgs::parse_from(strs(&["--scale"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--scale", "x"])).is_err());
        assert!(BenchArgs::parse_from(strs(&["--bogus"])).is_err());
    }

    #[test]
    fn args_zero_repeats_rejected_with_clear_error() {
        let err = BenchArgs::parse_from(strs(&["--repeats", "0"])).unwrap_err();
        assert!(err.contains("at least 1"), "unhelpful error: {err}");
        assert!(BenchArgs::parse_from(strs(&["--repeats", "1"])).is_ok());
    }

    #[test]
    fn args_telemetry_flag() {
        let a = BenchArgs::parse_from(strs(&["--telemetry", "out/m.prom"]))
            .unwrap()
            .unwrap();
        assert_eq!(a.telemetry.as_deref(), Some("out/m.prom"));
        assert!(BenchArgs::parse_from(strs(&["--telemetry"])).is_err());
    }

    #[test]
    fn timing_stats_percentiles() {
        let ms = Duration::from_millis;
        let mut times: Vec<Duration> = (1..=20).map(ms).collect();
        let s = TimingStats::from_times(&mut times);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.p50, (ms(10) + ms(11)) / 2);
        assert_eq!(s.p95, ms(19)); // nearest rank: ceil(0.95*20)=19th
        assert_eq!(s.max, ms(20));
        assert_eq!(s.repeats, 20);
        // small sample: p95 degenerates to the max
        let mut five: Vec<Duration> = vec![ms(5), ms(1), ms(3), ms(2), ms(4)];
        let s = TimingStats::from_times(&mut five);
        assert_eq!(s.p50, ms(3));
        assert_eq!(s.p95, ms(5));
    }

    #[test]
    fn timing_stats_orders_invariant() {
        let (s, v) = timing_stats(6, || 2 + 2);
        assert_eq!(v, 4);
        assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.repeats, 6);
    }

    #[test]
    fn report_timings_serialise() {
        let args = BenchArgs::parse_from(strs(&["--quick"])).unwrap().unwrap();
        let mut rep = Report::new("unit_test", &args);
        let ms = Duration::from_millis;
        let mut times = vec![ms(10), ms(20), ms(30)];
        rep.record_timing("g1::threads=2", TimingStats::from_times(&mut times));
        let v = nulpa_obs::json::parse(&rep.to_json()).unwrap();
        let timings = v.get("timings").unwrap().as_arr().unwrap();
        assert_eq!(timings.len(), 1);
        let t = &timings[0];
        assert_eq!(t.get("label").unwrap().as_str(), Some("g1::threads=2"));
        assert_eq!(t.get("min_ms").unwrap().as_f64(), Some(10.0));
        assert_eq!(t.get("p50_ms").unwrap().as_f64(), Some(20.0));
        assert_eq!(t.get("median_ms").unwrap().as_f64(), Some(20.0));
        assert_eq!(t.get("p95_ms").unwrap().as_f64(), Some(30.0));
        // meta stamps hw_threads host info
        let meta = v.get("meta").unwrap();
        assert!(meta.get("hw_threads").and_then(|m| m.as_str()).is_some());
    }

    #[test]
    fn set_meta_overrides_and_appends() {
        let args = BenchArgs::parse_from(strs(&["--quick"])).unwrap().unwrap();
        let mut rep = Report::new("unit_test", &args);
        rep.set_meta("device", "tiny").set_meta("extra", "1");
        let v = nulpa_obs::json::parse(&rep.to_json()).unwrap();
        let meta = v.get("meta").unwrap();
        assert_eq!(meta.get("device").and_then(|m| m.as_str()), Some("tiny"));
        assert_eq!(meta.get("extra").and_then(|m| m.as_str()), Some("1"));
    }

    #[test]
    fn report_serialises_to_parseable_json() {
        let args = BenchArgs::parse_from(strs(&["--quick"])).unwrap().unwrap();
        let mut rep = Report::new("unit_test", &args);
        let mut t = Table::new("runtime", &["A", "B"]);
        t.row("g1", &[1.5, f64::NAN]).row("g2", &[2.0, 3.0]);
        rep.push(t);
        rep.push(Table::new("empty", &[]));
        let text = rep.to_json();
        let v = nulpa_obs::json::parse(&text).expect("report JSON must parse");
        assert_eq!(v.get("name").unwrap().as_str(), Some("unit_test"));
        let meta = v.get("meta").expect("meta object");
        assert!(meta.get("git_rev").and_then(|m| m.as_str()).is_some());
        assert!(meta.get("threads").is_some());
        assert_eq!(meta.get("device").and_then(|m| m.as_str()), Some("a100"));
        let tables = v.get("tables").unwrap().as_arr().unwrap();
        assert_eq!(tables.len(), 2);
        let rows = tables[0].get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows[0].get("label").unwrap().as_str(), Some("g1"));
        let vals = rows[0].get("values").unwrap().as_arr().unwrap();
        assert_eq!(vals[0].as_f64(), Some(1.5));
        assert_eq!(vals[1], nulpa_obs::json::Json::Null); // NaN -> null
    }
}
