//! Figure 4: the thread-/block-per-vertex switch degree.
//!
//! Sweeps the switch degree over 2–256 (powers of two) on the figure
//! datasets and reports geometric-mean relative simulated runtime,
//! normalized per graph to the fastest setting.
//!
//! Paper result: a switch degree of 32 (the warp width) is fastest.

use nulpa_bench::{geomean, print_header, BenchArgs};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::datasets::figure_specs;

fn main() {
    let args = BenchArgs::parse();
    let degrees: Vec<u32> = (1..=8).map(|k| 1u32 << k).collect(); // 2..256

    let mut rel = vec![Vec::new(); degrees.len()];
    for spec in figure_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );
        let mut cycles = Vec::new();
        for &sd in &degrees {
            let cfg = LpaConfig::default().with_switch_degree(sd);
            let r = lpa_gpu(g, &cfg);
            cycles.push(r.stats.sim_cycles.max(1) as f64);
        }
        let min_c = cycles.iter().cloned().fold(f64::MAX, f64::min);
        for (i, c) in cycles.iter().enumerate() {
            rel[i].push(c / min_c);
        }
    }

    print_header("Fig. 4: relative runtime by switch degree");
    println!("{:>8} {:>14}", "switch", "rel. runtime");
    let mut best = (0u32, f64::MAX);
    for (i, &sd) in degrees.iter().enumerate() {
        let r = geomean(&rel[i]).unwrap_or(f64::NAN);
        println!("{:>8} {:>14.3}", sd, r);
        if r < best.1 {
            best = (sd, r);
        }
    }
    println!("\nfastest switch degree: {} (paper: 32)", best.0);
}
