//! Host-parallel scaling of the SIMT simulator and the native backend.
//!
//! Runs `nulpa`-style community detection on the largest benchmark graph
//! at 1, 2 and 4 host threads — first on the GPU-simulator backend
//! (both scheduling modes), then on the native fast path — records
//! median wall-clock per thread count, and cross-checks that every run
//! produces bit-identical labels (plus simulator statistics and
//! staged-write collision counts for the simulator runs): the
//! determinism contract of the sharded wave scheduler and of the
//! speculative-pick/sequential-repair commit. Emits
//! `results/parallel_scaling.json`.
//!
//! Speedup is only expected when the machine actually has that many
//! hardware threads. Every row carries a `degraded` flag — set when the
//! host has a single hardware thread or fewer hardware threads than the
//! row requested — so single-core CI numbers are never misread as a
//! scaling regression.
//!
//! `--check-scaling` turns the binary into a perf gate: on a host with
//! at least 4 hardware threads it exits non-zero unless the native
//! backend reaches a 2x speedup at 4 threads; on smaller hosts it
//! prints a SKIP notice and passes.

use nulpa_bench::{print_header, timing_stats, BenchArgs, Report, Table, TimingStats};
use nulpa_core::{lpa_gpu, lpa_native, lpa_native_hostprof, LpaConfig};
use nulpa_graph::datasets::figure_specs;
use nulpa_telemetry::hostprof::summarize;

// Meter the heap so the report's meta carries `alloc_peak_bytes`.
nulpa_telemetry::install_counting_alloc!();

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Speedup the native backend must reach at 4 threads for
/// `--check-scaling` to pass (only enforced when `hw_threads >= 4`).
const NATIVE_SPEEDUP_FLOOR: f64 = 2.0;

fn main() {
    // `--check-scaling` is specific to this binary; strip it before the
    // shared parser (which rejects unknown flags) sees the rest.
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let check_scaling = match raw.iter().position(|a| a == "--check-scaling") {
        Some(i) => {
            raw.remove(i);
            true
        }
        None => false,
    };
    let args = match BenchArgs::parse_from(raw) {
        Ok(Some(a)) => {
            if let Some(t) = a.threads {
                std::env::set_var("NULPA_THREADS", t.to_string());
            }
            a
        }
        Ok(None) => {
            println!("{} , --check-scaling (gate: fail unless the native backend reaches {NATIVE_SPEEDUP_FLOOR}x at 4 threads; SKIPs below 4 hw threads)", nulpa_bench::USAGE);
            return;
        }
        Err(e) => {
            eprintln!("{e}\n{}", nulpa_bench::USAGE);
            std::process::exit(2);
        }
    };

    let spec = figure_specs()
        .into_iter()
        .max_by_key(|s| s.scaled_vertices(args.scale))
        .expect("figure_specs is non-empty");
    let d = spec.generate(args.scale);
    let g = &d.graph;
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!(
        "largest bench graph: {} (|V|={}, |E|={}), host has {} hardware thread(s)",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        hw_threads
    );

    let degraded = |threads: usize| hw_threads == 1 || threads > hw_threads;

    // --- GPU-simulator ladder -------------------------------------------
    // (frontier?, threads, p50 ms, stats) — both scheduling modes run the
    // full thread ladder, and each mode's runs must be bit-identical
    // across thread counts (the deterministic-merge contract covers the
    // frontier worklist too).
    let mut rows: Vec<(bool, usize, f64, TimingStats)> = Vec::new();
    for &frontier in &[false, true] {
        let mut reference = None;
        for &threads in &THREAD_COUNTS {
            // explicit thread count, overriding any NULPA_THREADS in the env
            let cfg = LpaConfig::default()
                .with_threads(threads)
                .with_frontier(frontier);
            let (stats, r) = timing_stats(args.repeats, || lpa_gpu(g, &cfg));
            let wall = stats.p50;
            match &reference {
                None => reference = Some(r),
                Some(base) => {
                    assert_eq!(
                        r.labels, base.labels,
                        "labels diverged at {threads} threads (frontier={frontier})"
                    );
                    assert_eq!(
                        r.stats, base.stats,
                        "simulator stats diverged at {threads} threads (frontier={frontier})"
                    );
                    assert_eq!(
                        r.staged_collisions, base.staged_collisions,
                        "staged collisions diverged at {threads} threads (frontier={frontier})"
                    );
                }
            }
            rows.push((frontier, threads, wall.as_secs_f64() * 1e3, stats));
        }
    }

    // --- Native fast-path ladder ----------------------------------------
    // Degree-bucketed, cache-blocked host path (buckets on by default).
    // The speculative-pick/sequential-repair commit must keep labels
    // bit-identical to the single-thread run at every thread count.
    // Each thread count also gets one *profiled* run (outside the timing
    // loop, so recorder overhead never lands in the wall-clock columns)
    // attributing imbalance (max/mean busy) and the repair rate.
    let mut native_rows: Vec<(usize, f64, TimingStats, f64, f64)> = Vec::new();
    {
        let mut reference: Option<Vec<u32>> = None;
        for &threads in &THREAD_COUNTS {
            let cfg = LpaConfig::default().with_threads(threads);
            let (stats, r) = timing_stats(args.repeats, || lpa_native(g, &cfg));
            match &reference {
                None => reference = Some(r.labels),
                Some(base) => assert_eq!(
                    &r.labels, base,
                    "native labels diverged at {threads} threads"
                ),
            }
            let (pr, prof) = lpa_native_hostprof(g, &cfg);
            assert_eq!(
                &pr.labels,
                reference.as_ref().unwrap(),
                "profiled native labels diverged at {threads} threads"
            );
            let (imbalance, repair_rate) = prof
                .map(|d| {
                    let rep = summarize(spec.name, &d);
                    (rep.imbalance, rep.repair_rate)
                })
                .unwrap_or((1.0, 0.0));
            native_rows.push((
                threads,
                stats.p50.as_secs_f64() * 1e3,
                stats,
                imbalance,
                repair_rate,
            ));
        }
    }

    print_header(&format!(
        "Host-parallel scaling on {} ({} hw thread(s))",
        spec.name, hw_threads
    ));
    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>12} {:>10} {:>9} {:>10} {:>8}",
        "mode",
        "threads",
        "min (ms)",
        "p50 (ms)",
        "p95 (ms)",
        "speedup",
        "degraded",
        "imbalance",
        "repair"
    );
    let base_ms = rows[0].2;
    for &(frontier, threads, ms, stats) in &rows {
        println!(
            "{:<10} {threads:<8} {:>12.2} {ms:>12.2} {:>12.2} {:>9.2}x {:>9} {:>10} {:>8}",
            if frontier { "frontier" } else { "dense" },
            stats.min.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            base_ms / ms.max(1e-9),
            if degraded(threads) { "yes" } else { "no" },
            "-",
            "-",
        );
    }
    let native_base_ms = native_rows[0].1;
    for &(threads, ms, stats, imbalance, repair_rate) in &native_rows {
        println!(
            "{:<10} {threads:<8} {:>12.2} {ms:>12.2} {:>12.2} {:>9.2}x {:>9} {:>9.2}x {:>7.2}%",
            "native",
            stats.min.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            native_base_ms / ms.max(1e-9),
            if degraded(threads) { "yes" } else { "no" },
            imbalance,
            repair_rate * 100.0,
        );
    }
    println!(
        "\nall thread counts produced bit-identical labels (and simulator stats) in every mode"
    );
    if THREAD_COUNTS.iter().any(|&t| degraded(t)) {
        eprintln!(
            "warning: host has {hw_threads} hardware thread(s) but the ladder requests up to {} — \
             degraded rows measure oversubscription, not scaling; rerun on a multi-core host",
            THREAD_COUNTS.iter().max().unwrap()
        );
    }

    let mut report = Report::new("parallel_scaling", &args);
    let mut t = Table::new(
        &format!("nulpa detect wall-clock on {}", spec.name),
        &[
            "frontier",
            "threads",
            "min_ms",
            "wall_ms",
            "p95_ms",
            "speedup",
            "hw_threads",
            "degraded",
        ],
    );
    for &(frontier, threads, ms, stats) in &rows {
        let mode = if frontier { "frontier" } else { "dense" };
        t.row(
            &format!("{mode}:threads={threads}"),
            &[
                frontier as u8 as f64,
                threads as f64,
                stats.min.as_secs_f64() * 1e3,
                ms,
                stats.p95.as_secs_f64() * 1e3,
                base_ms / ms.max(1e-9),
                hw_threads as f64,
                degraded(threads) as u8 as f64,
            ],
        );
        report.record_timing(&format!("{}::{mode}:threads={threads}", spec.name), stats);
    }
    report.push(t);

    let mut nt = Table::new(
        &format!("lpa_native wall-clock on {}", spec.name),
        &[
            "threads",
            "min_ms",
            "wall_ms",
            "p95_ms",
            "speedup",
            "hw_threads",
            "degraded",
            "imbalance",
            "repair_rate",
        ],
    );
    for &(threads, ms, stats, imbalance, repair_rate) in &native_rows {
        nt.row(
            &format!("native:threads={threads}"),
            &[
                threads as f64,
                stats.min.as_secs_f64() * 1e3,
                ms,
                stats.p95.as_secs_f64() * 1e3,
                native_base_ms / ms.max(1e-9),
                hw_threads as f64,
                degraded(threads) as u8 as f64,
                imbalance,
                repair_rate,
            ],
        );
        report.record_timing(&format!("{}::native:threads={threads}", spec.name), stats);
    }
    report.push(nt);

    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
    match args.write_telemetry() {
        Ok(Some(path)) => eprintln!("telemetry snapshot written to {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write telemetry snapshot: {e}"),
    }

    if check_scaling {
        let four = native_rows
            .iter()
            .find(|(t, ..)| *t == 4)
            .expect("thread ladder includes 4");
        let speedup = native_base_ms / four.1.max(1e-9);
        if hw_threads < 4 {
            println!(
                "check-scaling: SKIP — host has {hw_threads} hardware thread(s), \
                 need 4 to enforce the {NATIVE_SPEEDUP_FLOOR}x native floor \
                 (measured {speedup:.2}x, degraded)"
            );
        } else if speedup < NATIVE_SPEEDUP_FLOOR {
            eprintln!(
                "check-scaling: FAIL — native speedup at 4 threads is {speedup:.2}x \
                 (floor {NATIVE_SPEEDUP_FLOOR}x, hw_threads={hw_threads})"
            );
            std::process::exit(1);
        } else {
            println!(
                "check-scaling: OK — native speedup at 4 threads is {speedup:.2}x \
                 (floor {NATIVE_SPEEDUP_FLOOR}x)"
            );
        }
    }
}
