//! Host-parallel scaling of the SIMT simulator.
//!
//! Runs `nulpa`-style community detection (the GPU-simulator backend)
//! on the largest benchmark graph at 1, 2 and 4 host threads, records
//! median wall-clock per thread count, and cross-checks that every run
//! produces bit-identical labels, simulator statistics and staged-write
//! collision counts — the determinism contract of the sharded wave
//! scheduler. Emits `results/parallel_scaling.json`.
//!
//! Speedup is only expected when the machine actually has that many
//! hardware threads; the report records `hw_threads` alongside the
//! measurements so single-core CI numbers are not misread as a
//! scaling regression.

use nulpa_bench::{print_header, timing_stats, BenchArgs, Report, Table};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::datasets::figure_specs;

// Meter the heap so the report's meta carries `alloc_peak_bytes`.
nulpa_telemetry::install_counting_alloc!();

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = BenchArgs::parse();

    let spec = figure_specs()
        .into_iter()
        .max_by_key(|s| s.scaled_vertices(args.scale))
        .expect("figure_specs is non-empty");
    let d = spec.generate(args.scale);
    let g = &d.graph;
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!(
        "largest bench graph: {} (|V|={}, |E|={}), host has {} hardware thread(s)",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        hw_threads
    );

    // (frontier?, threads, p50 ms, stats) — both scheduling modes run the
    // full thread ladder, and each mode's runs must be bit-identical
    // across thread counts (the deterministic-merge contract covers the
    // frontier worklist too).
    let mut rows: Vec<(bool, usize, f64, nulpa_bench::TimingStats)> = Vec::new();
    for &frontier in &[false, true] {
        let mut reference = None;
        for &threads in &THREAD_COUNTS {
            // explicit thread count, overriding any NULPA_THREADS in the env
            let cfg = LpaConfig::default()
                .with_threads(threads)
                .with_frontier(frontier);
            let (stats, r) = timing_stats(args.repeats, || lpa_gpu(g, &cfg));
            let wall = stats.p50;
            match &reference {
                None => reference = Some(r),
                Some(base) => {
                    assert_eq!(
                        r.labels, base.labels,
                        "labels diverged at {threads} threads (frontier={frontier})"
                    );
                    assert_eq!(
                        r.stats, base.stats,
                        "simulator stats diverged at {threads} threads (frontier={frontier})"
                    );
                    assert_eq!(
                        r.staged_collisions, base.staged_collisions,
                        "staged collisions diverged at {threads} threads (frontier={frontier})"
                    );
                }
            }
            rows.push((frontier, threads, wall.as_secs_f64() * 1e3, stats));
        }
    }

    print_header(&format!(
        "Host-parallel scaling of the simulator on {} ({} hw thread(s))",
        spec.name, hw_threads
    ));
    println!(
        "{:<10} {:<8} {:>12} {:>12} {:>12} {:>10}",
        "mode", "threads", "min (ms)", "p50 (ms)", "p95 (ms)", "speedup"
    );
    let base_ms = rows[0].2;
    for &(frontier, threads, ms, stats) in &rows {
        println!(
            "{:<10} {threads:<8} {:>12.2} {ms:>12.2} {:>12.2} {:>9.2}x",
            if frontier { "frontier" } else { "dense" },
            stats.min.as_secs_f64() * 1e3,
            stats.p95.as_secs_f64() * 1e3,
            base_ms / ms.max(1e-9)
        );
    }
    println!("\nall thread counts produced bit-identical labels and stats in both modes");

    let mut report = Report::new("parallel_scaling", &args);
    let mut t = Table::new(
        &format!("nulpa detect wall-clock on {}", spec.name),
        &[
            "frontier",
            "threads",
            "min_ms",
            "wall_ms",
            "p95_ms",
            "speedup",
            "hw_threads",
        ],
    );
    for &(frontier, threads, ms, stats) in &rows {
        let mode = if frontier { "frontier" } else { "dense" };
        t.row(
            &format!("{mode}:threads={threads}"),
            &[
                frontier as u8 as f64,
                threads as f64,
                stats.min.as_secs_f64() * 1e3,
                ms,
                stats.p95.as_secs_f64() * 1e3,
                base_ms / ms.max(1e-9),
                hw_threads as f64,
            ],
        );
        report.record_timing(&format!("{}::{mode}:threads={threads}", spec.name), stats);
    }
    report.push(t);
    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
    match args.write_telemetry() {
        Ok(Some(path)) => eprintln!("telemetry snapshot written to {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("warning: could not write telemetry snapshot: {e}"),
    }
}
