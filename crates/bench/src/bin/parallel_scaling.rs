//! Host-parallel scaling of the SIMT simulator.
//!
//! Runs `nulpa`-style community detection (the GPU-simulator backend)
//! on the largest benchmark graph at 1, 2 and 4 host threads, records
//! median wall-clock per thread count, and cross-checks that every run
//! produces bit-identical labels, simulator statistics and staged-write
//! collision counts — the determinism contract of the sharded wave
//! scheduler. Emits `results/parallel_scaling.json`.
//!
//! Speedup is only expected when the machine actually has that many
//! hardware threads; the report records `hw_threads` alongside the
//! measurements so single-core CI numbers are not misread as a
//! scaling regression.

use nulpa_bench::{median_time, print_header, BenchArgs, Report, Table};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::datasets::figure_specs;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn main() {
    let args = BenchArgs::parse();

    let spec = figure_specs()
        .into_iter()
        .max_by_key(|s| s.scaled_vertices(args.scale))
        .expect("figure_specs is non-empty");
    let d = spec.generate(args.scale);
    let g = &d.graph;
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    eprintln!(
        "largest bench graph: {} (|V|={}, |E|={}), host has {} hardware thread(s)",
        spec.name,
        g.num_vertices(),
        g.num_edges(),
        hw_threads
    );

    let mut rows: Vec<(usize, f64)> = Vec::new();
    let mut reference = None;
    for &threads in &THREAD_COUNTS {
        // explicit thread count, overriding any NULPA_THREADS in the env
        let cfg = LpaConfig::default().with_threads(threads);
        let (wall, r) = median_time(args.repeats, || lpa_gpu(g, &cfg));
        match &reference {
            None => reference = Some(r),
            Some(base) => {
                assert_eq!(
                    r.labels, base.labels,
                    "labels diverged at {threads} threads"
                );
                assert_eq!(
                    r.stats, base.stats,
                    "simulator stats diverged at {threads} threads"
                );
                assert_eq!(
                    r.staged_collisions, base.staged_collisions,
                    "staged collisions diverged at {threads} threads"
                );
            }
        }
        rows.push((threads, wall.as_secs_f64() * 1e3));
    }

    print_header(&format!(
        "Host-parallel scaling of the simulator on {} ({} hw thread(s))",
        spec.name, hw_threads
    ));
    println!("{:<8} {:>12} {:>10}", "threads", "wall (ms)", "speedup");
    let base_ms = rows[0].1;
    for &(threads, ms) in &rows {
        println!("{threads:<8} {ms:>12.2} {:>9.2}x", base_ms / ms.max(1e-9));
    }
    println!("\nall thread counts produced bit-identical labels and stats");

    let mut report = Report::new("parallel_scaling", &args);
    let mut t = Table::new(
        &format!("nulpa detect wall-clock on {}", spec.name),
        &["threads", "wall_ms", "speedup", "hw_threads"],
    );
    for &(threads, ms) in &rows {
        t.row(
            &format!("threads={threads}"),
            &[
                threads as f64,
                ms,
                base_ms / ms.max(1e-9),
                hw_threads as f64,
            ],
        );
    }
    report.push(t);
    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
}
