//! Figure 6: the headline comparison — FLPA (sequential), NetworKit PLP
//! (parallel), Gunrock-style synchronous LP, Louvain (cuGraph stand-in),
//! and ν-LPA (native port) on every dataset.
//!
//! Three panels, exactly as the paper reports them:
//!   (a) wall-clock runtime in seconds per graph,
//!   (b) speedup of ν-LPA over each baseline (geometric mean at the end),
//!   (c) modularity of the detected communities per graph.
//!
//! Paper results (A100 vs dual-Xeon server): ν-LPA 364× vs FLPA, 62× vs
//! NetworKit, 2.6× vs Gunrock, 37× vs cuGraph Louvain; modularity +4.7 %
//! vs FLPA, −6.1 % vs NetworKit, −9.6 % vs Louvain, Gunrock very low.
//! Absolute factors here are CPU-vs-CPU and therefore smaller — the
//! orderings are the reproduction target (see EXPERIMENTS.md).

use nulpa_baselines::{flpa, gunrock_lp, louvain, networkit_plp};
use nulpa_baselines::{GunrockConfig, LouvainConfig, PlpConfig};
use nulpa_bench::{geomean, median_time, print_header, BenchArgs, Report, Table};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::datasets::all_specs;
use nulpa_graph::Csr;
use nulpa_metrics::modularity_par;

const IMPLS: [&str; 5] = ["FLPA", "NetworKit", "Gunrock", "Louvain", "nu-LPA"];

fn run_impl(idx: usize, g: &Csr) -> Vec<u32> {
    match idx {
        0 => flpa(g, 1).labels,
        1 => networkit_plp(g, &PlpConfig::default()).labels,
        2 => gunrock_lp(g, &GunrockConfig::default()).labels,
        3 => louvain(g, &LouvainConfig::default()).labels,
        4 => lpa_native(g, &LpaConfig::default()).labels,
        _ => unreachable!(),
    }
}

fn main() {
    let args = BenchArgs::parse();

    let mut speedups = vec![Vec::new(); IMPLS.len()];
    let mut all_q = vec![Vec::new(); IMPLS.len()];
    let mut per_graph: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    let mut best_rate = (String::new(), 0.0f64);

    for spec in all_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );

        let mut times = Vec::new();
        let mut quals = Vec::new();
        for i in 0..IMPLS.len() {
            let (t, labels) = median_time(args.repeats, || run_impl(i, g));
            times.push(t.as_secs_f64().max(1e-9));
            quals.push(modularity_par(g, &labels));
        }
        let nu = times[4];
        for i in 0..IMPLS.len() {
            speedups[i].push(times[i] / nu);
            all_q[i].push(quals[i]);
        }
        let rate = g.num_edges() as f64 / nu / 1e6;
        if rate > best_rate.1 {
            best_rate = (spec.name.to_string(), rate);
        }
        per_graph.push((spec.name.to_string(), times, quals));
    }

    let fmt_row = |name: &str, v: &[f64]| {
        format!(
            "{:<17} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            name, v[0], v[1], v[2], v[3], v[4]
        )
    };

    print_header("Fig. 6a: runtime in seconds");
    println!(
        "{:<17} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "graph", IMPLS[0], IMPLS[1], IMPLS[2], IMPLS[3], IMPLS[4]
    );
    for (name, times, _) in &per_graph {
        println!("{}", fmt_row(name, times));
    }

    print_header("Fig. 6b: speedup of nu-LPA (geometric mean over graphs)");
    for i in 0..4 {
        println!(
            "nu-LPA vs {:<10}: {:>8.2}x",
            IMPLS[i],
            geomean(&speedups[i]).unwrap_or(f64::NAN)
        );
    }
    println!("(paper, GPU vs CPUs: 364x FLPA, 62x NetworKit, 2.6x Gunrock, 37x Louvain)");
    println!(
        "peak processing rate: {:.1} M edges/s on {} (paper: 3.0 B edges/s on it-2004)",
        best_rate.1, best_rate.0
    );

    print_header("Fig. 6c: modularity of detected communities");
    println!(
        "{:<17} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "graph", IMPLS[0], IMPLS[1], IMPLS[2], IMPLS[3], IMPLS[4]
    );
    for (name, _, quals) in &per_graph {
        println!("{}", fmt_row(name, quals));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let nu_q = mean(&all_q[4]);
    println!("\nmean modularity: FLPA {:.4}, NetworKit {:.4}, Gunrock {:.4}, Louvain {:.4}, nu-LPA {:.4}",
        mean(&all_q[0]), mean(&all_q[1]), mean(&all_q[2]), mean(&all_q[3]), nu_q);
    println!(
        "nu-LPA vs FLPA: {:+.1}% | vs NetworKit: {:+.1}% | vs Louvain: {:+.1}%  (paper: +4.7%, -6.1%, -9.6%)",
        100.0 * (nu_q - mean(&all_q[0])) / mean(&all_q[0]).abs().max(1e-9),
        100.0 * (nu_q - mean(&all_q[1])) / mean(&all_q[1]).abs().max(1e-9),
        100.0 * (nu_q - mean(&all_q[3])) / mean(&all_q[3]).abs().max(1e-9),
    );

    // machine-readable mirror of the three panels
    let mut report = Report::new("fig_compare", &args);
    let mut t_run = Table::new("Fig. 6a: runtime in seconds", &IMPLS);
    let mut t_qual = Table::new("Fig. 6c: modularity of detected communities", &IMPLS);
    for (name, times, quals) in &per_graph {
        t_run.row(name, times);
        t_qual.row(name, quals);
    }
    let mut t_speed = Table::new(
        "Fig. 6b: speedup of nu-LPA (geometric mean over graphs)",
        &["speedup"],
    );
    for i in 0..4 {
        t_speed.row(IMPLS[i], &[geomean(&speedups[i]).unwrap_or(f64::NAN)]);
    }
    report.push(t_run).push(t_speed).push(t_qual);
    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
}
