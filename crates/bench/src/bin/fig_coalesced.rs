//! Figure 7 (appendix): default open-addressing hashtable vs coalesced
//! chaining.
//!
//! The paper reports that a coalesced-chaining table (open addressing
//! threaded with a `nexts` array) "did not improve performance" over the
//! default quadratic-double design. This harness replays the exact label
//! accumulation workload of one ν-LPA iteration — every vertex's
//! neighbour-label multiset, taken from a converged ν-LPA run — through
//! both table designs, metering simulated cycles with the same cost
//! model, and reports the per-dataset and mean relative cost.

use nulpa_bench::{geomean, print_header, BenchArgs};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::datasets::figure_specs;
use nulpa_hashtab::{
    CoalescedAddr, CoalescedTable, ProbeStrategy, TableAddr, TableMut, TableSlot, EMPTY_KEY,
    NO_NEXT,
};
use nulpa_simt::{CostModel, LaneMeter};

fn main() {
    let args = BenchArgs::parse();
    let cost = CostModel::default_gpu();

    let mut rel_default = Vec::new();
    let mut rel_coalesced = Vec::new();

    print_header("Fig. 7: default (quadratic-double) vs coalesced chaining");
    println!("{:<17} {:>14} {:>14}", "graph", "default", "coalesced");

    for spec in figure_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        // realistic key distribution: labels after convergence
        let labels = lpa_native(g, &LpaConfig::default()).labels;

        let mut meter_default = LaneMeter::new();
        let mut meter_coalesced = LaneMeter::new();

        for v in g.vertices() {
            let degree = g.degree(v);
            if degree == 0 {
                continue;
            }
            let slot = TableSlot::for_vertex(g.offset(v), degree);
            let buf_len = 2 * g.num_edges();
            let addr = TableAddr::from_start(slot.start, buf_len);
            let caddr = CoalescedAddr {
                keys: slot.start,
                values: buf_len + slot.start,
                nexts: 2 * buf_len + slot.start,
            };

            let mut keys = vec![EMPTY_KEY; slot.capacity];
            let mut values = vec![0.0f32; slot.capacity];
            let mut t = TableMut::<f32>::new(&mut keys, &mut values, slot.p2);
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue;
                }
                t.accumulate_metered(
                    ProbeStrategy::QuadraticDouble,
                    labels[j as usize],
                    w,
                    addr,
                    &mut meter_default,
                    &cost,
                );
            }

            let mut keys = vec![EMPTY_KEY; slot.capacity];
            let mut values = vec![0.0f32; slot.capacity];
            let mut nexts = vec![NO_NEXT; slot.capacity];
            let mut t = CoalescedTable::<f32>::new(&mut keys, &mut values, &mut nexts);
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue;
                }
                t.accumulate(
                    labels[j as usize],
                    w,
                    Some((&mut meter_coalesced, &cost, caddr)),
                );
            }
        }

        let cd = meter_default.cycles.max(1) as f64;
        let cc = meter_coalesced.cycles.max(1) as f64;
        let min = cd.min(cc);
        println!("{:<17} {:>14.3} {:>14.3}", spec.name, cd / min, cc / min);
        rel_default.push(cd / min);
        rel_coalesced.push(cc / min);
    }

    println!(
        "\nmean relative cost: default {:.3}, coalesced {:.3} (paper: coalesced did not improve performance)",
        geomean(&rel_default).unwrap_or(f64::NAN),
        geomean(&rel_coalesced).unwrap_or(f64::NAN)
    );
}
