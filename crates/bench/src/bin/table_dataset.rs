//! Table 1: the dataset list with `|V|`, `|E|`, `D_avg`, and `|Γ|` — the
//! number of communities ν-LPA finds. Runs the native ν-LPA backend on
//! every stand-in at the requested scale and prints the same columns the
//! paper reports (plus the original graphs' sizes for reference).

use nulpa_bench::{print_header, BenchArgs};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::datasets::all_specs;

fn main() {
    let args = BenchArgs::parse();
    print_header("Table 1: datasets (synthetic stand-ins) and |Γ| under ν-LPA");
    println!(
        "{:<17} {:>9} {:>10} {:>7} {:>9}   (paper: |V|, |E|)",
        "Graph", "|V|", "|E|", "D_avg", "|Γ|"
    );

    let mut group = None;
    for spec in all_specs() {
        if group != Some(spec.category) {
            group = Some(spec.category);
            println!("--- {} ---", spec.category.label());
        }
        let d = spec.generate(args.scale);
        let g = &d.graph;
        let r = lpa_native(g, &LpaConfig::default());
        println!(
            "{:<17} {:>9} {:>10} {:>7.1} {:>9}   ({:.2}M, {:.0}M)",
            format!("{}{}", spec.name, if spec.directed { "*" } else { "" }),
            g.num_vertices(),
            g.num_edges(),
            g.avg_degree(),
            r.num_communities(),
            spec.paper_vertices as f64 / 1e6,
            spec.paper_edges as f64 / 1e6,
        );
    }
}
