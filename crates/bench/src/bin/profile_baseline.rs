//! Perf baseline for the cycle-attribution profiler.
//!
//! Default mode profiles the built-in graph trio across every profiling
//! backend and writes `results/prof_baseline.json` — the committed
//! reference the CI perf gate compares against. `--check` re-profiles
//! the same matrix, writes `results/prof_current.json`, and exits
//! non-zero if any attributed cycle component regressed beyond the
//! tolerance relative to the committed baseline. The simulator is
//! deterministic, so any drift is a real cost-model or algorithm
//! change, not noise.
//!
//! ```text
//! profile_baseline [--check] [--baseline PATH] [--out PATH]
//!                  [--tolerance PCT] [--help]
//! ```

use nulpa_core::{resolve_threads, LpaConfig};
use nulpa_graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
use nulpa_graph::Csr;
use nulpa_obs::meta::run_meta;
use nulpa_prof::json::report_to_json;
use nulpa_prof::{backends, compare_profiles, profile_graph, GraphProfile};
use std::process::ExitCode;

const USAGE: &str = "profile_baseline: write or check the profiler perf baseline
options: --check (compare against the baseline instead of rewriting it),
--baseline <path> (default results/prof_baseline.json),
--out <path> (default results/prof_baseline.json, or results/prof_current.json with --check),
--tolerance <pct> (allowed regression, default 5), --help";

struct Args {
    check: bool,
    baseline: String,
    out: Option<String>,
    tolerance: u64,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut a = Args {
        check: false,
        baseline: "results/prof_baseline.json".into(),
        out: None,
        tolerance: 5,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--check" => a.check = true,
            "--baseline" => a.baseline = it.next().ok_or("--baseline needs a path")?,
            "--out" => a.out = Some(it.next().ok_or("--out needs a path")?),
            "--tolerance" => {
                a.tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs an integer percent")?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(a))
}

/// The same built-in trio `nulpa sancheck` and `nulpa profile` use: two
/// planted-partition graphs and one noise graph, all small enough that
/// the full matrix profiles in seconds.
fn graph_trio() -> Vec<(String, Csr)> {
    vec![
        ("two-cliques-s6".into(), two_cliques_light_bridge(6)),
        ("caveman-4x8".into(), caveman_weighted(4, 8, 0.5)),
        ("erdos-renyi-256".into(), erdos_renyi(256, 768, 42)),
    ]
}

fn run_matrix() -> Result<Vec<GraphProfile>, String> {
    let mut profiles = Vec::new();
    for (gname, g) in &graph_trio() {
        for spec in &backends() {
            let gp = profile_graph(gname, g, spec);
            if let Err(e) = &gp.conservation {
                return Err(format!("{gname}/{}: conservation failed: {e}", spec.name));
            }
            profiles.push(gp);
        }
    }
    Ok(profiles)
}

/// The frontier acceptance lock: the compacted active-set mode must beat
/// its dense counterpart by at least this much on at least one
/// `(graph, device)` cell of the matrix. The simulator is deterministic,
/// so a miss means the frontier scheduling genuinely regressed.
const FRONTIER_MIN_REDUCTION_PCT: f64 = 25.0;

fn check_frontier_win(profiles: &[GraphProfile]) -> Result<(), String> {
    let mut best: Option<(String, f64)> = None;
    for gp in profiles {
        let Some(dense_name) = gp.profile.backend.strip_suffix("-frontier") else {
            continue;
        };
        let dense = profiles
            .iter()
            .find(|d| d.profile.backend == dense_name && d.profile.graph == gp.profile.graph)
            .ok_or_else(|| {
                format!(
                    "frontier gate: no dense counterpart `{dense_name}` for {}/{}",
                    gp.profile.graph, gp.profile.backend
                )
            })?;
        let red = 100.0
            * (1.0 - gp.profile.totals.sim_cycles as f64 / dense.profile.totals.sim_cycles as f64);
        println!(
            "frontier vs dense {:<18} {:<6} {:>+6.1}% sim cycles",
            gp.profile.graph, dense_name, -red
        );
        if best.as_ref().is_none_or(|(_, r)| red > *r) {
            best = Some((format!("{}/{dense_name}", gp.profile.graph), red));
        }
    }
    match best {
        Some((cell, red)) if red >= FRONTIER_MIN_REDUCTION_PCT => {
            println!(
                "frontier gate: {cell} cut {red:.1}% of simulated cycles \
                 (threshold {FRONTIER_MIN_REDUCTION_PCT}%)"
            );
            Ok(())
        }
        Some((cell, red)) => Err(format!(
            "frontier gate failed: best reduction {red:.1}% ({cell}) is below \
             the locked {FRONTIER_MIN_REDUCTION_PCT}% threshold"
        )),
        None => Err("frontier gate: no frontier backends in the matrix".into()),
    }
}

fn write_report(path: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let profiles = run_matrix()?;
    let cfg = LpaConfig::default();
    let meta = run_meta(&[
        ("threads", resolve_threads(cfg.threads).to_string()),
        ("device", cfg.device.preset_name()),
        ("probe", cfg.probe.label().to_string()),
    ]);
    let text = report_to_json(&meta, &profiles);
    for gp in &profiles {
        println!(
            "profiled {:<18} {:<12} {:>10} cycles, {} iterations, {} communities",
            gp.profile.graph,
            gp.profile.backend,
            gp.profile.totals.sim_cycles,
            gp.profile.iterations,
            gp.communities,
        );
    }
    check_frontier_win(&profiles)?;

    if !args.check {
        let out = args.out.clone().unwrap_or_else(|| args.baseline.clone());
        write_report(&out, &text)?;
        println!("baseline written to {out} ({} profiles)", profiles.len());
        return Ok(());
    }

    let out = args
        .out
        .clone()
        .unwrap_or_else(|| "results/prof_current.json".into());
    write_report(&out, &text)?;
    println!("current profile written to {out}");
    let baseline = std::fs::read_to_string(&args.baseline).map_err(|e| {
        format!(
            "{}: {e} (generate it with `profile_baseline`)",
            args.baseline
        )
    })?;
    let report = compare_profiles(&baseline, &text, args.tolerance)?;
    for line in &report.improvements {
        println!("note: {line}");
    }
    for line in &report.regressions {
        eprintln!("REGRESSION: {line}");
    }
    if report.passed() {
        println!(
            "perf gate passed: {} metrics within {}% of {}",
            report.checked, args.tolerance, args.baseline
        );
        Ok(())
    } else {
        Err(format!(
            "perf gate failed: {} regression(s) beyond {}%",
            report.regressions.len(),
            args.tolerance
        ))
    }
}
