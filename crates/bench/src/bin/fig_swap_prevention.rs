//! Figure 1: community-swap prevention techniques.
//!
//! Sweeps Cross-Check every 1–4 iterations (CC1–CC4), Pick-Less every
//! 1–4 iterations (PL1–PL4), and all 16 Hybrid combinations on the
//! figure datasets, running the GPU-simulator backend. Reports, per
//! method, the geometric-mean *relative runtime* (simulated cycles,
//! normalized per graph to the fastest method) and geometric-mean
//! *relative modularity* (normalized to the best method per graph) —
//! the two panels of the paper's Fig. 1.
//!
//! Paper result to compare against: PL4 attains the highest modularity
//! while being only ~8 % slower than the fastest method (CC2).

use nulpa_bench::{geomean, print_header, BenchArgs, Report, Table};
use nulpa_core::{lpa_gpu, LpaConfig, SwapMode};
use nulpa_graph::datasets::figure_specs;
use nulpa_metrics::modularity_par;

fn main() {
    let args = BenchArgs::parse();

    let mut modes = vec![SwapMode::Off];
    for every in 1..=4 {
        modes.push(SwapMode::CrossCheck { every });
    }
    for every in 1..=4 {
        modes.push(SwapMode::PickLess { every });
    }
    for cc in 1..=4 {
        for pl in 1..=4 {
            modes.push(SwapMode::Hybrid {
                cc_every: cc,
                pl_every: pl,
            });
        }
    }

    // per graph: (cycles, modularity) per mode
    let specs = figure_specs();
    let mut cycles = vec![Vec::new(); modes.len()];
    let mut quality = vec![Vec::new(); modes.len()];

    for spec in &specs {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );
        let mut graph_cycles = Vec::new();
        let mut graph_q = Vec::new();
        for mode in &modes {
            let cfg = LpaConfig::default().with_swap_mode(*mode);
            let r = lpa_gpu(g, &cfg);
            graph_cycles.push(r.stats.sim_cycles.max(1) as f64);
            graph_q.push(modularity_par(g, &r.labels).max(1e-6));
        }
        let min_c = graph_cycles.iter().cloned().fold(f64::MAX, f64::min);
        let max_q = graph_q.iter().cloned().fold(f64::MIN, f64::max);
        for (i, (c, q)) in graph_cycles.iter().zip(&graph_q).enumerate() {
            cycles[i].push(c / min_c);
            quality[i].push(q / max_q);
        }
    }

    print_header("Fig. 1: mean relative runtime & modularity by swap-prevention method");
    println!(
        "{:<8} {:>16} {:>20}",
        "method", "rel. runtime", "rel. modularity"
    );
    let mut best = (String::new(), 0.0f64);
    let mut table = Table::new(
        "Fig. 1: mean relative runtime & modularity by swap-prevention method",
        &["rel_runtime", "rel_modularity"],
    );
    for (i, mode) in modes.iter().enumerate() {
        let rc = geomean(&cycles[i]).unwrap_or(f64::NAN);
        let rq = geomean(&quality[i]).unwrap_or(f64::NAN);
        println!("{:<8} {:>16.3} {:>20.4}", mode.label(), rc, rq);
        table.row(&mode.label(), &[rc, rq]);
        if rq > best.1 {
            best = (mode.label(), rq);
        }
    }
    println!(
        "\nhighest mean relative modularity: {} (paper: PL4)",
        best.0
    );

    let mut report = Report::new("fig_swap_prevention", &args);
    report.push(table);
    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
}
