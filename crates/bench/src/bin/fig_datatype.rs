//! Figure 5: 32-bit vs 64-bit floating-point hashtable values.
//!
//! Runs the GPU-simulator backend with `f32` ("Float") and `f64`
//! ("Double") hashtable values on the figure datasets, reporting relative
//! simulated runtime, native wall-clock, and the modularity of the
//! detected communities.
//!
//! Paper result: Float gives a moderate speedup with no quality loss.

use nulpa_bench::{geomean, median_time, print_header, BenchArgs};
use nulpa_core::{lpa_gpu, lpa_native, LpaConfig, ValueType};
use nulpa_graph::datasets::figure_specs;
use nulpa_metrics::modularity_par;

fn main() {
    let args = BenchArgs::parse();
    let types = [ValueType::F32, ValueType::F64];

    let mut rel_cycles = vec![Vec::new(); 2];
    let mut rel_wall = vec![Vec::new(); 2];
    let mut qualities = vec![Vec::new(); 2];

    for spec in figure_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );
        let mut cycles = Vec::new();
        let mut walls = Vec::new();
        for (i, vt) in types.iter().enumerate() {
            let cfg = LpaConfig::default().with_value_type(*vt);
            let r = lpa_gpu(g, &cfg);
            cycles.push(r.stats.sim_cycles.max(1) as f64);
            qualities[i].push(modularity_par(g, &r.labels));
            let (t, _) = median_time(args.repeats, || lpa_native(g, &cfg));
            walls.push(t.as_secs_f64().max(1e-9));
        }
        for i in 0..2 {
            rel_cycles[i].push(cycles[i] / cycles[0]);
            rel_wall[i].push(walls[i] / walls[0]);
        }
    }

    print_header("Fig. 5: Float vs Double hashtable values");
    println!(
        "{:<8} {:>16} {:>14} {:>12}",
        "type", "rel. sim cycles", "rel. native", "mean Q"
    );
    for (i, label) in ["Float", "Double"].iter().enumerate() {
        let mean_q: f64 = qualities[i].iter().sum::<f64>() / qualities[i].len() as f64;
        println!(
            "{:<8} {:>16.3} {:>14.3} {:>12.4}",
            label,
            geomean(&rel_cycles[i]).unwrap_or(f64::NAN),
            geomean(&rel_wall[i]).unwrap_or(f64::NAN),
            mean_q
        );
    }
    println!(
        "\nDouble/Float simulated slowdown: {:.2}x; |ΔQ| = {:.4} (paper: moderate speedup, no quality loss)",
        geomean(&rel_cycles[1]).unwrap_or(f64::NAN),
        (qualities[0].iter().sum::<f64>() - qualities[1].iter().sum::<f64>()).abs()
            / qualities[0].len() as f64
    );
}
