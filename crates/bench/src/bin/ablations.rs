//! Ablation studies for the design choices the paper adopts from GVE-LPA
//! without re-measuring on the GPU (DESIGN.md §4):
//!
//! 1. **Vertex pruning** (paper §4, feature 4) — reprocess only vertices
//!    whose neighbourhood changed vs. full sweeps every iteration.
//! 2. **Convergence tolerance** (paper §2's critique of NetworKit:
//!    "a tolerance of 10⁻² generally obtains communities of nearly the
//!    same quality [as 10⁻⁵], but converges much faster") — τ sweep.
//! 3. **Maximum iterations** — the value 20 vs. unconstrained.
//!
//! Metrics: simulated cycles on the GPU backend, iterations, and
//! modularity, geometric-mean-normalized across the figure datasets.

use nulpa_bench::{geomean, print_header, BenchArgs, Report, Table};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::datasets::figure_specs;
use nulpa_metrics::modularity_par;

fn sweep(args: &BenchArgs, configs: &[(String, LpaConfig)]) -> Vec<(String, f64, f64, f64)> {
    let mut cycles = vec![Vec::new(); configs.len()];
    let mut quality = vec![Vec::new(); configs.len()];
    let mut iters = vec![Vec::new(); configs.len()];
    for spec in figure_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        let mut graph_cycles = Vec::new();
        for (i, (_, cfg)) in configs.iter().enumerate() {
            let r = lpa_gpu(g, cfg);
            graph_cycles.push(r.stats.sim_cycles.max(1) as f64);
            quality[i].push(modularity_par(g, &r.labels).max(1e-6));
            iters[i].push(r.iterations as f64);
        }
        let min_c = graph_cycles.iter().cloned().fold(f64::MAX, f64::min);
        for (i, c) in graph_cycles.iter().enumerate() {
            cycles[i].push(c / min_c);
        }
    }
    configs
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            (
                name.clone(),
                geomean(&cycles[i]).unwrap_or(f64::NAN),
                quality[i].iter().sum::<f64>() / quality[i].len() as f64,
                iters[i].iter().sum::<f64>() / iters[i].len() as f64,
            )
        })
        .collect()
}

fn print_rows(rows: &[(String, f64, f64, f64)]) {
    println!(
        "{:<22} {:>14} {:>10} {:>10}",
        "config", "rel. runtime", "mean Q", "iters"
    );
    for (name, rc, q, it) in rows {
        println!("{name:<22} {rc:>14.3} {q:>10.4} {it:>10.1}");
    }
}

fn to_table(title: &str, rows: &[(String, f64, f64, f64)]) -> Table {
    let mut t = Table::new(title, &["rel_runtime", "mean_Q", "iters"]);
    for (name, rc, q, it) in rows {
        t.row(name, &[*rc, *q, *it]);
    }
    t
}

fn main() {
    let args = BenchArgs::parse();
    let mut report = Report::new("ablations", &args);

    print_header("Ablation 1: vertex pruning");
    let rows = sweep(
        &args,
        &[
            ("pruning on (paper)".into(), LpaConfig::default()),
            (
                "pruning off".into(),
                LpaConfig::default().with_pruning(false),
            ),
        ],
    );
    print_rows(&rows);
    report.push(to_table("Ablation 1: vertex pruning", &rows));

    print_header("Ablation 2: convergence tolerance τ");
    let configs: Vec<(String, LpaConfig)> = [0.1, 0.05, 0.01, 1e-5]
        .into_iter()
        .map(|t| {
            (
                format!("tau = {t}"),
                LpaConfig::default()
                    .with_tolerance(t)
                    .with_max_iterations(100),
            )
        })
        .collect();
    let rows = sweep(&args, &configs);
    print_rows(&rows);
    println!("(paper: tau = 1e-2 gives nearly the quality of 1e-5, much faster)");
    report.push(to_table("Ablation 2: convergence tolerance tau", &rows));

    print_header("Ablation 3: shared-memory hashtables for low-degree vertices");
    let rows = sweep(
        &args,
        &[
            ("global tables (paper)".into(), LpaConfig::default()),
            (
                "shared-mem tables".into(),
                LpaConfig::default().with_shared_tables(true),
            ),
        ],
    );
    print_rows(&rows);
    println!("(paper: shared-memory tables gave little to no performance gain)");
    report.push(to_table(
        "Ablation 3: shared-memory hashtables for low-degree vertices",
        &rows,
    ));

    print_header("Ablation 4: iteration cap");
    let configs: Vec<(String, LpaConfig)> = [5u32, 10, 20, 100]
        .into_iter()
        .map(|m| {
            (
                format!("max_iter = {m}"),
                LpaConfig::default().with_max_iterations(m),
            )
        })
        .collect();
    let rows = sweep(&args, &configs);
    print_rows(&rows);
    report.push(to_table("Ablation 4: iteration cap", &rows));

    match report.write(&args.json) {
        Ok(path) => eprintln!("json report written to {path}"),
        Err(e) => eprintln!("warning: could not write json report: {e}"),
    }
}
