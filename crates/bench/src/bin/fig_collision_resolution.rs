//! Figure 3: collision-resolution strategies for the per-vertex
//! hashtables — Linear, Quadratic, Double, and the paper's hybrid
//! Quadratic-double.
//!
//! Runs the GPU-simulator backend with each strategy on the figure
//! datasets and reports geometric-mean relative simulated runtime
//! (normalized per graph to the fastest strategy), plus the underlying
//! drivers: probes per accumulation and warp-divergence ratio.
//!
//! Paper result: quadratic-double fastest — 2.8× / 3.7× / 3.2× faster
//! than linear / quadratic / double respectively.

use nulpa_bench::{geomean, print_header, BenchArgs};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::datasets::figure_specs;
use nulpa_hashtab::ProbeStrategy;

fn main() {
    let args = BenchArgs::parse();
    let strategies = ProbeStrategy::all();

    let mut rel_cycles = vec![Vec::new(); strategies.len()];
    let mut probes_per_edge = vec![Vec::new(); strategies.len()];
    let mut divergence = vec![Vec::new(); strategies.len()];

    for spec in figure_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );
        let mut graph_cycles = Vec::new();
        for (i, s) in strategies.iter().enumerate() {
            let cfg = LpaConfig::default().with_probe(*s);
            let r = lpa_gpu(g, &cfg);
            graph_cycles.push(r.stats.sim_cycles.max(1) as f64);
            probes_per_edge[i].push(r.stats.probes as f64 / g.num_edges().max(1) as f64);
            divergence[i].push(r.stats.divergence_ratio());
        }
        let min_c = graph_cycles.iter().cloned().fold(f64::MAX, f64::min);
        for (i, c) in graph_cycles.iter().enumerate() {
            rel_cycles[i].push(c / min_c);
        }
    }

    print_header("Fig. 3: relative runtime by collision-resolution strategy");
    println!(
        "{:<18} {:>14} {:>16} {:>12}",
        "strategy", "rel. runtime", "probes/edge-scan", "divergence"
    );
    for (i, s) in strategies.iter().enumerate() {
        println!(
            "{:<18} {:>14.3} {:>16.3} {:>12.3}",
            s.label(),
            geomean(&rel_cycles[i]).unwrap_or(f64::NAN),
            geomean(&probes_per_edge[i]).unwrap_or(f64::NAN),
            geomean(&divergence[i]).unwrap_or(f64::NAN),
        );
    }
    let qd = geomean(&rel_cycles[3]).unwrap_or(f64::NAN);
    println!(
        "\nquadratic-double vs linear/quadratic/double: {:.2}x / {:.2}x / {:.2}x (paper: 2.8x / 3.7x / 3.2x)",
        geomean(&rel_cycles[0]).unwrap_or(f64::NAN) / qd,
        geomean(&rel_cycles[1]).unwrap_or(f64::NAN) / qd,
        geomean(&rel_cycles[2]).unwrap_or(f64::NAN) / qd,
    );
}
