//! The label-propagation family comparison behind the paper's §1 claim:
//! "In our evaluation of other label-propagation-based methods such as
//! COPRA, SLPA, and LabelRank, LPA emerged as the most efficient,
//! delivering communities of comparable quality."
//!
//! Runs plain LPA (the native ν-LPA port), COPRA, SLPA, and LabelRank on
//! the dataset stand-ins, reporting wall-clock runtime and the modularity
//! of the (disjoint-projected) communities.

use nulpa_baselines::{copra, labelrank, slpa, CopraConfig, LabelRankConfig, SlpaConfig};
use nulpa_bench::{geomean, median_time, print_header, BenchArgs};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::datasets::all_specs;
use nulpa_metrics::modularity_par;

const METHODS: [&str; 4] = ["LPA", "COPRA", "SLPA", "LabelRank"];

fn main() {
    let args = BenchArgs::parse();

    let mut rel_time = vec![Vec::new(); METHODS.len()];
    let mut qualities = vec![Vec::new(); METHODS.len()];

    print_header("LP family: runtime (s) and modularity per dataset");
    println!(
        "{:<17} {:>8} {:>8} {:>8} {:>10} | {:>7} {:>7} {:>7} {:>9}",
        "graph",
        "t(LPA)",
        "t(COPRA)",
        "t(SLPA)",
        "t(LblRank)",
        "Q(LPA)",
        "Q(COP)",
        "Q(SLP)",
        "Q(LR)"
    );

    for spec in all_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        eprintln!(
            "running {} (|V|={}, |E|={})",
            spec.name,
            g.num_vertices(),
            g.num_edges()
        );

        let mut times = Vec::new();
        let mut quals = Vec::new();
        let runs: [Box<dyn Fn() -> Vec<u32>>; 4] = [
            Box::new(|| lpa_native(g, &LpaConfig::default()).labels),
            Box::new(|| copra(g, &CopraConfig::default()).labels),
            Box::new(|| slpa(g, &SlpaConfig::default()).labels),
            Box::new(|| labelrank(g, &LabelRankConfig::default()).labels),
        ];
        for run in &runs {
            let (t, labels) = median_time(args.repeats.min(3), run);
            times.push(t.as_secs_f64().max(1e-9));
            quals.push(modularity_par(g, &labels));
        }
        for i in 0..METHODS.len() {
            rel_time[i].push(times[i] / times[0]);
            qualities[i].push(quals[i]);
        }
        println!(
            "{:<17} {:>8.4} {:>8.4} {:>8.4} {:>10.4} | {:>7.3} {:>7.3} {:>7.3} {:>9.3}",
            spec.name,
            times[0],
            times[1],
            times[2],
            times[3],
            quals[0],
            quals[1],
            quals[2],
            quals[3]
        );
    }

    println!("\nruntime relative to LPA (geometric mean):");
    for (i, m) in METHODS.iter().enumerate() {
        let mean_q: f64 = qualities[i].iter().sum::<f64>() / qualities[i].len() as f64;
        println!(
            "  {:<10} {:>8.2}x   mean Q {:.4}",
            m,
            geomean(&rel_time[i]).unwrap_or(f64::NAN),
            mean_q
        );
    }
    println!("(paper §1: LPA most efficient among COPRA/SLPA/LabelRank, comparable quality)");
}
