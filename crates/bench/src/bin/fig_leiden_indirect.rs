//! Appendix: indirect comparison with Leiden.
//!
//! The paper's appendix positions ν-LPA against state-of-the-art Leiden
//! implementations indirectly (via their published speedups over
//! Louvain). This harness makes the comparison direct on the stand-ins:
//! ν-LPA vs Louvain vs Leiden — wall-clock, modularity, and Leiden's
//! connectivity guarantee (fraction of graphs where every community is
//! internally connected).

use nulpa_baselines::{communities_connected, leiden, louvain, LeidenConfig, LouvainConfig};
use nulpa_bench::{geomean, median_time, print_header, BenchArgs};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::datasets::all_specs;
use nulpa_metrics::modularity_par;

fn main() {
    let args = BenchArgs::parse();

    let mut speed_vs = [Vec::new(), Vec::new()]; // louvain, leiden
    let mut q = [Vec::new(), Vec::new(), Vec::new()]; // nu, louvain, leiden
    let mut connected = [0usize; 3];
    let mut total = 0usize;

    print_header("Appendix: nu-LPA vs Louvain vs Leiden");
    println!(
        "{:<17} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "graph", "t(nu)", "t(louv)", "t(leid)", "Q(nu)", "Q(louv)", "Q(leid)"
    );

    for spec in all_specs() {
        let d = spec.generate(args.scale);
        let g = &d.graph;
        total += 1;

        let (t_nu, nu) = median_time(args.repeats, || lpa_native(g, &LpaConfig::default()));
        let (t_lv, lv) = median_time(args.repeats, || louvain(g, &LouvainConfig::default()));
        let (t_ld, ld) = median_time(args.repeats, || leiden(g, &LeidenConfig::default()));

        let qs = [
            modularity_par(g, &nu.labels),
            modularity_par(g, &lv.labels),
            modularity_par(g, &ld.labels),
        ];
        for (i, labels) in [&nu.labels, &lv.labels, &ld.labels].iter().enumerate() {
            if communities_connected(g, labels) {
                connected[i] += 1;
            }
            q[i].push(qs[i]);
        }
        speed_vs[0].push(t_lv.as_secs_f64() / t_nu.as_secs_f64().max(1e-9));
        speed_vs[1].push(t_ld.as_secs_f64() / t_nu.as_secs_f64().max(1e-9));

        println!(
            "{:<17} {:>9.4} {:>9.4} {:>9.4} {:>8.4} {:>8.4} {:>8.4}",
            spec.name,
            t_nu.as_secs_f64(),
            t_lv.as_secs_f64(),
            t_ld.as_secs_f64(),
            qs[0],
            qs[1],
            qs[2]
        );
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nnu-LPA speedup: {:.2}x vs Louvain, {:.2}x vs Leiden",
        geomean(&speed_vs[0]).unwrap_or(f64::NAN),
        geomean(&speed_vs[1]).unwrap_or(f64::NAN)
    );
    println!(
        "mean modularity: nu-LPA {:.4}, Louvain {:.4}, Leiden {:.4}",
        mean(&q[0]),
        mean(&q[1]),
        mean(&q[2])
    );
    println!(
        "graphs with all communities internally connected: nu-LPA {}/{}, Louvain {}/{}, Leiden {}/{} (Leiden guarantees this)",
        connected[0], total, connected[1], total, connected[2], total
    );
}
