//! # nulpa-bench
//!
//! Benchmark harness regenerating every table and figure of the ν-LPA
//! paper's evaluation. One binary per artefact (see DESIGN.md §4):
//!
//! | binary | artefact |
//! |---|---|
//! | `table_dataset` | Table 1 (dataset statistics + `\|Γ\|`) |
//! | `fig_swap_prevention` | Fig. 1 (CC/PL/Hybrid sweep) |
//! | `fig_collision_resolution` | Fig. 3 (probing strategies) |
//! | `fig_switch_degree` | Fig. 4 (kernel switch degree sweep) |
//! | `fig_datatype` | Fig. 5 (f32 vs f64 hashtable values) |
//! | `fig_compare` | Fig. 6a/b/c (runtime, speedup, modularity vs baselines) |
//! | `fig_coalesced` | Fig. 7 (open addressing vs coalesced chaining) |
//!
//! Every binary accepts `--scale <f>` (fraction of the paper's graph
//! sizes; default 1/2000) and `--quick` (tiny test scale), prints the
//! same rows/series the paper reports, and is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use harness::{
    geomean, median_time, print_header, timing_stats, BenchArgs, Report, Table, TimingStats, USAGE,
};
