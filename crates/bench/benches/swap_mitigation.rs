//! Criterion companion to Fig. 1: host cost of the swap-prevention
//! schedules on the GPU simulator (Off runs to the iteration cap; the
//! mitigated schedules converge, so they are *faster* despite the extra
//! checks — the figure's point).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nulpa_core::{lpa_gpu, LpaConfig, SwapMode};
use nulpa_graph::gen::web_crawl;

fn benches(c: &mut Criterion) {
    let g = web_crawl(4000, 8, 0.08, 4);
    let modes = [
        SwapMode::Off,
        SwapMode::PickLess { every: 4 },
        SwapMode::CrossCheck { every: 1 },
        SwapMode::Hybrid {
            cc_every: 2,
            pl_every: 4,
        },
    ];
    let mut group = c.benchmark_group("gpu_sim_swap_mode");
    group.sample_size(10);
    for mode in modes {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &mode,
            |b, &mode| {
                let cfg = LpaConfig::default().with_swap_mode(mode);
                b.iter(|| black_box(lpa_gpu(&g, &cfg).iterations));
            },
        );
    }
    group.finish();
}

criterion_group!(swap_mitigation, benches);
criterion_main!(swap_mitigation);
