//! Criterion companion to Fig. 5: native wall time with `f32` vs `f64`
//! hashtable values. On a CPU the effect is smaller than on a GPU
//! (bandwidth pressure is lower) but the direction must hold at scale.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nulpa_core::{lpa_native, LpaConfig, ValueType};
use nulpa_graph::gen::web_crawl;

fn benches(c: &mut Criterion) {
    let g = web_crawl(8000, 8, 0.08, 2);
    let mut group = c.benchmark_group("native_value_type");
    group.sample_size(10);
    for (label, vt) in [("f32", ValueType::F32), ("f64", ValueType::F64)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &vt, |b, &vt| {
            let cfg = LpaConfig::default().with_value_type(vt);
            b.iter(|| black_box(lpa_native(&g, &cfg).iterations));
        });
    }
    group.finish();
}

criterion_group!(datatype, benches);
criterion_main!(datatype);
