//! Criterion companion to Fig. 6a: wall time of all five implementations
//! on one host-structured web crawl.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nulpa_baselines::{
    flpa, gunrock_lp, louvain, networkit_plp, GunrockConfig, LouvainConfig, PlpConfig,
};
use nulpa_core::{lpa_native, LpaConfig};
use nulpa_graph::gen::web_crawl;

fn benches(c: &mut Criterion) {
    let g = web_crawl(6000, 8, 0.08, 3);
    let mut group = c.benchmark_group("implementations_web6k");
    group.sample_size(10);

    group.bench_function("flpa", |b| b.iter(|| black_box(flpa(&g, 1).changes)));
    group.bench_function("networkit_plp", |b| {
        b.iter(|| black_box(networkit_plp(&g, &PlpConfig::default()).iterations))
    });
    group.bench_function("gunrock_sync_lp", |b| {
        b.iter(|| black_box(gunrock_lp(&g, &GunrockConfig::default()).iterations))
    });
    group.bench_function("louvain", |b| {
        b.iter(|| black_box(louvain(&g, &LouvainConfig::default()).levels))
    });
    group.bench_function("nu_lpa_native", |b| {
        b.iter(|| black_box(lpa_native(&g, &LpaConfig::default()).iterations))
    });
    group.finish();
}

criterion_group!(implementations, benches);
criterion_main!(implementations);
