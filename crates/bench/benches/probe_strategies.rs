//! Criterion microbenchmark of the four probe strategies (Fig. 3's axis)
//! in the two load regimes an LPA run actually visits:
//!
//! * **high load** — iteration 1: every neighbour carries a distinct
//!   label, the table fills to `D / (nextPow2(D) − 1)`, worst when
//!   `D = 2^k − 1` (exactly 100 %). This is the regime where probing
//!   strategy matters and the paper's hybrid wins.
//! * **low load** — near convergence: a handful of distinct labels,
//!   almost every accumulate is a first-probe hit.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nulpa_hashtab::{capacity_for_degree, secondary_prime, ProbeStrategy, TableMut, EMPTY_KEY};

/// Distinct pseudo-random keys (scrambled ids), `count` of them.
fn distinct_keys(count: usize, seed: u32) -> Vec<u32> {
    (0..count as u32)
        .map(|i| (i ^ seed).wrapping_mul(0x9e37_79b9) & 0x7fff_ffff)
        .collect()
}

fn bench_regime(c: &mut Criterion, name: &str, degree: usize, distinct: usize) {
    let cap = capacity_for_degree(degree);
    let p2 = secondary_prime(cap);
    let base = distinct_keys(distinct, 0xabcd);
    // neighbour stream: `degree` lookups cycling over the distinct keys
    let stream: Vec<u32> = (0..degree).map(|i| base[i % distinct]).collect();

    let mut group = c.benchmark_group(name);
    group.sample_size(20);
    for strategy in ProbeStrategy::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &strategy| {
                let mut keys = vec![EMPTY_KEY; cap];
                let mut values = vec![0.0f32; cap];
                b.iter(|| {
                    let mut t = TableMut::<f32>::new(&mut keys, &mut values, p2);
                    t.clear();
                    for &k in &stream {
                        black_box(t.accumulate(strategy, k, 1.0));
                    }
                    black_box(t.max_key())
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    // 100 % load: D = 2^k − 1 distinct keys (the paper's hard case)
    bench_regime(c, "accumulate/high_load_full", 1023, 1023);
    // ~60 % load
    bench_regime(c, "accumulate/high_load_60pct", 600, 600);
    // converged regime: 1024 lookups over 4 labels
    bench_regime(c, "accumulate/low_load_converged", 1024, 4);
}

criterion_group!(probe_strategies, benches);
criterion_main!(probe_strategies);
