//! Generator and metric throughput: guards the harness's own costs (graph
//! generation and modularity evaluation dominate several figure binaries).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nulpa_graph::gen::{grid2d, kmer_chain, planted_partition, web_crawl};
use nulpa_metrics::{modularity, modularity_par};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_10k_vertices");
    group.sample_size(10);
    group.bench_function("web_crawl", |b| {
        b.iter(|| black_box(web_crawl(10_000, 8, 0.08, 1).num_edges()))
    });
    group.bench_function("planted_partition", |b| {
        b.iter(|| {
            black_box(
                planted_partition(&[2500; 4], 12.0, 1.0, 1)
                    .graph
                    .num_edges(),
            )
        })
    });
    group.bench_function("grid2d", |b| {
        b.iter(|| black_box(grid2d(100, 100, 0.55, 1).num_edges()))
    });
    group.bench_function("kmer_chain", |b| {
        b.iter(|| black_box(kmer_chain(170, 30, 90, 0.04, 1).num_edges()))
    });
    group.finish();

    let g = web_crawl(10_000, 8, 0.08, 2);
    let labels: Vec<u32> = (0..g.num_vertices() as u32).map(|v| v / 64).collect();
    let mut group = c.benchmark_group("modularity_10k");
    group.sample_size(20);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(modularity(&g, &labels)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(modularity_par(&g, &labels)))
    });
    group.finish();
}

criterion_group!(generators, benches);
criterion_main!(generators);
