//! Criterion companion to Fig. 4: wall time of the *simulated* GPU run at
//! different switch degrees. (The figure binary reports simulated cycles;
//! this bench guards against host-side performance regressions of the
//! simulator itself across the partition spectrum.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use nulpa_core::{lpa_gpu, LpaConfig};
use nulpa_graph::gen::web_crawl;

fn benches(c: &mut Criterion) {
    let g = web_crawl(4000, 8, 0.08, 1);
    let mut group = c.benchmark_group("gpu_sim_switch_degree");
    group.sample_size(10);
    for sd in [2u32, 16, 32, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(sd), &sd, |b, &sd| {
            let cfg = LpaConfig::default().with_switch_degree(sd);
            b.iter(|| black_box(lpa_gpu(&g, &cfg).stats.sim_cycles));
        });
    }
    group.finish();
}

criterion_group!(switch_degree, benches);
criterion_main!(switch_degree);
