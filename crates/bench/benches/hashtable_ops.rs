//! The hashtable against the data structure the paper criticises:
//! per-vertex flat open addressing vs `std::collections::BTreeMap`
//! (NetworKit's `std::map`) and `HashMap`, on the label-accumulation
//! workload. Also measures `clear` and `max_key` in isolation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nulpa_hashtab::{capacity_for_degree, secondary_prime, ProbeStrategy, TableMut, EMPTY_KEY};
use std::collections::{BTreeMap, HashMap};

fn label_stream(degree: usize, distinct: usize) -> Vec<u32> {
    (0..degree)
        .map(|i| ((i % distinct) as u32).wrapping_mul(0x9e37_79b9) & 0xffff)
        .collect()
}

fn benches(c: &mut Criterion) {
    let degree = 256;
    let distinct = 24;
    let stream = label_stream(degree, distinct);
    let cap = capacity_for_degree(degree);
    let p2 = secondary_prime(cap);

    let mut group = c.benchmark_group("accumulate_256_neighbours");
    group.sample_size(30);

    group.bench_function("vertex_table_quadratic_double", |b| {
        let mut keys = vec![EMPTY_KEY; cap];
        let mut values = vec![0.0f32; cap];
        b.iter(|| {
            let mut t = TableMut::<f32>::new(&mut keys, &mut values, p2);
            t.clear();
            for &k in &stream {
                t.accumulate(ProbeStrategy::QuadraticDouble, k, 1.0);
            }
            black_box(t.max_key())
        });
    });

    group.bench_function("btreemap_networkit_style", |b| {
        b.iter(|| {
            let mut m: BTreeMap<u32, f32> = BTreeMap::new();
            for &k in &stream {
                *m.entry(k).or_insert(0.0) += 1.0;
            }
            black_box(
                m.iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(&k, &v)| (k, v)),
            )
        });
    });

    group.bench_function("hashmap_std", |b| {
        b.iter(|| {
            let mut m: HashMap<u32, f32> = HashMap::new();
            for &k in &stream {
                *m.entry(k).or_insert(0.0) += 1.0;
            }
            black_box(
                m.iter()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(&k, &v)| (k, v)),
            )
        });
    });
    group.finish();

    let mut group = c.benchmark_group("table_primitives");
    group.sample_size(30);
    group.bench_function("clear_1023", |b| {
        let mut keys = vec![EMPTY_KEY; 1023];
        let mut values = vec![0.0f32; 1023];
        b.iter(|| {
            let mut t = TableMut::<f32>::new(&mut keys, &mut values, 2047);
            t.clear();
            black_box(t.capacity())
        });
    });
    group.bench_function("max_key_1023", |b| {
        let mut keys = vec![EMPTY_KEY; 1023];
        let mut values = vec![0.0f32; 1023];
        let mut t = TableMut::<f32>::new(&mut keys, &mut values, 2047);
        t.clear();
        for k in 0..512u32 {
            t.accumulate(ProbeStrategy::QuadraticDouble, k * 3 + 1, (k % 7) as f32);
        }
        b.iter(|| black_box(t.max_key()));
    });
    group.finish();
}

criterion_group!(hashtable_ops, benches);
criterion_main!(hashtable_ops);
