//! SLPA — Speaker–Listener Label Propagation (Xie, Szymanski & Liu 2011).
//!
//! Second of the paper's three evaluated LPA relatives. Every vertex keeps
//! a *memory* of labels (initially its own id). For `T` rounds, each
//! listener vertex asks every neighbour to "speak" one label sampled from
//! the speaker's memory (frequency-proportional, edge-weight biased at
//! the listener) and appends the most popular spoken label to its memory.
//! Post-processing thresholds memory frequencies: labels above `r` form
//! (possibly overlapping) communities; the disjoint projection takes each
//! vertex's most frequent label.

use crate::common::scramble;
use nulpa_graph::{Csr, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, HashMap};

/// SLPA configuration.
#[derive(Clone, Copy, Debug)]
pub struct SlpaConfig {
    /// Speaking rounds `T` (Xie et al. suggest ≥ 20).
    pub rounds: u32,
    /// Post-processing threshold `r` in `[0, 0.5]`: labels whose memory
    /// frequency is below it are discarded from the overlap sets.
    pub threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SlpaConfig {
    fn default() -> Self {
        SlpaConfig {
            rounds: 20,
            threshold: 0.3,
            seed: 0,
        }
    }
}

/// Result of an SLPA run.
#[derive(Clone, Debug)]
pub struct SlpaResult {
    /// Overlapping memberships after thresholding: per vertex, labels with
    /// memory frequency ≥ threshold, sorted by descending frequency.
    pub memberships: Vec<Vec<(VertexId, f64)>>,
    /// Disjoint projection: most frequent memory label per vertex.
    pub labels: Vec<VertexId>,
    /// Rounds performed.
    pub rounds: u32,
}

/// Run SLPA.
pub fn slpa(g: &Csr, config: &SlpaConfig) -> SlpaResult {
    assert!(
        (0.0..=0.5).contains(&config.threshold),
        "threshold in [0, 0.5]"
    );
    let n = g.num_vertices();
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // memories as label -> count maps; BTreeMap so the cumulative walk in
    // the speaker's sampling is deterministic
    let mut memory: Vec<BTreeMap<VertexId, u32>> = (0..n as VertexId)
        .map(|v| BTreeMap::from([(v, 1u32)]))
        .collect();
    let mut memory_len = vec![1u32; n];

    let mut spoken: HashMap<VertexId, f64> = HashMap::new();
    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    for round in 0..config.rounds {
        // asynchronous listening in a fresh random order each round, as
        // the reference SLPA prescribes ("one node is selected... in a
        // random order")
        crate::common::shuffle(&mut order, config.seed ^ 0x517a ^ round as u64);
        for &u in &order {
            spoken.clear();
            for (j, w) in g.neighbors(u) {
                if j == u {
                    continue;
                }
                // the speaker samples a label from its memory,
                // frequency-proportionally
                let mem = &memory[j as usize];
                let total = memory_len[j as usize];
                let mut pick = rng.gen_range(0..total);
                let mut label = u; // placeholder, always overwritten
                for (&l, &c) in mem.iter() {
                    if pick < c {
                        label = l;
                        break;
                    }
                    pick -= c;
                }
                *spoken.entry(label).or_insert(0.0) += w as f64;
            }
            // the listener adopts the most popular spoken label
            let Some((&best, _)) = spoken.iter().max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap()
                    .then_with(|| scramble(*b.0).cmp(&scramble(*a.0)))
            }) else {
                continue;
            };
            *memory[u as usize].entry(best).or_insert(0) += 1;
            memory_len[u as usize] += 1;
        }
    }

    // post-processing
    let mut memberships = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for u in 0..n {
        let total = memory_len[u] as f64;
        let mut freqs: Vec<(VertexId, f64)> = memory[u]
            .iter()
            .map(|(&l, &c)| (l, c as f64 / total))
            .collect();
        freqs.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap()
                .then_with(|| scramble(a.0).cmp(&scramble(b.0)))
        });
        labels.push(freqs[0].0);
        freqs.retain(|&(_, f)| f >= config.threshold);
        if freqs.is_empty() {
            freqs.push((labels[u], 1.0));
        }
        memberships.push(freqs);
    }

    SlpaResult {
        memberships,
        labels,
        rounds: config.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_ground_truth, caveman_weighted, planted_partition};
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, modularity, nmi, same_partition};

    fn cfg() -> SlpaConfig {
        SlpaConfig::default()
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(4, 8, 0.5);
        let r = slpa(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(4, 8)));
    }

    #[test]
    fn memory_lengths_grow_with_rounds() {
        let g = caveman_weighted(2, 5, 0.5);
        let r = slpa(&g, &SlpaConfig { rounds: 7, ..cfg() });
        // every membership frequency is a multiple of 1/(rounds+1)
        for m in &r.memberships {
            for &(_, f) in m {
                let steps = f * 8.0;
                assert!((steps - steps.round()).abs() < 1e-9, "f = {f}");
            }
        }
    }

    #[test]
    fn planted_quality_and_nmi() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = slpa(&pp.graph, &cfg());
        assert!(modularity(&pp.graph, &r.labels) > 0.3);
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let pp = planted_partition(&[40, 40], 8.0, 1.0, 2);
        assert_eq!(
            slpa(&pp.graph, &cfg()).labels,
            slpa(&pp.graph, &cfg()).labels
        );
        let other = slpa(&pp.graph, &SlpaConfig { seed: 99, ..cfg() });
        // different randomness usually gives a different label vector
        // (identical partitions are fine; identical raw labels unlikely)
        let _ = other;
    }

    #[test]
    fn threshold_bounds_membership_count() {
        let pp = planted_partition(&[50, 50], 8.0, 1.0, 4);
        let r = slpa(
            &pp.graph,
            &SlpaConfig {
                threshold: 0.4,
                ..cfg()
            },
        );
        // at threshold 0.4, at most 2 labels can clear it
        assert!(r.memberships.iter().all(|m| m.len() <= 2));
        assert!(check_labels(&pp.graph, &r.labels).is_ok());
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::empty(3);
        let r = slpa(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_bad_threshold() {
        slpa(
            &Csr::empty(1),
            &SlpaConfig {
                threshold: 0.9,
                ..cfg()
            },
        );
    }
}
