//! COPRA — Community Overlap PRopagation Algorithm (Gregory 2010).
//!
//! One of the three label-propagation relatives the paper's introduction
//! reports evaluating against plain LPA ("LPA emerged as the most
//! efficient, delivering communities of comparable quality"). COPRA
//! generalizes LPA to *overlapping* communities: each vertex carries up
//! to `v` labels with belonging coefficients summing to 1; an update
//! averages the neighbours' labelled coefficients (edge-weighted), drops
//! labels below `1/v`, and renormalizes.
//!
//! The disjoint projection (strongest label per vertex) is what the
//! comparison harness scores with modularity.

use crate::common::scramble;
use nulpa_graph::{Csr, VertexId};
use std::collections::HashMap;

/// COPRA configuration.
#[derive(Clone, Copy, Debug)]
pub struct CopraConfig {
    /// Maximum labels per vertex `v` (Gregory's parameter; 1 = plain LPA).
    pub max_labels: usize,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Stop when fewer than this fraction of vertices change their label
    /// set between iterations.
    pub tolerance: f64,
}

impl Default for CopraConfig {
    fn default() -> Self {
        CopraConfig {
            max_labels: 2,
            max_iterations: 30,
            tolerance: 0.01,
        }
    }
}

/// Result of a COPRA run.
#[derive(Clone, Debug)]
pub struct CopraResult {
    /// Overlapping membership: per vertex, (label, belonging) pairs,
    /// coefficients summing to ~1, sorted by descending coefficient.
    pub memberships: Vec<Vec<(VertexId, f64)>>,
    /// Disjoint projection: strongest label per vertex.
    pub labels: Vec<VertexId>,
    /// Iterations performed.
    pub iterations: u32,
}

/// Run COPRA.
pub fn copra(g: &Csr, config: &CopraConfig) -> CopraResult {
    assert!(config.max_labels >= 1, "v must be at least 1");
    let n = g.num_vertices();
    let v_max = config.max_labels;
    let threshold = 1.0 / v_max as f64;

    // membership vectors, initialized to singletons
    let mut member: Vec<Vec<(VertexId, f64)>> =
        (0..n as VertexId).map(|v| vec![(v, 1.0)]).collect();
    let mut iterations = 0;

    for _iter in 0..config.max_iterations {
        iterations += 1;
        let mut changed = 0usize;
        // synchronous update (COPRA is defined synchronously)
        let mut next: Vec<Vec<(VertexId, f64)>> = Vec::with_capacity(n);
        for u in g.vertices() {
            if g.degree(u) == 0 {
                next.push(member[u as usize].clone());
                continue;
            }
            let mut acc: HashMap<VertexId, f64> = HashMap::new();
            let mut total_w = 0.0f64;
            for (j, w) in g.neighbors(u) {
                if j == u {
                    continue;
                }
                let w = w as f64;
                total_w += w;
                for &(l, b) in &member[j as usize] {
                    *acc.entry(l).or_insert(0.0) += b * w;
                }
            }
            if total_w == 0.0 {
                next.push(member[u as usize].clone());
                continue;
            }
            // normalize by incident weight, apply the 1/v cutoff
            let mut kept: Vec<(VertexId, f64)> = acc
                .iter()
                .map(|(&l, &b)| (l, b / total_w))
                .filter(|&(_, b)| b >= threshold - 1e-12)
                .collect();
            if kept.is_empty() {
                // keep the strongest label (deterministic scrambled ties)
                let best = acc
                    .iter()
                    .map(|(&l, &b)| (l, b / total_w))
                    .max_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap()
                            .then_with(|| scramble(b.0).cmp(&scramble(a.0)))
                    })
                    .unwrap();
                kept = vec![(best.0, 1.0)];
            } else {
                // keep at most v strongest, renormalize
                kept.sort_unstable_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap()
                        .then_with(|| scramble(a.0).cmp(&scramble(b.0)))
                });
                kept.truncate(v_max);
                let sum: f64 = kept.iter().map(|&(_, b)| b).sum();
                for e in kept.iter_mut() {
                    e.1 /= sum;
                }
            }
            // change detection on label sets
            let old_set: Vec<VertexId> = member[u as usize].iter().map(|&(l, _)| l).collect();
            let new_set: Vec<VertexId> = kept.iter().map(|&(l, _)| l).collect();
            if old_set != new_set {
                changed += 1;
            }
            next.push(kept);
        }
        member = next;
        if (changed as f64) < config.tolerance * n.max(1) as f64 {
            break;
        }
    }

    let labels = member
        .iter()
        .enumerate()
        .map(|(u, m)| m.first().map_or(u as VertexId, |&(l, _)| l))
        .collect();
    CopraResult {
        memberships: member,
        labels,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_ground_truth, caveman_weighted, planted_partition};
    use nulpa_graph::{Csr, GraphBuilder};
    use nulpa_metrics::{check_labels, modularity, same_partition};

    fn cfg() -> CopraConfig {
        CopraConfig::default()
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(4, 6, 0.5);
        let r = copra(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(4, 6)));
    }

    #[test]
    fn coefficients_normalized() {
        let pp = planted_partition(&[40, 40], 8.0, 1.0, 3);
        let r = copra(&pp.graph, &cfg());
        for m in &r.memberships {
            let sum: f64 = m.iter().map(|&(_, b)| b).sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
            assert!(m.len() <= cfg().max_labels);
            // sorted by descending coefficient
            for w in m.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-12);
            }
        }
    }

    #[test]
    fn overlap_detected_on_bridge_vertex() {
        // vertex 4 sits between two cliques: with v=2 it may belong to both
        let mut b = GraphBuilder::new(9);
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                b.push_undirected(i, j, 1.0);
            }
        }
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                b.push_undirected(i, j, 1.0);
            }
        }
        for i in 0..4u32 {
            b.push_undirected(4, i, 1.0);
        }
        for i in 5..9u32 {
            b.push_undirected(4, i, 1.0);
        }
        let g = b.build();
        let r = copra(
            &g,
            &CopraConfig {
                max_labels: 2,
                ..cfg()
            },
        );
        // the two cliques resolve to separate communities
        assert_ne!(r.labels[0], r.labels[8]);
        assert!(check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn v1_behaves_like_plain_lpa() {
        let g = caveman_weighted(3, 6, 0.5);
        let r = copra(
            &g,
            &CopraConfig {
                max_labels: 1,
                ..cfg()
            },
        );
        assert!(same_partition(&r.labels, &caveman_ground_truth(3, 6)));
        assert!(r.memberships.iter().all(|m| m.len() == 1));
    }

    #[test]
    fn planted_quality_positive() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = copra(&pp.graph, &cfg());
        assert!(modularity(&pp.graph, &r.labels) > 0.3);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::empty(3);
        let r = copra(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
        let g = GraphBuilder::new(3).add_undirected_edge(0, 1, 1.0).build();
        let r = copra(&g, &cfg());
        assert_eq!(r.labels[2], 2);
    }

    #[test]
    fn deterministic() {
        let pp = planted_partition(&[50, 50], 8.0, 1.0, 7);
        assert_eq!(
            copra(&pp.graph, &cfg()).labels,
            copra(&pp.graph, &cfg()).labels
        );
    }
}
