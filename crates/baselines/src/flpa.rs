//! FLPA — Fast Label Propagation Algorithm (Traag & Šubelj 2023).
//!
//! The paper's sequential baseline (`igraph_community_label_propagation`
//! with `IGRAPH_LPA_FAST`). Algorithm: a FIFO work queue seeded with all
//! vertices (no random shuffling, per the paper's related-work note —
//! "without random node order shuffling"); pop a vertex, adopt a random
//! *dominant* label (maximum total neighbour weight); when the label
//! changes, push the neighbours that are not already in the queue and not
//! in the new community. Terminates when the queue drains.
//!
//! The random dominant-label choice is seeded and deterministic per run.

use nulpa_graph::{Csr, VertexId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};

/// Result of an FLPA run.
#[derive(Clone, Debug)]
pub struct FlpaResult {
    /// Final labels.
    pub labels: Vec<VertexId>,
    /// Vertices popped from the queue in total (FLPA's work measure).
    pub pops: usize,
    /// Label changes applied.
    pub changes: usize,
}

/// Run FLPA with the given tie-break seed.
pub fn flpa(g: &Csr, seed: u64) -> FlpaResult {
    let n = g.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let mut queue: VecDeque<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    let mut in_queue = vec![false; n];
    for &v in &queue {
        in_queue[v as usize] = true;
    }

    let mut weights: HashMap<VertexId, f64> = HashMap::new();
    let mut dominant: Vec<VertexId> = Vec::new();
    let mut pops = 0usize;
    let mut changes = 0usize;

    while let Some(v) = queue.pop_front() {
        in_queue[v as usize] = false;
        pops += 1;

        weights.clear();
        for (j, w) in g.neighbors(v) {
            if j == v {
                continue;
            }
            *weights.entry(labels[j as usize]).or_insert(0.0) += w as f64;
        }
        if weights.is_empty() {
            continue;
        }
        let max_w = weights.values().cloned().fold(f64::MIN, f64::max);
        dominant.clear();
        dominant.extend(weights.iter().filter(|(_, &w)| w == max_w).map(|(&l, _)| l));
        // deterministic iteration order for reproducibility
        dominant.sort_unstable();

        let cur = labels[v as usize];
        if dominant.contains(&cur) {
            continue; // current label already dominant — no change
        }
        let new = dominant[rng.gen_range(0..dominant.len())];
        labels[v as usize] = new;
        changes += 1;
        // push neighbours not in the new community and not queued
        for &j in g.neighbor_ids(v) {
            if labels[j as usize] != new && !in_queue[j as usize] {
                in_queue[j as usize] = true;
                queue.push_back(j);
            }
        }
    }

    FlpaResult {
        labels,
        pops,
        changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition,
        two_cliques_light_bridge,
    };
    use nulpa_graph::{Csr, GraphBuilder};
    use nulpa_metrics::{check_labels, community_count, modularity, nmi, same_partition};

    #[test]
    fn two_cliques_recovered() {
        let g = two_cliques_light_bridge(6);
        let r = flpa(&g, 1);
        assert!(same_partition(&r.labels, &caveman_ground_truth(2, 6)));
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(5, 8, 0.5);
        let r = flpa(&g, 3);
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 8)));
    }

    #[test]
    fn terminates_and_valid_on_random_graph() {
        let g = erdos_renyi(300, 900, 5);
        let r = flpa(&g, 7);
        assert!(check_labels(&g, &r.labels).is_ok());
        assert!(r.pops >= 300);
    }

    #[test]
    fn complete_graph_single_community() {
        let g = complete(10);
        let r = flpa(&g, 2);
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn planted_partition_good_nmi() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = flpa(&pp.graph, 11);
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.6);
        assert!(modularity(&pp.graph, &r.labels) > 0.3);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = erdos_renyi(100, 300, 9);
        assert_eq!(flpa(&g, 5).labels, flpa(&g, 5).labels);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4);
        let r = flpa(&g, 0);
        assert_eq!(r.labels, vec![0, 1, 2, 3]);
        assert_eq!(r.pops, 0);
    }

    #[test]
    fn isolated_vertices_untouched() {
        let g = GraphBuilder::new(3).add_undirected_edge(0, 1, 1.0).build();
        let r = flpa(&g, 0);
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn no_change_when_current_label_dominant() {
        // path 0-1-2: after convergence everything shares a label; pops
        // should stay modest (queue-based early termination)
        let g = nulpa_graph::gen::path(50);
        let r = flpa(&g, 4);
        assert!(check_labels(&g, &r.labels).is_ok());
        // queue-based processing should not blow up quadratically
        assert!(r.pops < 50 * 20, "pops = {}", r.pops);
    }
}
