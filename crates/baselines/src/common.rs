//! Shared helpers for the baseline implementations.

use nulpa_graph::VertexId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic, magnitude-uncorrelated label order for tie-breaking
/// (same rationale as the core crate: a smallest-raw-label rule funnels
/// every tie toward community 0).
#[inline]
pub fn scramble(label: VertexId) -> u32 {
    (label ^ 0x5bd1_e995)
        .wrapping_mul(0x9e37_79b9)
        .rotate_left(13)
}

/// Seeded Fisher–Yates shuffle for processing orders.
pub fn shuffle<T>(items: &mut [T], seed: u64) {
    items.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
}

/// Fold (weight, then scrambled label) maxima: returns the winning label.
pub fn argmax_label(
    best: Option<(VertexId, f64)>,
    label: VertexId,
    w: f64,
) -> Option<(VertexId, f64)> {
    match best {
        Some((bl, bw)) if w > bw || (w == bw && scramble(label) < scramble(bl)) => Some((label, w)),
        None => Some((label, w)),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scramble_is_injective_on_small_range() {
        let mut seen = std::collections::HashSet::new();
        for l in 0..10_000u32 {
            assert!(seen.insert(scramble(l)));
        }
    }

    #[test]
    fn shuffle_is_deterministic() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        shuffle(&mut a, 7);
        shuffle(&mut b, 7);
        assert_eq!(a, b);
        let mut c: Vec<u32> = (0..100).collect();
        shuffle(&mut c, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn argmax_prefers_weight_then_scramble() {
        let r = argmax_label(None, 3, 1.0);
        let r = argmax_label(r, 5, 2.0);
        assert_eq!(r.unwrap().0, 5);
        // tie at weight 2.0: scramble decides, deterministically
        let winner = argmax_label(r, 9, 2.0).unwrap().0;
        let expected = if scramble(9) < scramble(5) { 9 } else { 5 };
        assert_eq!(winner, expected);
    }
}
