//! GVE-LPA — the paper's own multicore predecessor (Sahu 2023,
//! "GVE-LPA: Fast Label Propagation Algorithm for Community Detection on
//! Shared Memory Systems"), which ν-LPA builds on.
//!
//! Its signature design, described in the paper's §4.2: **per-thread
//! collision-free hashtables** — a keys *list* plus a full-size values
//! array of length `|V|`, "kept well-separated in memory". Accumulation
//! indexes `values[label]` directly (no probing at all); the keys list
//! remembers which slots to reset. This costs `O(T·N)` memory (the very
//! cost that forced ν-LPA onto per-vertex tables for the GPU) but is
//! extremely fast per operation on a CPU.
//!
//! Schedule: asynchronous in-place updates, vertex pruning, per-iteration
//! tolerance 0.05, at most 20 iterations, strict pick (first maximum in
//! keys-list order = first-encountered neighbour label).

use nulpa_graph::{Csr, VertexId};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// GVE-LPA configuration (paper defaults).
#[derive(Clone, Copy, Debug)]
pub struct GveLpaConfig {
    /// Iteration cap (20).
    pub max_iterations: u32,
    /// Per-iteration tolerance τ (0.05).
    pub tolerance: f64,
    /// Shuffle seed for the sweep order.
    pub seed: u64,
}

impl Default for GveLpaConfig {
    fn default() -> Self {
        GveLpaConfig {
            max_iterations: 20,
            tolerance: 0.05,
            seed: 0,
        }
    }
}

/// Result of a GVE-LPA run.
#[derive(Clone, Debug)]
pub struct GveLpaResult {
    /// Final labels.
    pub labels: Vec<VertexId>,
    /// Iterations performed.
    pub iterations: u32,
    /// `true` if the tolerance fired before the cap.
    pub converged: bool,
}

/// Per-thread collision-free scratch: keys list + `|V|`-sized values.
struct Scratch {
    keys: Vec<VertexId>,
    values: Vec<f64>,
}

impl Scratch {
    fn new(n: usize) -> Self {
        Scratch {
            keys: Vec::with_capacity(64),
            values: vec![0.0; n],
        }
    }

    #[inline]
    fn accumulate(&mut self, label: VertexId, w: f64) {
        let slot = &mut self.values[label as usize];
        if *slot == 0.0 {
            self.keys.push(label);
        }
        *slot += w;
    }

    /// First maximum in insertion order (GVE-LPA's strict pick).
    #[inline]
    fn max_key(&self) -> Option<VertexId> {
        let mut best: Option<(VertexId, f64)> = None;
        for &k in &self.keys {
            let v = self.values[k as usize];
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((k, v)),
            }
        }
        best.map(|(k, _)| k)
    }

    #[inline]
    fn clear(&mut self) {
        for k in self.keys.drain(..) {
            self.values[k as usize] = 0.0;
        }
    }
}

/// Run GVE-LPA.
pub fn gve_lpa(g: &Csr, config: &GveLpaConfig) -> GveLpaResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as VertexId).map(AtomicU32::new).collect();
    let processed: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();

    // Pool of per-thread scratches (allocated lazily, one per worker).
    let pool: Mutex<Vec<Scratch>> = Mutex::new(Vec::new());
    let take = || pool.lock().pop().unwrap_or_else(|| Scratch::new(n));
    let give = |s: Scratch| pool.lock().push(s);

    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let mut candidates: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .filter(|&v| processed[v as usize].load(Ordering::Relaxed) == 0 && g.degree(v) > 0)
            .collect();
        crate::common::shuffle(&mut candidates, config.seed ^ iter as u64);

        let changed: usize = candidates
            .par_chunks(256)
            .map(|chunk| {
                let mut scratch = take();
                let mut local_changed = 0usize;
                for &v in chunk {
                    processed[v as usize].store(1, Ordering::Relaxed);
                    scratch.clear();
                    for (j, w) in g.neighbors(v) {
                        if j == v {
                            continue;
                        }
                        scratch.accumulate(labels[j as usize].load(Ordering::Relaxed), w as f64);
                    }
                    let Some(c_star) = scratch.max_key() else {
                        continue;
                    };
                    let cur = labels[v as usize].load(Ordering::Relaxed);
                    if c_star != cur {
                        labels[v as usize].store(c_star, Ordering::Relaxed);
                        local_changed += 1;
                        for &j in g.neighbor_ids(v) {
                            processed[j as usize].store(0, Ordering::Relaxed);
                        }
                    }
                }
                give(scratch);
                local_changed
            })
            .sum();

        if (changed as f64 / n.max(1) as f64) < config.tolerance {
            converged = true;
            break;
        }
    }

    GveLpaResult {
        labels: labels.into_iter().map(|l| l.into_inner()).collect(),
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition, web_crawl,
    };
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, community_count, modularity, nmi, same_partition};

    fn cfg() -> GveLpaConfig {
        GveLpaConfig::default()
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(5, 8, 0.5);
        let r = gve_lpa(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 8)));
        assert!(r.converged);
    }

    #[test]
    fn complete_collapses() {
        let g = complete(12);
        let r = gve_lpa(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn planted_quality() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = gve_lpa(&pp.graph, &cfg());
        assert!(modularity(&pp.graph, &r.labels) > 0.35);
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.6);
    }

    #[test]
    fn valid_on_web_crawl() {
        let g = web_crawl(2000, 6, 0.1, 1);
        let r = gve_lpa(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert!(r.iterations <= 20);
    }

    #[test]
    fn quality_comparable_to_nu_lpa_design_goal() {
        // GVE-LPA is the algorithm ν-LPA ports to the GPU; their
        // modularity should land in the same band
        let g = web_crawl(3000, 8, 0.08, 2);
        let q_gve = modularity(&g, &gve_lpa(&g, &cfg()).labels);
        assert!(q_gve > 0.4, "Q = {q_gve}");
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        let r = gve_lpa(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
        assert!(r.converged);
    }

    #[test]
    fn iteration_cap() {
        let g = erdos_renyi(200, 800, 3);
        let r = gve_lpa(
            &g,
            &GveLpaConfig {
                max_iterations: 2,
                ..cfg()
            },
        );
        assert!(r.iterations <= 2);
    }

    #[test]
    fn scratch_clear_is_complete() {
        let mut s = Scratch::new(10);
        s.accumulate(3, 1.0);
        s.accumulate(7, 2.0);
        s.accumulate(3, 1.0);
        assert_eq!(s.max_key(), Some(3)); // weight 2 at key 3 ties 7? no: 2 vs 2 — first max is 3 (inserted first)
        s.clear();
        assert_eq!(s.max_key(), None);
        assert!(s.values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scratch_first_max_tiebreak() {
        let mut s = Scratch::new(10);
        s.accumulate(5, 2.0);
        s.accumulate(1, 2.0);
        assert_eq!(s.max_key(), Some(5)); // insertion order wins ties
    }
}
