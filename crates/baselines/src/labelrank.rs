//! LabelRank (Xie & Szymanski 2013) — deterministic label propagation on
//! label *distributions*.
//!
//! Third of the paper's three evaluated LPA relatives. Every vertex holds
//! a probability distribution over labels; each iteration applies four
//! operators:
//!
//! 1. **propagation** — replace each distribution with the edge-weighted
//!    average of the neighbours' distributions;
//! 2. **inflation** — raise each probability to the power `in_power` and
//!    renormalize (sharpens the distribution);
//! 3. **cutoff** — delete probabilities below `cutoff` (bounds memory);
//! 4. **conditional update** — a vertex only accepts its new distribution
//!    if its current top label is shared by fewer than `q · degree` of
//!    its neighbours' top labels (stabilization).
//!
//! Entirely deterministic — no random order, no random ties.

use crate::common::scramble;
use nulpa_graph::{Csr, VertexId};
use std::collections::HashMap;

/// LabelRank configuration.
#[derive(Clone, Copy, Debug)]
pub struct LabelRankConfig {
    /// Inflation exponent (Xie & Szymanski use 2).
    pub inflation: f64,
    /// Cutoff threshold for small probabilities (their `r`; 0.1).
    pub cutoff: f64,
    /// Conditional-update fraction `q` (0.5–0.7 typical).
    pub q: f64,
    /// Iteration cap.
    pub max_iterations: u32,
    /// Stop when fewer than this fraction of vertices update.
    pub tolerance: f64,
}

impl Default for LabelRankConfig {
    fn default() -> Self {
        LabelRankConfig {
            inflation: 2.0,
            cutoff: 0.1,
            q: 0.6,
            max_iterations: 30,
            tolerance: 0.01,
        }
    }
}

/// Result of a LabelRank run.
#[derive(Clone, Debug)]
pub struct LabelRankResult {
    /// Disjoint labels: each vertex's highest-probability label.
    pub labels: Vec<VertexId>,
    /// Iterations performed.
    pub iterations: u32,
    /// Vertices updated per iteration.
    pub updated_per_iter: Vec<usize>,
}

type Dist = Vec<(VertexId, f64)>; // sorted by descending probability

fn top(d: &Dist) -> VertexId {
    d[0].0
}

/// Run LabelRank.
pub fn labelrank(g: &Csr, config: &LabelRankConfig) -> LabelRankResult {
    assert!(config.inflation >= 1.0, "inflation must be >= 1");
    assert!((0.0..1.0).contains(&config.cutoff), "cutoff in [0, 1)");
    let n = g.num_vertices();
    let mut dist: Vec<Dist> = (0..n as VertexId).map(|v| vec![(v, 1.0)]).collect();
    let mut iterations = 0;
    let mut updated_per_iter = Vec::new();

    for _ in 0..config.max_iterations {
        iterations += 1;
        let mut updated = 0usize;
        let mut next: Vec<Option<Dist>> = Vec::with_capacity(n);

        for u in g.vertices() {
            let deg = g.degree(u);
            if deg == 0 {
                next.push(None);
                continue;
            }
            // conditional update: count neighbours sharing u's top label
            let my_top = top(&dist[u as usize]);
            let sharing = g
                .neighbor_ids(u)
                .iter()
                .filter(|&&j| j != u && top(&dist[j as usize]) == my_top)
                .count();
            if (sharing as f64) >= config.q * deg as f64 {
                next.push(None); // stable — keep current distribution
                continue;
            }

            // propagation: edge-weighted average of neighbour distributions
            let mut acc: HashMap<VertexId, f64> = HashMap::new();
            let mut total_w = 0.0f64;
            for (j, w) in g.neighbors(u) {
                if j == u {
                    continue;
                }
                let w = w as f64;
                total_w += w;
                for &(l, p) in &dist[j as usize] {
                    *acc.entry(l).or_insert(0.0) += p * w;
                }
            }
            if total_w == 0.0 {
                next.push(None);
                continue;
            }
            // inflation + cutoff + renormalize
            let mut d: Dist = acc
                .into_iter()
                .map(|(l, p)| (l, (p / total_w).powf(config.inflation)))
                .collect();
            let max_p = d.iter().map(|&(_, p)| p).fold(0.0f64, f64::max);
            d.retain(|&(_, p)| p >= config.cutoff * max_p);
            let sum: f64 = d.iter().map(|&(_, p)| p).sum();
            for e in d.iter_mut() {
                e.1 /= sum;
            }
            d.sort_unstable_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap()
                    .then_with(|| scramble(a.0).cmp(&scramble(b.0)))
            });
            updated += 1;
            next.push(Some(d));
        }

        for (u, d) in next.into_iter().enumerate() {
            if let Some(d) = d {
                dist[u] = d;
            }
        }
        updated_per_iter.push(updated);
        if (updated as f64) < config.tolerance * n.max(1) as f64 {
            break;
        }
    }

    LabelRankResult {
        labels: dist.iter().map(top).collect(),
        iterations,
        updated_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_ground_truth, caveman_weighted, planted_partition};
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, modularity, nmi, same_partition};

    fn cfg() -> LabelRankConfig {
        LabelRankConfig::default()
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(4, 8, 0.5);
        let r = labelrank(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(4, 8)));
    }

    #[test]
    fn fully_deterministic() {
        let pp = planted_partition(&[50, 50], 8.0, 1.0, 3);
        assert_eq!(
            labelrank(&pp.graph, &cfg()).labels,
            labelrank(&pp.graph, &cfg()).labels
        );
    }

    #[test]
    fn planted_quality() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = labelrank(&pp.graph, &cfg());
        assert!(modularity(&pp.graph, &r.labels) > 0.3);
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.5);
        assert!(check_labels(&pp.graph, &r.labels).is_ok());
    }

    #[test]
    fn conditional_update_stabilizes() {
        // once communities agree, updates stop well before the cap
        let g = caveman_weighted(3, 8, 0.5);
        let r = labelrank(&g, &cfg());
        assert!(r.iterations < cfg().max_iterations, "{}", r.iterations);
        let last = *r.updated_per_iter.last().unwrap();
        assert!(last <= g.num_vertices() / 10);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Csr::empty(3);
        let r = labelrank(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "inflation")]
    fn rejects_bad_inflation() {
        labelrank(
            &Csr::empty(1),
            &LabelRankConfig {
                inflation: 0.5,
                ..cfg()
            },
        );
    }
}
