//! Gunrock-style synchronous label propagation.
//!
//! Gunrock's `LpProblem` implements *synchronous* (Jacobi-style) label
//! propagation: every vertex computes its new label from the previous
//! iteration's labels, and all updates land together. Synchronous LP is
//! known to oscillate on bipartite-ish structure (the community-swap
//! pathology affects *every* vertex pair, not just co-resident ones),
//! which is why the paper observes that "the modularity achieved by
//! Gunrock LPA is very low". This baseline reproduces that behaviour.

use crate::common::argmax_label;
use nulpa_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::collections::HashMap;

/// Gunrock-LP configuration.
#[derive(Clone, Copy, Debug)]
pub struct GunrockConfig {
    /// Iteration cap. Gunrock's default app setting runs a small fixed
    /// number of synchronous sweeps.
    pub max_iterations: u32,
    /// Stop early when fewer than this fraction of vertices change.
    pub tolerance: f64,
}

impl Default for GunrockConfig {
    fn default() -> Self {
        GunrockConfig {
            max_iterations: 10,
            tolerance: 1e-3,
        }
    }
}

/// Result of a synchronous LP run.
#[derive(Clone, Debug)]
pub struct GunrockResult {
    /// Final labels.
    pub labels: Vec<VertexId>,
    /// Iterations performed.
    pub iterations: u32,
    /// Changes per iteration (oscillation shows as a non-decaying tail).
    pub changed_per_iter: Vec<usize>,
}

/// Run synchronous label propagation.
pub fn gunrock_lp(g: &Csr, config: &GunrockConfig) -> GunrockResult {
    let n = g.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut changed_per_iter = Vec::new();
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let old = labels.clone(); // Jacobi: everyone reads the old state
        let new: Vec<VertexId> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut weights: HashMap<VertexId, f64> = HashMap::new();
                for (j, w) in g.neighbors(v) {
                    if j == v {
                        continue;
                    }
                    *weights.entry(old[j as usize]).or_insert(0.0) += w as f64;
                }
                weights
                    .iter()
                    .fold(None, |acc, (&l, &w)| argmax_label(acc, l, w))
                    .map_or(old[v as usize], |(l, _)| l)
            })
            .collect();
        let changed = new.iter().zip(&old).filter(|(a, b)| a != b).count();
        labels = new;
        changed_per_iter.push(changed);
        if (changed as f64) < config.tolerance * n as f64 {
            break;
        }
    }

    GunrockResult {
        labels,
        iterations,
        changed_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_weighted, planted_partition, two_cliques_light_bridge};
    use nulpa_graph::GraphBuilder;
    use nulpa_metrics::{check_labels, modularity};

    fn cfg() -> GunrockConfig {
        GunrockConfig::default()
    }

    #[test]
    fn synchronous_oscillation_on_matching() {
        // perfect matching: pairs swap labels forever under Jacobi updates
        let mut b = GraphBuilder::new(20);
        for i in 0..10u32 {
            b.push_undirected(2 * i, 2 * i + 1, 1.0);
        }
        let g = b.build();
        let r = gunrock_lp(&g, &cfg());
        assert_eq!(r.iterations, cfg().max_iterations, "should not converge");
        assert!(r.changed_per_iter.iter().all(|&c| c == 20));
    }

    #[test]
    fn quality_below_async_lpa() {
        // the headline claim: synchronous LP yields very low modularity.
        // Sparse near-bipartite structure (grids, chains) oscillates under
        // Jacobi updates; async FLPA handles it fine.
        let g = nulpa_graph::gen::grid2d(20, 20, 1.0, 0);
        let q_sync = modularity(&g, &gunrock_lp(&g, &cfg()).labels);
        let q_async = modularity(&g, &crate::flpa::flpa(&g, 1).labels);
        assert!(q_sync < 0.2, "sync should be near zero, got {q_sync}");
        assert!(q_sync < q_async - 0.2, "sync {q_sync} vs async {q_async}");
    }

    #[test]
    fn still_finds_obvious_cliques_sometimes() {
        // dense cliques stabilize even under synchronous updates
        let g = caveman_weighted(3, 8, 0.5);
        let r = gunrock_lp(&g, &cfg());
        let q = modularity(&g, &r.labels);
        assert!(q > 0.0, "Q = {q}");
    }

    #[test]
    fn labels_valid_and_counts_recorded() {
        let g = two_cliques_light_bridge(5);
        let r = gunrock_lp(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert_eq!(r.changed_per_iter.len(), r.iterations as usize);
    }

    #[test]
    fn empty_graph() {
        let g = nulpa_graph::Csr::empty(3);
        let r = gunrock_lp(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn deterministic() {
        let pp = planted_partition(&[40, 40], 8.0, 1.0, 3);
        assert_eq!(
            gunrock_lp(&pp.graph, &cfg()).labels,
            gunrock_lp(&pp.graph, &cfg()).labels
        );
    }
}
