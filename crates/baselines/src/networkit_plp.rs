//! NetworKit-style Parallel Label Propagation (PLP).
//!
//! Reimplementation of `NetworKit::PLP::run()` as the paper describes it
//! (§2, related work): every vertex starts with a unique label; a boolean
//! active-flag vector tracks vertices whose neighbourhood changed; each
//! iteration processes active vertices in parallel (OpenMP *guided*
//! schedule ≈ Rayon's work-stealing over a shuffled order); per-vertex
//! label weights live in an `std::map` (here `BTreeMap` — deliberately,
//! since the paper's critique of PLP is precisely this allocation-heavy
//! map); convergence uses the threshold heuristic: stop when fewer than
//! `tolerance · |V|` vertices updated (NetworKit's θ = 10⁻⁵).

use crate::common::{argmax_label, shuffle};
use nulpa_graph::{Csr, VertexId};
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

/// PLP configuration.
#[derive(Clone, Copy, Debug)]
pub struct PlpConfig {
    /// Update-threshold tolerance (NetworKit default 10⁻⁵).
    pub tolerance: f64,
    /// Iteration cap (NetworKit's `maxIterations`; effectively unbounded
    /// there, capped here for safety).
    pub max_iterations: u32,
    /// Shuffle seed for the processing order.
    pub seed: u64,
}

impl Default for PlpConfig {
    fn default() -> Self {
        PlpConfig {
            tolerance: 1e-5,
            max_iterations: 100,
            seed: 0,
        }
    }
}

/// Result of a PLP run.
#[derive(Clone, Debug)]
pub struct PlpResult {
    /// Final labels.
    pub labels: Vec<VertexId>,
    /// Iterations performed.
    pub iterations: u32,
    /// Updated-vertex counts per iteration.
    pub updated_per_iter: Vec<usize>,
}

/// Run NetworKit-style PLP.
pub fn networkit_plp(g: &Csr, config: &PlpConfig) -> PlpResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = (0..n as VertexId).map(AtomicU32::new).collect();
    let active: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(1)).collect();
    let threshold = (config.tolerance * n as f64).max(1.0);

    let mut updated_per_iter = Vec::new();
    let mut iterations = 0;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        let mut order: Vec<VertexId> = (0..n as VertexId)
            .filter(|&v| active[v as usize].load(Ordering::Relaxed) == 1 && g.degree(v) > 0)
            .collect();
        if order.is_empty() {
            updated_per_iter.push(0);
            break;
        }
        shuffle(&mut order, config.seed ^ iter as u64);

        let updated: usize = order
            .par_iter()
            .map(|&v| {
                active[v as usize].store(0, Ordering::Relaxed);
                // the std::map the paper criticises
                let mut weights: BTreeMap<VertexId, f64> = BTreeMap::new();
                for (j, w) in g.neighbors(v) {
                    if j == v {
                        continue;
                    }
                    let l = labels[j as usize].load(Ordering::Relaxed);
                    *weights.entry(l).or_insert(0.0) += w as f64;
                }
                let best = weights
                    .iter()
                    .fold(None, |acc, (&l, &w)| argmax_label(acc, l, w));
                let Some((best_label, _)) = best else {
                    return 0usize;
                };
                let cur = labels[v as usize].load(Ordering::Relaxed);
                if best_label != cur {
                    labels[v as usize].store(best_label, Ordering::Relaxed);
                    for &j in g.neighbor_ids(v) {
                        active[j as usize].store(1, Ordering::Relaxed);
                    }
                    1
                } else {
                    0
                }
            })
            .sum();

        updated_per_iter.push(updated);
        if (updated as f64) < threshold {
            break;
        }
    }

    PlpResult {
        labels: labels.into_iter().map(|l| l.into_inner()).collect(),
        iterations,
        updated_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition,
    };
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, community_count, modularity, nmi, same_partition};

    fn cfg() -> PlpConfig {
        PlpConfig::default()
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(5, 8, 0.5);
        let r = networkit_plp(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 8)));
    }

    #[test]
    fn complete_collapses() {
        let g = complete(12);
        let r = networkit_plp(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn planted_partition_quality() {
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r = networkit_plp(&pp.graph, &cfg());
        assert!(modularity(&pp.graph, &r.labels) > 0.35);
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.6);
    }

    #[test]
    fn tight_tolerance_runs_longer_than_loose() {
        let g = erdos_renyi(400, 1600, 3);
        let tight = networkit_plp(&g, &cfg());
        let loose = networkit_plp(
            &g,
            &PlpConfig {
                tolerance: 0.05,
                ..cfg()
            },
        );
        assert!(loose.iterations <= tight.iterations);
    }

    #[test]
    fn valid_labels_and_iteration_accounting() {
        let g = erdos_renyi(200, 600, 8);
        let r = networkit_plp(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert_eq!(r.updated_per_iter.len(), r.iterations as usize);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(3);
        let r = networkit_plp(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2]);
    }

    #[test]
    fn iteration_cap_respected() {
        let g = erdos_renyi(300, 1200, 4);
        let r = networkit_plp(
            &g,
            &PlpConfig {
                max_iterations: 2,
                ..cfg()
            },
        );
        assert!(r.iterations <= 2);
    }
}
