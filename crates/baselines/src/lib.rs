//! # nulpa-baselines
//!
//! The four systems the ν-LPA paper evaluates against (Fig. 6), each
//! reimplemented from its published description:
//!
//! * [`flpa()`](fn@flpa) — Fast Label Propagation Algorithm (Traag & Šubelj 2023),
//!   the sequential queue-based baseline.
//! * [`networkit_plp()`](fn@networkit_plp) — NetworKit's parallel LPA with `std::map` label
//!   weights, active flags, and the 10⁻⁵ threshold heuristic.
//! * [`gunrock_lp()`](fn@gunrock_lp) — Gunrock-style synchronous (Jacobi) label
//!   propagation, reproducing its characteristic low modularity.
//! * [`louvain()`](fn@louvain) — complete multi-level Louvain (local moving +
//!   aggregation), the cuGraph-Louvain stand-in for the quality/runtime
//!   trade-off.
//!
//! Plus [`gve_lpa()`](fn@gve_lpa) — the paper's own multicore predecessor (per-thread
//! collision-free hashtables) — [`leiden()`](fn@leiden) — the quality upper bound the
//! paper's appendix compares against indirectly — and the three
//! label-propagation relatives the paper's introduction reports having
//! evaluated ([`copra()`](fn@copra), [`slpa()`](fn@slpa), [`labelrank()`](fn@labelrank)), against which plain
//! LPA "emerged as the most efficient, delivering communities of
//! comparable quality".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod copra;
pub mod flpa;
pub mod gunrock_lp;
pub mod gve_lpa;
pub mod labelrank;
pub mod leiden;
pub mod louvain;
pub mod networkit_plp;
pub mod slpa;

pub use copra::{copra, CopraConfig, CopraResult};
pub use flpa::{flpa, FlpaResult};
pub use gunrock_lp::{gunrock_lp, GunrockConfig, GunrockResult};
pub use gve_lpa::{gve_lpa, GveLpaConfig, GveLpaResult};
pub use labelrank::{labelrank, LabelRankConfig, LabelRankResult};
pub use leiden::{communities_connected, leiden, LeidenConfig, LeidenResult};
pub use louvain::{louvain, LouvainConfig, LouvainResult};
pub use networkit_plp::{networkit_plp, PlpConfig, PlpResult};
pub use slpa::{slpa, SlpaConfig, SlpaResult};
