//! Multi-level Louvain (the cuGraph-Louvain stand-in).
//!
//! The paper contrasts ν-LPA with cuGraph's GPU Louvain to quantify the
//! LPA/Louvain trade-off: Louvain is ~37× slower but finds ~9.6 % higher
//! modularity. Any faithful Louvain exposes that trade-off, so this is a
//! complete sequential/multi-level implementation (Blondel et al. 2008):
//!
//! 1. **Local moving** — vertices greedily adopt the neighbouring
//!    community with the best modularity gain ΔQ (paper Eq. 2), repeated
//!    in shuffled passes until no vertex moves.
//! 2. **Aggregation** — communities collapse into super-vertices
//!    (intra-community weight becomes a self loop); repeat on the coarse
//!    graph until the vertex count stops shrinking.

use crate::common::shuffle;
use nulpa_graph::{Csr, DuplicatePolicy, GraphBuilder, VertexId};
use nulpa_metrics::{compact_labels, modularity};
use std::collections::BTreeMap;

/// Louvain configuration.
#[derive(Clone, Copy, Debug)]
pub struct LouvainConfig {
    /// Resolution γ (1.0 = classic modularity).
    pub resolution: f64,
    /// Stop a level's local-moving once a full pass moves no vertex, or
    /// after this many passes.
    pub max_passes: u32,
    /// Maximum aggregation levels.
    pub max_levels: u32,
    /// Stop when a level improves modularity by less than this.
    pub min_gain: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LouvainConfig {
    fn default() -> Self {
        LouvainConfig {
            resolution: 1.0,
            max_passes: 50,
            max_levels: 10,
            min_gain: 1e-4,
            seed: 0,
        }
    }
}

/// Result of a Louvain run.
#[derive(Clone, Debug)]
pub struct LouvainResult {
    /// Community of each original vertex (dense `0..k`).
    pub labels: Vec<VertexId>,
    /// Aggregation levels performed.
    pub levels: u32,
    /// Modularity of the flattened partition after each level.
    pub modularity_per_level: Vec<f64>,
    /// Local-moving passes summed over levels.
    pub total_passes: u32,
}

/// Run multi-level Louvain.
pub fn louvain(g: &Csr, config: &LouvainConfig) -> LouvainResult {
    let n = g.num_vertices();
    let mut labels_global: Vec<VertexId> = (0..n as VertexId).collect();
    let mut current = g.clone();
    let mut modularity_per_level = Vec::new();
    let mut levels = 0;
    let mut total_passes = 0;
    let mut last_q = modularity(g, &labels_global);

    for level in 0..config.max_levels {
        let (local, passes) = local_moving(&current, config, config.seed ^ level as u64);
        total_passes += passes;
        let (compacted, k) = compact_labels(&local);

        // flatten: original vertex -> its super-vertex's new community
        for l in labels_global.iter_mut() {
            *l = compacted[*l as usize];
        }
        levels = level + 1;

        let q = modularity(g, &labels_global);
        modularity_per_level.push(q);
        if k == current.num_vertices() || q - last_q < config.min_gain {
            break;
        }
        last_q = q;
        current = aggregate(&current, &compacted, k);
    }

    LouvainResult {
        labels: labels_global,
        levels,
        modularity_per_level,
        total_passes,
    }
}

/// One level's greedy local-moving phase. Returns (labels, passes).
fn local_moving(g: &Csr, config: &LouvainConfig, seed: u64) -> (Vec<VertexId>, u32) {
    let n = g.num_vertices();
    let m2 = g.total_weight(); // 2m
    if m2 == 0.0 {
        return ((0..n as VertexId).collect(), 0);
    }
    let m = m2 / 2.0;

    // weighted degrees (self loop stored once contributes its full σ share)
    let k: Vec<f64> = g.vertices().map(|v| g.weighted_degree(v)).collect();
    let mut sigma_tot = k.clone();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();

    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    let mut passes = 0;
    // BTreeMap: deterministic iteration order makes tie-breaks reproducible
    let mut neigh: BTreeMap<VertexId, f64> = BTreeMap::new();

    for pass in 0..config.max_passes {
        passes = pass + 1;
        shuffle(&mut order, seed ^ (pass as u64) << 32);
        let mut moves = 0usize;

        for &v in &order {
            let d = labels[v as usize];
            let k_v = k[v as usize];

            neigh.clear();
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue; // self loops stay internal wherever v goes
                }
                *neigh.entry(labels[j as usize]).or_insert(0.0) += w as f64;
            }
            if neigh.is_empty() {
                continue;
            }

            // remove v from its community, then insert into the best
            sigma_tot[d as usize] -= k_v;
            let gain = |c: VertexId, k_to_c: f64| {
                k_to_c / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m)
            };
            let mut best_c = d;
            let mut best_gain = gain(d, neigh.get(&d).copied().unwrap_or(0.0));
            for (&c, &k_to_c) in &neigh {
                if c == d {
                    continue;
                }
                let gc = gain(c, k_to_c);
                // strict improvement with a deterministic tie-break
                if gc > best_gain + 1e-15 {
                    best_gain = gc;
                    best_c = c;
                }
            }
            sigma_tot[best_c as usize] += k_v;
            if best_c != d {
                labels[v as usize] = best_c;
                moves += 1;
            }
        }

        if moves == 0 {
            break;
        }
    }
    (labels, passes)
}

/// Collapse communities into super-vertices; intra-community weight
/// becomes a self loop carrying the full σ_c (sum of intra directed
/// edges), preserving the total directed weight.
fn aggregate(g: &Csr, compacted: &[VertexId], k: usize) -> Csr {
    let mut b = GraphBuilder::new(k)
        .keep_self_loops(true)
        .duplicate_policy(DuplicatePolicy::SumWeights)
        .reserve(g.num_edges().min(4 * k));
    for u in g.vertices() {
        let cu = compacted[u as usize];
        for (v, w) in g.neighbors(u) {
            let cv = compacted[v as usize];
            b.push_edge(cu, cv, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition,
        two_cliques_bridge,
    };
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, community_count, nmi, same_partition};

    fn cfg() -> LouvainConfig {
        LouvainConfig::default()
    }

    #[test]
    fn two_cliques_exact_even_with_unit_bridge() {
        // Louvain's ΔQ is tie-free here (unlike LPA's weight ties)
        let g = two_cliques_bridge(5);
        let r = louvain(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(2, 5)));
    }

    #[test]
    fn caveman_exact() {
        let g = caveman_weighted(6, 6, 1.0);
        let r = louvain(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(6, 6)));
    }

    #[test]
    fn beats_lpa_quality_on_planted_graph() {
        // the paper's headline trade-off: Louvain modularity > LPA's
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 23);
        let q_louvain = modularity(&pp.graph, &louvain(&pp.graph, &cfg()).labels);
        let q_flpa = modularity(&pp.graph, &crate::flpa::flpa(&pp.graph, 1).labels);
        assert!(
            q_louvain >= q_flpa - 1e-9,
            "louvain {q_louvain} vs flpa {q_flpa}"
        );
        let r = louvain(&pp.graph, &cfg());
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.9);
    }

    #[test]
    fn modularity_never_decreases_across_levels() {
        let g = erdos_renyi(200, 800, 6);
        let r = louvain(&g, &cfg());
        for pair in r.modularity_per_level.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-6,
                "levels: {:?}",
                r.modularity_per_level
            );
        }
    }

    #[test]
    fn positive_modularity_on_random_graph() {
        // even ER graphs have exploitable fluctuations; Q must be > 0
        let g = erdos_renyi(300, 900, 2);
        let r = louvain(&g, &cfg());
        assert!(modularity(&g, &r.labels) > 0.0);
        assert!(check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn complete_graph_one_community() {
        let g = complete(10);
        let r = louvain(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        let r = louvain(&g, &cfg());
        assert_eq!(r.labels.len(), 5);
        assert_eq!(community_count(&r.labels), 5);
    }

    #[test]
    fn deterministic() {
        let g = erdos_renyi(150, 500, 9);
        assert_eq!(louvain(&g, &cfg()).labels, louvain(&g, &cfg()).labels);
    }

    #[test]
    fn resolution_controls_granularity() {
        let g = caveman_weighted(6, 6, 1.0);
        let fine = louvain(
            &g,
            &LouvainConfig {
                resolution: 2.0,
                ..cfg()
            },
        );
        let coarse = louvain(
            &g,
            &LouvainConfig {
                resolution: 0.2,
                ..cfg()
            },
        );
        assert!(community_count(&fine.labels) >= community_count(&coarse.labels));
    }

    #[test]
    fn aggregation_preserves_total_weight() {
        let g = caveman_weighted(4, 5, 1.0);
        let labels = caveman_ground_truth(4, 5);
        let (compacted, k) = compact_labels(&labels);
        let coarse = aggregate(&g, &compacted, k);
        assert_eq!(coarse.num_vertices(), 4);
        assert!((coarse.total_weight() - g.total_weight()).abs() < 1e-6);
        // modularity of the coarse identity partition equals the fine one
        let fine_q = modularity(&g, &labels);
        let coarse_q = modularity(&coarse, &(0..4).collect::<Vec<_>>());
        assert!((fine_q - coarse_q).abs() < 1e-9);
    }

    #[test]
    fn passes_counted() {
        let g = caveman_weighted(3, 5, 1.0);
        let r = louvain(&g, &cfg());
        assert!(r.total_passes >= 1);
        assert!(r.levels >= 1);
    }
}
