//! Leiden community detection (Traag, Waltman & van Eck 2019).
//!
//! The paper's appendix sketches an *indirect comparison with
//! state-of-the-art Leiden implementations*; this baseline completes the
//! quality spectrum above Louvain. Leiden augments each Louvain level
//! with a **refinement phase** that re-partitions every community from
//! singletons, moving vertices only *within* their community — which
//! splits internally-disconnected or badly-connected communities before
//! aggregation. Its headline guarantee, and the property our tests
//! check: every returned community is **internally connected** (Louvain
//! can violate this; Leiden cannot).
//!
//! Structure per level:
//! 1. local moving (as Louvain, greedy ΔQ, shuffled sweeps);
//! 2. refinement: singletons inside each community, constrained merges;
//! 3. aggregation on the *refined* partition, with the coarse graph's
//!    initial labels taken from the unrefined partition.

use crate::common::shuffle;
use nulpa_graph::{Csr, DuplicatePolicy, GraphBuilder, VertexId};
use nulpa_metrics::{compact_labels, modularity};
use std::collections::BTreeMap;

/// Leiden configuration.
#[derive(Clone, Copy, Debug)]
pub struct LeidenConfig {
    /// Resolution γ (1.0 = classic modularity).
    pub resolution: f64,
    /// Local-moving pass cap per level.
    pub max_passes: u32,
    /// Maximum aggregation levels.
    pub max_levels: u32,
    /// Stop when a level improves modularity by less than this.
    pub min_gain: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LeidenConfig {
    fn default() -> Self {
        LeidenConfig {
            resolution: 1.0,
            max_passes: 50,
            max_levels: 10,
            min_gain: 1e-4,
            seed: 0,
        }
    }
}

/// Result of a Leiden run.
#[derive(Clone, Debug)]
pub struct LeidenResult {
    /// Community of each original vertex (dense `0..k`).
    pub labels: Vec<VertexId>,
    /// Aggregation levels performed.
    pub levels: u32,
    /// Modularity of the flattened partition after each level.
    pub modularity_per_level: Vec<f64>,
}

/// Run Leiden.
pub fn leiden(g: &Csr, config: &LeidenConfig) -> LeidenResult {
    let n = g.num_vertices();
    let mut labels_global: Vec<VertexId> = (0..n as VertexId).collect();
    let mut current = g.clone();
    let mut modularity_per_level = Vec::new();
    let mut levels = 0;
    let mut last_q = modularity(g, &labels_global);

    for level in 0..config.max_levels {
        let seed = config.seed ^ (level as u64) << 8;
        let coarse_labels = local_moving(&current, config, seed);
        let refined = refine(&current, &coarse_labels, config, seed ^ 0x5e_f14e);
        let (refined_c, k_ref) = compact_labels(&refined);

        // flatten the refined partition onto the original vertices
        for l in labels_global.iter_mut() {
            *l = refined_c[*l as usize];
        }
        levels = level + 1;

        let q = modularity(g, &labels_global);
        modularity_per_level.push(q);
        if k_ref == current.num_vertices() || q - last_q < config.min_gain {
            break;
        }
        last_q = q;
        current = aggregate(&current, &refined_c, k_ref);
    }

    LeidenResult {
        labels: labels_global,
        levels,
        modularity_per_level,
    }
}

/// Greedy local moving, identical in spirit to the Louvain phase.
fn local_moving(g: &Csr, config: &LeidenConfig, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let m2 = g.total_weight();
    if m2 == 0.0 {
        return (0..n as VertexId).collect();
    }
    let m = m2 / 2.0;
    let k: Vec<f64> = g.vertices().map(|v| g.weighted_degree(v)).collect();
    let mut sigma_tot = k.clone();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    let mut neigh: BTreeMap<VertexId, f64> = BTreeMap::new();

    for pass in 0..config.max_passes {
        shuffle(&mut order, seed ^ (pass as u64) << 32);
        let mut moves = 0usize;
        for &v in &order {
            let d = labels[v as usize];
            let k_v = k[v as usize];
            neigh.clear();
            for (j, w) in g.neighbors(v) {
                if j != v {
                    *neigh.entry(labels[j as usize]).or_insert(0.0) += w as f64;
                }
            }
            if neigh.is_empty() {
                continue;
            }
            sigma_tot[d as usize] -= k_v;
            let gain = |c: VertexId, k_to_c: f64| {
                k_to_c / m - config.resolution * sigma_tot[c as usize] * k_v / (2.0 * m * m)
            };
            let mut best_c = d;
            let mut best_gain = gain(d, neigh.get(&d).copied().unwrap_or(0.0));
            for (&c, &k_to_c) in &neigh {
                if c != d {
                    let gc = gain(c, k_to_c);
                    if gc > best_gain + 1e-15 {
                        best_gain = gc;
                        best_c = c;
                    }
                }
            }
            sigma_tot[best_c as usize] += k_v;
            if best_c != d {
                labels[v as usize] = best_c;
                moves += 1;
            }
        }
        if moves == 0 {
            break;
        }
    }
    labels
}

/// Leiden's refinement: each community of `coarse` is re-partitioned from
/// singletons; a vertex may only merge with refined communities inside
/// its own coarse community, and only for a positive modularity gain.
fn refine(g: &Csr, coarse: &[VertexId], config: &LeidenConfig, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let m2 = g.total_weight();
    if m2 == 0.0 {
        return (0..n as VertexId).collect();
    }
    let m = m2 / 2.0;
    let k: Vec<f64> = g.vertices().map(|v| g.weighted_degree(v)).collect();
    // refined partition starts as singletons
    let mut refined: Vec<VertexId> = (0..n as VertexId).collect();
    let mut sigma_ref = k.clone();

    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    shuffle(&mut order, seed);

    let mut neigh: BTreeMap<VertexId, f64> = BTreeMap::new();
    for &v in &order {
        // Leiden only merges vertices that are still singletons in the
        // refined partition (each vertex moves at most once).
        if refined[v as usize] != v || sigma_ref[v as usize] != k[v as usize] {
            continue;
        }
        let k_v = k[v as usize];
        neigh.clear();
        for (j, w) in g.neighbors(v) {
            if j != v && coarse[j as usize] == coarse[v as usize] {
                *neigh.entry(refined[j as usize]).or_insert(0.0) += w as f64;
            }
        }
        if neigh.is_empty() {
            continue;
        }
        sigma_ref[v as usize] -= k_v;
        let gain = |c: VertexId, k_to_c: f64| {
            k_to_c / m - config.resolution * sigma_ref[c as usize] * k_v / (2.0 * m * m)
        };
        let mut best: Option<(VertexId, f64)> = None;
        for (&c, &k_to_c) in &neigh {
            if c == v {
                continue;
            }
            let gc = gain(c, k_to_c);
            if gc > 0.0 && best.is_none_or(|(_, bg)| gc > bg + 1e-15) {
                best = Some((c, gc));
            }
        }
        match best {
            Some((c, _)) => {
                refined[v as usize] = c;
                sigma_ref[c as usize] += k_v;
            }
            None => sigma_ref[v as usize] += k_v, // stay singleton
        }
    }
    refined
}

/// Aggregate on the refined partition (same scheme as Louvain's).
fn aggregate(g: &Csr, compacted: &[VertexId], k: usize) -> Csr {
    let mut b = GraphBuilder::new(k)
        .keep_self_loops(true)
        .duplicate_policy(DuplicatePolicy::SumWeights)
        .reserve(g.num_edges().min(4 * k));
    for u in g.vertices() {
        for (v, w) in g.neighbors(u) {
            b.push_edge(compacted[u as usize], compacted[v as usize], w);
        }
    }
    b.build()
}

/// `true` when every community induces a connected subgraph — Leiden's
/// guarantee, exposed for tests and the harness.
pub fn communities_connected(g: &Csr, labels: &[VertexId]) -> bool {
    // Count intra-community BFS components per community: connected iff
    // every community has exactly one.
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut components = std::collections::HashMap::new();
    for start in g.vertices() {
        let su = start as usize;
        if seen[su] {
            continue;
        }
        let c = labels[su];
        *components.entry(c).or_insert(0u32) += 1;
        seen[su] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &j in g.neighbor_ids(u) {
                let ju = j as usize;
                if labels[ju] == c && !seen[ju] {
                    seen[ju] = true;
                    stack.push(j);
                }
            }
        }
    }
    components.values().all(|&c| c == 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::louvain::{louvain, LouvainConfig};
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, erdos_renyi, planted_partition, web_crawl,
    };
    use nulpa_graph::Csr;
    use nulpa_metrics::{check_labels, community_count, nmi, same_partition};

    fn cfg() -> LeidenConfig {
        LeidenConfig::default()
    }

    #[test]
    fn caveman_exact() {
        let g = caveman_weighted(5, 6, 1.0);
        let r = leiden(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 6)));
    }

    #[test]
    fn communities_always_connected() {
        for seed in [1, 2, 3] {
            let g = web_crawl(1500, 6, 0.1, seed);
            let r = leiden(&g, &cfg());
            assert!(communities_connected(&g, &r.labels), "seed {seed}");
        }
        let g = erdos_renyi(300, 900, 4);
        let r = leiden(&g, &cfg());
        assert!(communities_connected(&g, &r.labels));
    }

    #[test]
    fn quality_in_louvain_band() {
        let pp = planted_partition(&[70, 70, 70], 12.0, 1.0, 9);
        let q_leiden = modularity(&pp.graph, &leiden(&pp.graph, &cfg()).labels);
        let q_louvain = modularity(
            &pp.graph,
            &louvain(&pp.graph, &LouvainConfig::default()).labels,
        );
        assert!(
            q_leiden > 0.9 * q_louvain,
            "leiden {q_leiden} vs louvain {q_louvain}"
        );
        let r = leiden(&pp.graph, &cfg());
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.9);
    }

    #[test]
    fn modularity_monotone_across_levels() {
        let g = web_crawl(2000, 6, 0.1, 7);
        let r = leiden(&g, &cfg());
        for pair in r.modularity_per_level.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-6);
        }
    }

    #[test]
    fn valid_and_deterministic() {
        let g = erdos_renyi(200, 600, 11);
        let a = leiden(&g, &cfg());
        assert!(check_labels(&g, &a.labels).is_ok());
        assert_eq!(a.labels, leiden(&g, &cfg()).labels);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(4);
        let r = leiden(&g, &cfg());
        assert_eq!(community_count(&r.labels), 4);
    }

    #[test]
    fn connectivity_checker_detects_disconnection() {
        // path 0-1-2-3; labels {0,1,0,1}: both communities disconnected
        let g = nulpa_graph::gen::path(4);
        assert!(!communities_connected(&g, &[0, 1, 0, 1]));
        assert!(communities_connected(&g, &[0, 0, 1, 1]));
        assert!(communities_connected(&g, &[0, 0, 0, 0]));
    }
}
