//! Property-based tests across all baseline implementations: every
//! algorithm must return structurally valid labels on arbitrary graphs,
//! including degenerate ones.

use nulpa_baselines::{
    copra, flpa, gunrock_lp, gve_lpa, labelrank, leiden, louvain, networkit_plp, slpa, CopraConfig,
    GunrockConfig, GveLpaConfig, LabelRankConfig, LeidenConfig, LouvainConfig, PlpConfig,
    SlpaConfig,
};
use nulpa_graph::GraphBuilder;
use nulpa_metrics::{check_labels, modularity};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = nulpa_graph::Csr> {
    (2..40usize).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..4.0), 0..100).prop_map(
            move |edges| {
                GraphBuilder::new(n)
                    .add_undirected_edges(edges.into_iter().filter(|(u, v, _)| u != v))
                    .build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn all_baselines_return_valid_labels(g in arb_graph()) {
        let runs: Vec<(&str, Vec<u32>)> = vec![
            ("flpa", flpa(&g, 1).labels),
            ("plp", networkit_plp(&g, &PlpConfig::default()).labels),
            ("gunrock", gunrock_lp(&g, &GunrockConfig::default()).labels),
            ("louvain", louvain(&g, &LouvainConfig::default()).labels),
            ("leiden", leiden(&g, &LeidenConfig::default()).labels),
            ("gve", gve_lpa(&g, &GveLpaConfig::default()).labels),
            ("copra", copra(&g, &CopraConfig::default()).labels),
            ("slpa", slpa(&g, &SlpaConfig::default()).labels),
            ("labelrank", labelrank(&g, &LabelRankConfig::default()).labels),
        ];
        for (name, labels) in runs {
            prop_assert!(check_labels(&g, &labels).is_ok(), "{} invalid", name);
            let q = modularity(&g, &labels);
            prop_assert!((-0.5 - 1e-9..=1.0).contains(&q), "{}: Q = {}", name, q);
        }
    }

    #[test]
    fn louvain_never_below_singletons(g in arb_graph()) {
        // Louvain's greedy moves only accept positive ΔQ, so it can never
        // end below the all-singletons baseline
        let singles: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let q0 = modularity(&g, &singles);
        let q = modularity(&g, &louvain(&g, &LouvainConfig::default()).labels);
        prop_assert!(q >= q0 - 1e-9, "{} < {}", q, q0);
    }

    #[test]
    fn leiden_communities_connected(g in arb_graph()) {
        let r = leiden(&g, &LeidenConfig::default());
        prop_assert!(nulpa_baselines::communities_connected(&g, &r.labels));
    }

    #[test]
    fn copra_memberships_well_formed(g in arb_graph()) {
        let r = copra(&g, &CopraConfig::default());
        for (v, m) in r.memberships.iter().enumerate() {
            prop_assert!(!m.is_empty(), "vertex {} has no membership", v);
            let sum: f64 = m.iter().map(|&(_, b)| b).sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "vertex {}: sum {}", v, sum);
        }
    }

    #[test]
    fn isolated_vertices_keep_identity_everywhere(extra in 1usize..5) {
        // graph with deliberate isolated tail vertices
        let n = 6 + extra;
        let g = GraphBuilder::new(n)
            .add_undirected_edges([(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
            .build();
        // LPA-family baselines keep raw vertex-id labels, so isolated
        // vertices retain their own id (Louvain/Leiden compact labels to
        // dense 0..k, so they are checked for singleton-ness instead)
        for labels in [
            flpa(&g, 1).labels,
            networkit_plp(&g, &PlpConfig::default()).labels,
            gve_lpa(&g, &GveLpaConfig::default()).labels,
        ] {
            for (v, &l) in labels.iter().enumerate().skip(6) {
                prop_assert_eq!(l, v as u32);
            }
        }
        let lv = louvain(&g, &LouvainConfig::default()).labels;
        for v in 6..n {
            // isolated vertex sits alone in its (renamed) community
            prop_assert!(lv.iter().enumerate().all(|(u, &l)| u == v || l != lv[v]));
        }
    }
}
