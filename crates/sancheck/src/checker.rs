//! Shadow-memory checker core.
//!
//! One [`Checker`] instance shadows every instrumented allocation of a
//! run. Cells are keyed by **host byte address** of the element (base
//! pointer + index × element size), which makes distinct stores, and
//! distinct regions of one global buffer, naturally distinct without any
//! registration step.
//!
//! Wave boundaries are modelled with an **epoch counter** instead of
//! clearing: the simulator's `wave_end` hook bumps the epoch, and shadow
//! entries whose epoch is stale are simply ignored. This keeps the hot
//! hooks O(1) regardless of how much was written in earlier waves.

use crate::report::{Hazard, HazardKind, PriorAccess, SancheckReport, KIND_COUNT};
use std::collections::{HashMap, HashSet};

/// Where an access came from: the simulator's current coordinates.
/// `warp`/`lane` are wave-local for thread-per-item launches and
/// block-local for block-per-item launches; `block` is the item index
/// within the wave (0 for thread launches). Host-side accesses (outside
/// any kernel) report the default all-zero context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCtx {
    /// Wave index within the current kernel launch.
    pub wave: u64,
    /// Block index within the wave (block-per-item launches).
    pub block: u32,
    /// Warp index within the wave (thread launches) or block.
    pub warp: u32,
    /// Lane index within the warp.
    pub lane: u32,
}

/// Checker tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Maximum detailed [`Hazard`] records kept. Occurrences beyond the
    /// cap (or duplicating an already-recorded (kind, address) pair) are
    /// still counted in [`SancheckReport::counts`] but not stored.
    pub max_hazards: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig { max_hazards: 64 }
    }
}

/// Per-cell shadow state. Epochs are compared against the checker's
/// current epoch; stale entries mean "no access this wave".
#[derive(Clone, Copy, Default)]
struct ShadowCell {
    stage_epoch: u64,
    stage_by: ExecCtx,
    wt_epoch: u64,
    wt_by: ExecCtx,
    atomic_epoch: u64,
    atomic_by: ExecCtx,
}

/// One in-flight hashtable accumulation (probe sequence).
struct ProbeSession {
    capacity: usize,
    limit: u64,
    steps: u64,
    flagged: bool,
}

/// The shadow-memory hazard detector. Normally driven through the global
/// [`crate::hooks`]; constructible directly for unit tests.
pub struct Checker {
    config: CheckerConfig,
    kernel: String,
    ctx: ExecCtx,
    epoch: u64,
    shadow: HashMap<usize, ShadowCell>,
    uninit: HashSet<usize>,
    /// table id → key → first claimed slot (reset by `table_clear`).
    claims: HashMap<usize, HashMap<u32, usize>>,
    /// table id → in-flight probe session (tables are owned by one thread
    /// at a time, so sessions from concurrent native workers never clash).
    probes: HashMap<usize, ProbeSession>,
    hazards: Vec<Hazard>,
    counts: [u64; KIND_COUNT],
    seen: HashSet<(u8, usize)>,
    accesses: u64,
    suppressed: u64,
}

impl Checker {
    /// Fresh checker.
    pub fn new(config: CheckerConfig) -> Self {
        Checker {
            config,
            kernel: "host".to_string(),
            ctx: ExecCtx::default(),
            epoch: 1,
            shadow: HashMap::new(),
            uninit: HashSet::new(),
            claims: HashMap::new(),
            probes: HashMap::new(),
            hazards: Vec::new(),
            counts: [0; KIND_COUNT],
            seen: HashSet::new(),
            accesses: 0,
            suppressed: 0,
        }
    }

    /// Tear down into the final report.
    pub fn into_report(self) -> SancheckReport {
        SancheckReport {
            hazards: self.hazards,
            counts: self.counts,
            accesses: self.accesses,
            cells_shadowed: self.shadow.len(),
            suppressed: self.suppressed,
        }
    }

    fn record(
        &mut self,
        kind: HazardKind,
        addr: usize,
        ctx: ExecCtx,
        prior: Option<PriorAccess>,
        detail: String,
    ) {
        self.counts[kind as usize] += 1;
        if !self.seen.insert((kind as u8, addr)) || self.hazards.len() >= self.config.max_hazards {
            self.suppressed += 1;
            return;
        }
        self.hazards.push(Hazard {
            kind,
            kernel: self.kernel.clone(),
            addr,
            ctx,
            prior,
            detail,
        });
    }

    // --- execution-context hooks -------------------------------------

    /// A kernel launch named `name` begins.
    pub fn kernel_begin(&mut self, name: &str) {
        self.kernel = name.to_string();
        self.ctx = ExecCtx::default();
    }

    /// The current kernel launch ends; subsequent accesses are host-side.
    pub fn kernel_end(&mut self) {
        self.kernel = "host".to_string();
        self.ctx = ExecCtx::default();
    }

    /// Wave `w` of the current kernel begins.
    pub fn wave_begin(&mut self, w: u64) {
        self.ctx.wave = w;
        self.ctx.block = 0;
        self.ctx.warp = 0;
        self.ctx.lane = 0;
    }

    /// The current wave's deferred writes have been flushed: advance the
    /// epoch so earlier shadow entries go stale.
    pub fn wave_end(&mut self) {
        self.epoch += 1;
    }

    /// The current lane coordinates within the wave (or block).
    pub fn lane_ctx(&mut self, warp: u32, lane: u32) {
        self.ctx.warp = warp;
        self.ctx.lane = lane;
    }

    /// The current block index within the wave.
    pub fn block_ctx(&mut self, block: u32) {
        self.ctx.block = block;
    }

    // --- deferred-store hooks ----------------------------------------

    /// Plain read of the committed value at `addr`.
    pub fn read(&mut self, addr: usize) {
        self.accesses += 1;
        if self.uninit.contains(&addr) {
            let ctx = self.ctx;
            self.record(
                HazardKind::UninitRead,
                addr,
                ctx,
                None,
                format!("read of uninitialised cell at {addr:#x}"),
            );
        }
    }

    /// Staged (wave-buffered) write to `addr`.
    pub fn stage(&mut self, addr: usize) {
        self.accesses += 1;
        let ctx = self.ctx;
        let epoch = self.epoch;
        let cell = *self.shadow.entry(addr).or_default();
        if cell.stage_epoch == epoch && cell.stage_by != ctx {
            self.record(
                HazardKind::WaveWriteRace,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.stage_by,
                    kind: "staged write",
                }),
                format!("second lane staged a write to cell {addr:#x} in the same wave"),
            );
        }
        if cell.wt_epoch == epoch {
            self.record(
                HazardKind::WriteThroughRace,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.wt_by,
                    kind: "write-through",
                }),
                format!("staged write races a write-through to cell {addr:#x} in the same wave"),
            );
        }
        if cell.atomic_epoch == epoch {
            self.record(
                HazardKind::MixedAtomicPlain,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.atomic_by,
                    kind: "atomic",
                }),
                format!("staged write mixes with an atomic to cell {addr:#x} in the same wave"),
            );
        }
        let cell = self.shadow.entry(addr).or_default();
        cell.stage_epoch = epoch;
        cell.stage_by = ctx;
    }

    /// Immediately-visible write to `addr` (separate-kernel semantics).
    pub fn write_through(&mut self, addr: usize) {
        self.accesses += 1;
        self.uninit.remove(&addr);
        let ctx = self.ctx;
        let epoch = self.epoch;
        let cell = *self.shadow.entry(addr).or_default();
        if cell.stage_epoch == epoch {
            self.record(
                HazardKind::WriteThroughRace,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.stage_by,
                    kind: "staged write",
                }),
                format!("write-through races a staged write to cell {addr:#x} in the same wave"),
            );
        }
        let cell = self.shadow.entry(addr).or_default();
        cell.wt_epoch = epoch;
        cell.wt_by = ctx;
    }

    /// Atomic read-modify-write at `addr` (immediate, as on hardware).
    pub fn atomic(&mut self, addr: usize) {
        self.accesses += 1;
        self.uninit.remove(&addr);
        let ctx = self.ctx;
        let epoch = self.epoch;
        let cell = *self.shadow.entry(addr).or_default();
        if cell.stage_epoch == epoch {
            self.record(
                HazardKind::MixedAtomicPlain,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.stage_by,
                    kind: "staged write",
                }),
                format!("atomic mixes with a staged write to cell {addr:#x} in the same wave"),
            );
        }
        if cell.wt_epoch == epoch && cell.wt_by != ctx {
            self.record(
                HazardKind::MixedAtomicPlain,
                addr,
                ctx,
                Some(PriorAccess {
                    ctx: cell.wt_by,
                    kind: "write-through",
                }),
                format!("atomic mixes with a write-through to cell {addr:#x} in the same wave"),
            );
        }
        let cell = self.shadow.entry(addr).or_default();
        cell.atomic_epoch = epoch;
        cell.atomic_by = ctx;
    }

    /// A staged write was committed to `addr` by the wave flush.
    pub fn flush_commit(&mut self, addr: usize) {
        self.uninit.remove(&addr);
    }

    /// Mark `len` elements of `stride` bytes starting at `base` as
    /// uninitialised (device-malloc without memset).
    pub fn mark_uninit(&mut self, base: usize, stride: usize, len: usize) {
        for i in 0..len {
            self.uninit.insert(base + i * stride);
        }
    }

    /// A store access with index `index` was out of bounds for a store of
    /// `len` cells.
    pub fn oob(&mut self, index: usize, len: usize) {
        let ctx = self.ctx;
        self.record(
            HazardKind::OutOfBounds,
            index,
            ctx,
            None,
            format!("cell index {index} out of bounds for store of {len} cells"),
        );
    }

    // --- block/barrier hooks -----------------------------------------

    /// A block-wide barrier executed with the given per-lane active mask.
    /// Any warp with a mix of active and inactive lanes diverges.
    pub fn barrier(&mut self, active: &[bool], warp_size: usize) {
        let ws = warp_size.max(1);
        for (w, chunk) in active.chunks(ws).enumerate() {
            let on = chunk.iter().filter(|&&a| a).count();
            if on == 0 || on == chunk.len() {
                continue;
            }
            let first_off = chunk.iter().position(|&a| !a).unwrap_or(0);
            let mut ctx = self.ctx;
            ctx.warp = w as u32;
            ctx.lane = first_off as u32;
            self.record(
                HazardKind::BarrierDivergence,
                w,
                ctx,
                None,
                format!(
                    "barrier reached with {on}/{} lanes of warp {w} active",
                    chunk.len()
                ),
            );
        }
    }

    // --- hashtable hooks ---------------------------------------------

    /// Table `table` was cleared: forget its key claims and any session.
    pub fn table_clear(&mut self, table: usize) {
        self.claims.remove(&table);
        self.probes.remove(&table);
    }

    /// One slot of `table` was cleared: claims resolving to it are void.
    pub fn table_clear_slot(&mut self, table: usize, slot: usize) {
        if let Some(map) = self.claims.get_mut(&table) {
            map.retain(|_, &mut s| s != slot);
        }
    }

    /// An accumulate call on `table` (capacity `capacity`) starts probing;
    /// its probe sequence must terminate within `limit` steps.
    pub fn probe_start(&mut self, table: usize, capacity: usize, limit: u64) {
        self.probes.insert(
            table,
            ProbeSession {
                capacity,
                limit,
                steps: 0,
                flagged: false,
            },
        );
    }

    /// The in-flight accumulate on `table` inspected `slot`.
    pub fn probe_slot(&mut self, table: usize, slot: usize) {
        self.accesses += 1;
        let ctx = self.ctx;
        let Some(s) = self.probes.get_mut(&table) else {
            return;
        };
        s.steps += 1;
        let capacity = s.capacity;
        let limit = s.limit;
        let steps = s.steps;
        if slot >= capacity {
            self.record(
                HazardKind::OutOfBounds,
                slot,
                ctx,
                None,
                format!("probe visited slot {slot} >= table capacity {capacity}"),
            );
            return;
        }
        if steps > limit {
            let s = self.probes.get_mut(&table).expect("session exists");
            if !s.flagged {
                s.flagged = true;
                self.record(
                    HazardKind::ProbeOverrun,
                    table,
                    ctx,
                    None,
                    format!("probe sequence exceeded its termination bound of {limit} steps"),
                );
            }
        }
    }

    /// The in-flight accumulate on `table` finished.
    pub fn probe_end(&mut self, table: usize) {
        self.probes.remove(&table);
    }

    /// `key` was claimed (first inserted) at `slot` of `table`. A second
    /// claim of the same key at a different slot, before the table is
    /// cleared, breaks the duplicate-key accumulation invariant.
    pub fn claim(&mut self, table: usize, key: u32, slot: usize) {
        let ctx = self.ctx;
        let map = self.claims.entry(table).or_default();
        match map.get(&key) {
            Some(&prev) if prev != slot => {
                self.record(
                    HazardKind::DuplicateKey,
                    slot,
                    ctx,
                    None,
                    format!("key {key} claimed at slot {prev} and again at slot {slot}"),
                );
            }
            Some(_) => {}
            None => {
                map.insert(key, slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checker() -> Checker {
        Checker::new(CheckerConfig::default())
    }

    #[test]
    fn distinct_lane_stages_race_same_lane_do_not() {
        let mut c = checker();
        c.kernel_begin("k");
        c.lane_ctx(0, 0);
        c.stage(100);
        c.stage(100); // same lane restaging: allowed (last-write-wins)
        c.lane_ctx(0, 1);
        c.stage(100); // different lane: race
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::WaveWriteRace), 1);
        assert_eq!(r.hazards[0].ctx.lane, 1);
        assert_eq!(r.hazards[0].prior.unwrap().ctx.lane, 0);
    }

    #[test]
    fn epoch_advance_clears_staleness() {
        let mut c = checker();
        c.lane_ctx(0, 0);
        c.stage(100);
        c.wave_end();
        c.lane_ctx(0, 1);
        c.stage(100); // different wave: no race
        assert!(c.into_report().is_clean());
    }

    #[test]
    fn write_through_races_staged() {
        let mut c = checker();
        c.lane_ctx(0, 0);
        c.stage(8);
        c.lane_ctx(0, 3);
        c.write_through(8);
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::WriteThroughRace), 1);
        assert_eq!(r.hazards[0].ctx.lane, 3);
    }

    #[test]
    fn uninit_read_until_any_write_commits() {
        let mut c = checker();
        c.mark_uninit(1000, 4, 3); // cells 1000, 1004, 1008
        c.read(1004);
        c.write_through(1004);
        c.read(1004); // now initialised
        c.flush_commit(1008);
        c.read(1008); // initialised by a flushed staged write
        c.read(992); // outside the marked range: fine
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::UninitRead), 1);
        assert_eq!(r.hazards[0].addr, 1004);
    }

    #[test]
    fn mixed_atomic_and_staged() {
        let mut c = checker();
        c.lane_ctx(0, 0);
        c.stage(64);
        c.lane_ctx(0, 2);
        c.atomic(64);
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::MixedAtomicPlain), 1);
        assert_eq!(r.hazards[0].prior.unwrap().kind, "staged write");
    }

    #[test]
    fn barrier_divergence_flags_mixed_warps_only() {
        let mut c = checker();
        // warp size 4: warp 0 fully active, warp 1 mixed, warp 2 fully off
        let active = [
            true, true, true, true, true, false, true, true, false, false, false, false,
        ];
        c.barrier(&active, 4);
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::BarrierDivergence), 1);
        assert_eq!(r.hazards[0].ctx.warp, 1);
        assert_eq!(r.hazards[0].ctx.lane, 1); // first inactive lane of warp 1
    }

    #[test]
    fn probe_overrun_and_oob_slot() {
        let mut c = checker();
        c.probe_start(7, 5, 3);
        c.probe_slot(7, 0);
        c.probe_slot(7, 9); // out of bounds
        c.probe_slot(7, 1);
        c.probe_slot(7, 2); // step 4 > limit 3: overrun (flagged once)
        c.probe_slot(7, 3);
        c.probe_end(7);
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::OutOfBounds), 1);
        assert_eq!(r.count_of(HazardKind::ProbeOverrun), 1);
    }

    #[test]
    fn duplicate_key_across_slots_reset_by_clear() {
        let mut c = checker();
        c.claim(1, 42, 0);
        c.claim(1, 42, 0); // same slot again: fine (re-accumulation)
        c.claim(1, 42, 3); // different slot: duplicate
        c.table_clear(1);
        c.claim(1, 42, 3); // fresh session: fine
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::DuplicateKey), 1);
    }

    #[test]
    fn clear_slot_voids_only_matching_claims() {
        let mut c = checker();
        c.claim(1, 42, 0);
        c.claim(1, 7, 2);
        c.table_clear_slot(1, 0);
        c.claim(1, 42, 5); // previous claim was voided: no duplicate
        c.claim(1, 7, 4); // still claimed at slot 2: duplicate
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::DuplicateKey), 1);
    }

    #[test]
    fn dedup_counts_but_suppresses_detail() {
        let mut c = checker();
        c.lane_ctx(0, 0);
        c.stage(5);
        for lane in 1..4 {
            c.lane_ctx(0, lane);
            c.stage(5);
        }
        let r = c.into_report();
        assert_eq!(r.count_of(HazardKind::WaveWriteRace), 3);
        assert_eq!(r.hazards.len(), 1); // deduped by (kind, addr)
        assert_eq!(r.suppressed, 2);
    }

    #[test]
    fn kernel_name_attributed() {
        let mut c = checker();
        c.kernel_begin("kernel:block");
        c.lane_ctx(1, 2);
        c.stage(5);
        c.lane_ctx(1, 3);
        c.stage(5);
        c.kernel_end();
        let r = c.into_report();
        assert_eq!(r.hazards[0].kernel, "kernel:block");
    }
}
