//! # nulpa-sancheck
//!
//! A dynamic hazard detector for the SIMT execution-model simulator — the
//! simulator-world analogue of CUDA `compute-sanitizer --tool racecheck`
//! and `--tool memcheck`.
//!
//! The paper's correctness argument (§4.1: community swaps, the
//! Cross-Check revert pass, "each vertex is written by exactly one thread
//! per iteration") rests on memory-visibility invariants the simulator
//! *models* but, on its own, never *checks*. This crate checks them at
//! runtime: instrumented code in `nulpa-simt` and `nulpa-hashtab` (behind
//! their `sancheck` cargo feature) reports every deferred-store access,
//! barrier, atomic, and hashtable probe to a process-global [`Checker`],
//! which keeps **shadow state** per memory cell — the last writer's
//! (wave, warp, lane), the access kind (staged / write-through / atomic),
//! and init status — and records a [`Hazard`] whenever an invariant is
//! violated.
//!
//! ## Hazard taxonomy
//!
//! | kind | invariant violated |
//! |------|--------------------|
//! | [`HazardKind::WaveWriteRace`] | two distinct lanes stage the same cell in one wave |
//! | [`HazardKind::WriteThroughRace`] | an immediate (`write_through`) write races a staged one within a wave |
//! | [`HazardKind::UninitRead`] | read of a cell never initialised |
//! | [`HazardKind::OutOfBounds`] | store index or table slot outside the allocation |
//! | [`HazardKind::BarrierDivergence`] | a warp reaches a barrier with unequal lane participation |
//! | [`HazardKind::MixedAtomicPlain`] | atomic and plain writes to one address in the same wave |
//! | [`HazardKind::ProbeOverrun`] | a probe sequence exceeds its termination bound |
//! | [`HazardKind::DuplicateKey`] | one key claimed at two distinct hashtable slots |
//!
//! ## Usage
//!
//! ```
//! use nulpa_sancheck::{install, uninstall, CheckerConfig};
//!
//! install(CheckerConfig::default());
//! // ... run instrumented kernels ...
//! let report = uninstall().expect("checker was installed");
//! assert!(report.is_clean(), "{}", report.render());
//! ```
//!
//! The checker is process-global (hooks fire from the simulator *and*
//! from rayon worker threads in the native backend), guarded by an atomic
//! enabled flag plus a mutex. When not installed, every hook is a single
//! relaxed atomic load — the neutrality tests in the workspace root assert
//! that an installed checker changes no observable result and that a
//! disabled one costs nothing measurable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
pub mod hooks;
mod report;

pub use checker::{Checker, CheckerConfig, ExecCtx};
pub use hooks::{install, is_active, uninstall};
pub use report::{Hazard, HazardKind, PriorAccess, SancheckReport};
