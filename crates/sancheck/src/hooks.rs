//! Process-global instrumentation hooks.
//!
//! Instrumented code in `nulpa-simt` and `nulpa-hashtab` calls these free
//! functions (compiled in behind their `sancheck` cargo feature). Each
//! hook starts with a single relaxed load of the global enabled flag, so
//! an uninstalled checker costs one predictable branch per call site; the
//! checker itself lives behind a mutex because hooks fire both from the
//! single-threaded simulator and from rayon workers in the native
//! backend.

use crate::checker::{Checker, CheckerConfig};
use crate::report::SancheckReport;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

static ENABLED: AtomicBool = AtomicBool::new(false);
static CHECKER: Mutex<Option<Checker>> = Mutex::new(None);

fn lock() -> MutexGuard<'static, Option<Checker>> {
    // A panic inside an instrumented region (e.g. the out-of-bounds
    // fault-injection test) can poison the lock; the checker state is
    // still coherent, so recover it.
    CHECKER.lock().unwrap_or_else(|e| e.into_inner())
}

/// Install a fresh checker; subsequent instrumented accesses are checked.
/// Replaces any previously installed checker (its findings are dropped).
pub fn install(config: CheckerConfig) {
    let mut g = lock();
    *g = Some(Checker::new(config));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disable checking and return the report of the installed checker, if
/// any.
pub fn uninstall() -> Option<SancheckReport> {
    ENABLED.store(false, Ordering::SeqCst);
    lock().take().map(Checker::into_report)
}

/// `true` while a checker is installed.
#[inline]
pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn with(f: impl FnOnce(&mut Checker)) {
    let mut g = lock();
    if let Some(c) = g.as_mut() {
        f(c);
    }
}

macro_rules! hook {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* ) => $method:ident) => {
        $(#[$doc])*
        #[inline]
        pub fn $name($($arg: $ty),*) {
            if is_active() {
                with(|c| c.$method($($arg),*));
            }
        }
    };
}

hook!(
    /// A kernel launch named `name` begins.
    kernel_begin(name: &str) => kernel_begin
);
hook!(
    /// The current kernel launch ends.
    kernel_end() => kernel_end
);
hook!(
    /// Wave `w` of the current kernel begins.
    wave_begin(w: u64) => wave_begin
);
hook!(
    /// The current wave flushed: advance the shadow epoch.
    wave_end() => wave_end
);
hook!(
    /// Set the current (warp, lane) coordinates.
    lane_ctx(warp: u32, lane: u32) => lane_ctx
);
hook!(
    /// Set the current block index within the wave.
    block_ctx(block: u32) => block_ctx
);
hook!(
    /// Deferred-store read of the committed value at `addr`.
    ds_read(addr: usize) => read
);
hook!(
    /// Deferred-store staged write to `addr`.
    ds_stage(addr: usize) => stage
);
hook!(
    /// Deferred-store immediate (write-through) write to `addr`.
    ds_write_through(addr: usize) => write_through
);
hook!(
    /// Atomic read-modify-write at `addr`.
    atomic_access(addr: usize) => atomic
);
hook!(
    /// A staged write to `addr` was committed by a wave flush.
    ds_flush_commit(addr: usize) => flush_commit
);
hook!(
    /// Mark `len` elements of `stride` bytes at `base` uninitialised.
    mark_uninit(base: usize, stride: usize, len: usize) => mark_uninit
);
hook!(
    /// A store access at `index` was out of bounds for `len` cells.
    ds_oob(index: usize, len: usize) => oob
);
hook!(
    /// A block barrier ran with the given per-lane active mask.
    barrier(active: &[bool], warp_size: usize) => barrier
);
hook!(
    /// Table `table` was cleared.
    table_clear(table: usize) => table_clear
);
hook!(
    /// One slot of `table` was cleared.
    table_clear_slot(table: usize, slot: usize) => table_clear_slot
);
hook!(
    /// An accumulate on `table` starts probing (termination bound
    /// `limit`).
    probe_start(table: usize, capacity: usize, limit: u64) => probe_start
);
hook!(
    /// The in-flight accumulate on `table` inspected `slot`.
    probe_slot(table: usize, slot: usize) => probe_slot
);
hook!(
    /// The in-flight accumulate on `table` finished.
    probe_end(table: usize) => probe_end
);
hook!(
    /// `key` was claimed at `slot` of `table`.
    claim(table: usize, key: u32, slot: usize) => claim
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::HazardKind;
    use std::sync::Mutex as TestMutex;

    // The checker is process-global; serialise tests that install it.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    #[test]
    fn hooks_are_noops_when_uninstalled() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(uninstall().is_none());
        assert!(!is_active());
        ds_stage(1);
        ds_stage(1);
        barrier(&[true, false], 2);
        assert!(uninstall().is_none());
    }

    #[test]
    fn install_check_uninstall_roundtrip() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(CheckerConfig::default());
        assert!(is_active());
        kernel_begin("k");
        lane_ctx(0, 0);
        ds_stage(0xbeef);
        lane_ctx(0, 1);
        ds_stage(0xbeef);
        kernel_end();
        let r = uninstall().expect("installed");
        assert!(!is_active());
        assert_eq!(r.count_of(HazardKind::WaveWriteRace), 1);
        assert_eq!(r.hazards[0].kernel, "k");
    }

    #[test]
    fn reinstall_resets_state() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        install(CheckerConfig::default());
        lane_ctx(0, 0);
        ds_stage(1);
        lane_ctx(0, 1);
        ds_stage(1);
        install(CheckerConfig::default());
        let r = uninstall().expect("installed");
        assert!(r.is_clean());
    }
}
