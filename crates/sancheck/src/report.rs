//! Hazard records and the structured report.

use crate::checker::ExecCtx;
use nulpa_obs::{json, track, TraceSink, Value};

/// The classes of hazard the checker detects. The discriminant indexes
/// [`SancheckReport::counts`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum HazardKind {
    /// Two distinct lanes staged a write to the same cell within one wave
    /// — ν-LPA's one-writer-per-wave rule broken (paper §4.1).
    WaveWriteRace = 0,
    /// An immediate (`write_through`) write and a staged write hit the
    /// same cell within one wave: the immediate write is either lost at
    /// the flush or observed early by half the wave. (Cross-Check is safe
    /// because it runs as a *separate* kernel launch.)
    WriteThroughRace = 1,
    /// Read of a cell that was never initialised (device-malloc semantics
    /// without a memset).
    UninitRead = 2,
    /// Store cell index or hashtable slot outside the allocation.
    OutOfBounds = 3,
    /// A warp reached a barrier with some lanes active and some exited —
    /// undefined behaviour for `__syncthreads()` on hardware.
    BarrierDivergence = 4,
    /// Atomic and plain (staged or write-through) writes to the same
    /// address within one wave: atomics take effect immediately, plain
    /// writes at the flush, so the final value depends on scheduling.
    MixedAtomicPlain = 5,
    /// A hashtable probe sequence exceeded its termination bound
    /// (`max_retries + capacity` steps) — the Algorithm 2 termination
    /// argument failed.
    ProbeOverrun = 6,
    /// One key claimed at two distinct slots of the same table in one
    /// accumulation session — duplicate-key invariant broken, weights
    /// would be split across slots.
    DuplicateKey = 7,
}

/// Number of hazard kinds (length of [`SancheckReport::counts`]).
pub const KIND_COUNT: usize = 8;

impl HazardKind {
    /// All kinds, in discriminant order.
    pub const ALL: [HazardKind; KIND_COUNT] = [
        HazardKind::WaveWriteRace,
        HazardKind::WriteThroughRace,
        HazardKind::UninitRead,
        HazardKind::OutOfBounds,
        HazardKind::BarrierDivergence,
        HazardKind::MixedAtomicPlain,
        HazardKind::ProbeOverrun,
        HazardKind::DuplicateKey,
    ];

    /// Stable kebab-case name (used in reports, JSON, and trace spans).
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::WaveWriteRace => "wave-write-race",
            HazardKind::WriteThroughRace => "write-through-race",
            HazardKind::UninitRead => "uninit-read",
            HazardKind::OutOfBounds => "out-of-bounds",
            HazardKind::BarrierDivergence => "barrier-divergence",
            HazardKind::MixedAtomicPlain => "mixed-atomic-plain",
            HazardKind::ProbeOverrun => "probe-overrun",
            HazardKind::DuplicateKey => "duplicate-key",
        }
    }
}

/// The earlier access a hazard conflicts with (the "other side" of a race).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PriorAccess {
    /// Who made the earlier access.
    pub ctx: ExecCtx,
    /// What the earlier access was ("staged write", "write-through",
    /// "atomic").
    pub kind: &'static str,
}

/// One detected invariant violation, with full lane attribution.
#[derive(Clone, Debug)]
pub struct Hazard {
    /// Hazard class.
    pub kind: HazardKind,
    /// Kernel the faulting access ran in (`"host"` outside any kernel).
    pub kernel: String,
    /// Faulting address: a shadow-memory cell address, a table slot, a
    /// warp index (barrier divergence) — see `detail`.
    pub addr: usize,
    /// (wave, block, warp, lane) of the faulting access.
    pub ctx: ExecCtx,
    /// The conflicting earlier access, when the hazard is a race.
    pub prior: Option<PriorAccess>,
    /// Human-readable description.
    pub detail: String,
}

impl Hazard {
    /// One-line rendering with attribution.
    pub fn render(&self) -> String {
        let mut s = format!(
            "[{}] {} wave={} block={} warp={} lane={}: {}",
            self.kind.name(),
            self.kernel,
            self.ctx.wave,
            self.ctx.block,
            self.ctx.warp,
            self.ctx.lane,
            self.detail
        );
        if let Some(p) = &self.prior {
            s.push_str(&format!(
                " (prior {} by wave={} block={} warp={} lane={})",
                p.kind, p.ctx.wave, p.ctx.block, p.ctx.warp, p.ctx.lane
            ));
        }
        s
    }

    /// JSON object rendering.
    pub fn to_json(&self) -> String {
        let prior = match &self.prior {
            None => "null".to_string(),
            Some(p) => format!(
                "{{\"kind\":{},\"wave\":{},\"block\":{},\"warp\":{},\"lane\":{}}}",
                json::escape(p.kind),
                p.ctx.wave,
                p.ctx.block,
                p.ctx.warp,
                p.ctx.lane
            ),
        };
        format!(
            "{{\"kind\":{},\"kernel\":{},\"addr\":{},\"wave\":{},\"block\":{},\"warp\":{},\"lane\":{},\"prior\":{},\"detail\":{}}}",
            json::escape(self.kind.name()),
            json::escape(&self.kernel),
            self.addr,
            self.ctx.wave,
            self.ctx.block,
            self.ctx.warp,
            self.ctx.lane,
            prior,
            json::escape(&self.detail)
        )
    }
}

/// Structured result of one checked run ([`crate::uninstall`] returns it).
#[derive(Clone, Debug, Default)]
pub struct SancheckReport {
    /// Detailed hazard records (deduplicated per (kind, address) and
    /// capped by [`crate::CheckerConfig::max_hazards`]).
    pub hazards: Vec<Hazard>,
    /// Total occurrences per kind, indexed by [`HazardKind`] discriminant
    /// — keeps counting past the dedup/cap.
    pub counts: [u64; KIND_COUNT],
    /// Accesses checked (reads, stages, write-throughs, atomics, probes).
    pub accesses: u64,
    /// Distinct cells with shadow state at teardown.
    pub cells_shadowed: usize,
    /// Hazard occurrences not recorded in detail (dedup or cap).
    pub suppressed: u64,
}

impl SancheckReport {
    /// Total hazard occurrences across all kinds.
    pub fn total_hazards(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `true` when no hazard of any kind was observed.
    pub fn is_clean(&self) -> bool {
        self.total_hazards() == 0
    }

    /// Occurrences of one kind.
    pub fn count_of(&self, kind: HazardKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut s = String::new();
        if self.is_clean() {
            s.push_str(&format!(
                "sancheck: clean ({} accesses checked, {} cells shadowed)\n",
                self.accesses, self.cells_shadowed
            ));
            return s;
        }
        let by_kind: Vec<String> = HazardKind::ALL
            .iter()
            .filter(|&&k| self.count_of(k) > 0)
            .map(|&k| format!("{}: {}", k.name(), self.count_of(k)))
            .collect();
        s.push_str(&format!(
            "sancheck: {} hazards ({}), {} accesses checked\n",
            self.total_hazards(),
            by_kind.join(", "),
            self.accesses
        ));
        for h in &self.hazards {
            s.push_str("  ");
            s.push_str(&h.render());
            s.push('\n');
        }
        if self.suppressed > 0 {
            s.push_str(&format!(
                "  ... {} further occurrences suppressed (dedup/cap)\n",
                self.suppressed
            ));
        }
        s
    }

    /// JSON object rendering (for `nulpa sancheck --json`).
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = HazardKind::ALL
            .iter()
            .filter(|&&k| self.count_of(k) > 0)
            .map(|&k| format!("{}:{}", json::escape(k.name()), self.count_of(k)))
            .collect();
        let hazards: Vec<String> = self.hazards.iter().map(Hazard::to_json).collect();
        format!(
            "{{\"total_hazards\":{},\"counts\":{{{}}},\"hazards\":[{}],\"accesses\":{},\"cells_shadowed\":{},\"suppressed\":{}}}",
            self.total_hazards(),
            counts.join(","),
            hazards.join(","),
            self.accesses,
            self.cells_shadowed,
            self.suppressed
        )
    }

    /// Emit each recorded hazard as an instant span on the
    /// [`track::HAZARD`] track of `sink`, with attribution in the args —
    /// the report's path into the existing `nulpa-obs` exporters.
    pub fn emit(&self, sink: &mut dyn TraceSink) {
        if !sink.is_enabled() {
            return;
        }
        for (i, h) in self.hazards.iter().enumerate() {
            let name = format!("hazard:{}", h.kind.name());
            sink.span_begin(
                track::HAZARD,
                &name,
                i as u64,
                &[
                    ("kernel", Value::from(h.kernel.as_str())),
                    ("addr", Value::from(h.addr)),
                    ("wave", Value::from(h.ctx.wave)),
                    ("block", Value::from(h.ctx.block)),
                    ("warp", Value::from(h.ctx.warp)),
                    ("lane", Value::from(h.ctx.lane)),
                    ("detail", Value::from(h.detail.as_str())),
                ],
            );
            sink.span_end(track::HAZARD, &name, i as u64, &[]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_obs::json::Json;

    fn hazard() -> Hazard {
        Hazard {
            kind: HazardKind::WaveWriteRace,
            kernel: "kernel:thread".to_string(),
            addr: 64,
            ctx: ExecCtx {
                wave: 1,
                block: 0,
                warp: 2,
                lane: 3,
            },
            prior: Some(PriorAccess {
                ctx: ExecCtx::default(),
                kind: "staged write",
            }),
            detail: "second staged write to cell".to_string(),
        }
    }

    #[test]
    fn render_includes_attribution() {
        let r = hazard().render();
        assert!(r.contains("wave-write-race"));
        assert!(r.contains("wave=1"));
        assert!(r.contains("lane=3"));
        assert!(r.contains("prior staged write"));
    }

    #[test]
    fn json_is_parseable() {
        let mut rep = SancheckReport::default();
        rep.hazards.push(hazard());
        rep.counts[HazardKind::WaveWriteRace as usize] = 3;
        rep.accesses = 10;
        let parsed = json::parse(&rep.to_json()).expect("valid json");
        assert_eq!(parsed.get("total_hazards").and_then(Json::as_u64), Some(3));
        assert_eq!(
            parsed.get("hazards").and_then(Json::as_arr).map(<[_]>::len),
            Some(1)
        );
        assert!(!rep.is_clean());
        assert_eq!(rep.total_hazards(), 3);
    }

    #[test]
    fn clean_report_renders_clean() {
        let rep = SancheckReport::default();
        assert!(rep.is_clean());
        assert!(rep.render().contains("clean"));
    }

    #[test]
    fn emit_writes_hazard_spans() {
        let mut rep = SancheckReport::default();
        rep.hazards.push(hazard());
        let mut sink = nulpa_obs::RecordingSink::new();
        rep.emit(&mut sink);
        assert_eq!(sink.span_counts(), (1, 1, 0));
        assert_eq!(sink.begin_names(), vec!["hazard:wave-write-race"]);
    }
}
