//! Low-/high-degree vertex partitioning (paper §4.3, Fig. 4).
//!
//! Vertices with degree below the switch degree are processed by the
//! thread-per-vertex kernel; the rest by the block-per-vertex kernel.
//! Isolated vertices are excluded entirely — they can never change label.

use nulpa_graph::{Csr, VertexId};

/// Vertex sets destined for the two kernels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelPartition {
    /// Degree in `1..switch_degree`: thread-per-vertex kernel.
    pub low: Vec<VertexId>,
    /// Degree `>= switch_degree`: block-per-vertex kernel.
    pub high: Vec<VertexId>,
}

impl KernelPartition {
    /// Total vertices across both kernels.
    pub fn len(&self) -> usize {
        self.low.len() + self.high.len()
    }

    /// No eligible vertices at all.
    pub fn is_empty(&self) -> bool {
        self.low.is_empty() && self.high.is_empty()
    }
}

/// Partition an arbitrary candidate list by degree.
pub fn partition_candidates(
    g: &Csr,
    candidates: impl Iterator<Item = VertexId>,
    switch_degree: u32,
) -> KernelPartition {
    let mut p = KernelPartition::default();
    for v in candidates {
        let d = g.degree(v);
        if d == 0 {
            continue;
        }
        if (d as u32) < switch_degree {
            p.low.push(v);
        } else {
            p.high.push(v);
        }
    }
    p
}

/// Partition all vertices of the graph.
pub fn partition_all(g: &Csr, switch_degree: u32) -> KernelPartition {
    partition_candidates(g, g.vertices(), switch_degree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::star;
    use nulpa_graph::GraphBuilder;

    #[test]
    fn star_partitions_hub_high() {
        let g = star(40); // hub degree 39, leaves degree 1
        let p = partition_all(&g, 32);
        assert_eq!(p.high, vec![0]);
        assert_eq!(p.low.len(), 39);
        assert_eq!(p.len(), 40);
    }

    #[test]
    fn isolated_vertices_excluded() {
        let g = GraphBuilder::new(3).add_undirected_edge(0, 1, 1.0).build();
        let p = partition_all(&g, 32);
        assert_eq!(p.len(), 2);
        assert!(!p.low.contains(&2));
    }

    #[test]
    fn switch_degree_boundary_is_ge() {
        // vertex with degree exactly equal to switch goes high
        let g = star(5); // hub degree 4
        let p = partition_all(&g, 4);
        assert_eq!(p.high, vec![0]);
        let p2 = partition_all(&g, 5);
        assert!(p2.high.is_empty());
        assert_eq!(p2.low.len(), 5);
    }

    #[test]
    fn candidate_subset_respected() {
        let g = star(10);
        let p = partition_candidates(&g, [1, 2, 0].into_iter(), 3);
        assert_eq!(p.low, vec![1, 2]);
        assert_eq!(p.high, vec![0]);
    }

    #[test]
    fn empty_graph() {
        let g = nulpa_graph::Csr::empty(4);
        let p = partition_all(&g, 32);
        assert!(p.is_empty());
    }
}
