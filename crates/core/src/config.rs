//! ν-LPA configuration (paper §4, "Our optimized LPA implementation").

use nulpa_hashtab::ProbeStrategy;
use nulpa_simt::{CostModel, DeviceConfig};

/// Community-swap mitigation (paper §4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapMode {
    /// No mitigation — the configuration whose non-convergence motivates
    /// §4.1.
    Off,
    /// Cross-Check: after an iteration, revert "bad" community changes
    /// (`C[c*] != c*`), every `every` iterations.
    CrossCheck {
        /// Apply every this many iterations (1–4 in the paper's sweep).
        every: u32,
    },
    /// Pick-Less: a vertex may only adopt a strictly smaller label,
    /// enforced every `every` iterations. The paper adopts `every = 4`
    /// (PL4).
    PickLess {
        /// Apply every this many iterations.
        every: u32,
    },
    /// Hybrid: both CC and PL on their own periods (the paper's 16-combo
    /// sweep).
    Hybrid {
        /// Cross-check period.
        cc_every: u32,
        /// Pick-less period.
        pl_every: u32,
    },
}

impl SwapMode {
    /// Is the Pick-Less gate active on iteration `iter` (0-based)?
    /// The paper enables it when `l_i mod ρ = 0` (Algorithm 1).
    pub fn pick_less_on(self, iter: u32) -> bool {
        match self {
            SwapMode::PickLess { every } => iter.is_multiple_of(every),
            SwapMode::Hybrid { pl_every, .. } => iter.is_multiple_of(pl_every),
            _ => false,
        }
    }

    /// Does a Cross-Check pass follow iteration `iter` (0-based)?
    pub fn cross_check_on(self, iter: u32) -> bool {
        match self {
            SwapMode::CrossCheck { every } => iter.is_multiple_of(every),
            SwapMode::Hybrid { cc_every, .. } => iter.is_multiple_of(cc_every),
            _ => false,
        }
    }

    /// Short label for figures ("PL4", "CC2", "H2,3", "Off").
    pub fn label(self) -> String {
        match self {
            SwapMode::Off => "Off".to_string(),
            SwapMode::CrossCheck { every } => format!("CC{every}"),
            SwapMode::PickLess { every } => format!("PL{every}"),
            SwapMode::Hybrid { cc_every, pl_every } => format!("H{cc_every},{pl_every}"),
        }
    }
}

/// Degree thresholds splitting an iteration's active set into low-,
/// mid-, and high-degree buckets for the native fast path.
///
/// Low-degree vertices (`degree <= low_max`) are cheap and abundant, so
/// threads claim them in large chunks; mid-degree vertices
/// (`low_max < degree <= mid_max`) in small chunks; high-degree hubs
/// (`degree > mid_max`) one at a time, so a single hub can never
/// serialize a whole chunk behind it (see DESIGN.md §10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketThresholds {
    /// Largest degree still counted as "low" (default 32 — the warp
    /// size, matching the paper's kernel switch degree).
    pub low_max: u32,
    /// Largest degree still counted as "mid" (default 512). Anything
    /// above is a hub and is claimed one vertex at a time.
    pub mid_max: u32,
}

impl Default for BucketThresholds {
    fn default() -> Self {
        BucketThresholds {
            low_max: 32,
            mid_max: 512,
        }
    }
}

/// Hashtable value datatype (Fig. 5 ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ValueType {
    /// 32-bit floats — the paper's adopted configuration.
    #[default]
    F32,
    /// 64-bit floats — GVE-LPA's choice, slower on GPU.
    F64,
}

/// Full ν-LPA configuration. Defaults reproduce the paper's adopted
/// settings: 20 iterations max, per-iteration tolerance τ = 0.05,
/// Pick-Less every 4 iterations, switch degree 32, quadratic-double
/// probing, `f32` hashtable values, A100 device.
#[derive(Clone, Copy, Debug)]
pub struct LpaConfig {
    /// Iteration cap (paper: 20).
    pub max_iterations: u32,
    /// Per-iteration tolerance τ: converged when `ΔN/N < τ` on a
    /// non-Pick-Less iteration (paper: 0.05).
    pub tolerance: f64,
    /// Swap mitigation; the paper adopts `PickLess { every: 4 }`.
    pub swap_mode: SwapMode,
    /// Degree threshold between thread-per-vertex and block-per-vertex
    /// kernels (paper: 32, the warp size).
    pub switch_degree: u32,
    /// Hashtable collision resolution (paper: quadratic-double).
    pub probe: ProbeStrategy,
    /// Hashtable value datatype (paper: `f32`).
    pub value_type: ValueType,
    /// Vertex pruning (paper §4 feature 4): only vertices whose
    /// neighbourhood changed are reprocessed. Disable for the ablation
    /// bench — every iteration then scans all vertices.
    pub pruning: bool,
    /// Frontier (worklist) execution: instead of scanning all |V|
    /// vertices and filtering on the pruning flags, each iteration
    /// processes an explicit active set carried over from the previous
    /// one (Traag & Šubelj's fast label propagation). Final labels are
    /// bit-identical to the dense sweep per backend; on the simulated GPU
    /// the sparse launch charges cycles proportional to the frontier, not
    /// |V|. Requires `pruning` (the frontier *is* the pruning rule made
    /// explicit).
    pub frontier: bool,
    /// Shared-memory hashtables for low-degree vertices (paper §4.2: the
    /// authors "experimented with shared memory-based hashtables for
    /// low-degree vertices, but saw little to no performance gain" — off
    /// by default; the ablation bench turns it on). Table accesses become
    /// shared-memory cheap, but the thread kernel's occupancy drops to
    /// what the SM's shared memory can back.
    pub shared_tables: bool,
    /// Simulated device for the GPU backend.
    pub device: DeviceConfig,
    /// Cost model for the GPU backend.
    pub cost: CostModel,
    /// Host threads for the simulator's sharded wave execution. `0` (the
    /// default) resolves to `NULPA_THREADS` when set, else the machine's
    /// available parallelism. Results are bit-for-bit identical at every
    /// setting; see [`resolve_threads`].
    pub threads: usize,
    /// Degree-bucketed fast path for the native backend: `Some(..)` (the
    /// default) routes `lpa_native` through the cache-blocked, dense-
    /// counter engine with the given bucket thresholds; `None` keeps the
    /// legacy per-vertex hashtable path. Labels differ between the two
    /// paths only in tie-breaks (the fast path uses the sequential
    /// backend's scrambled tie-break; the hashtable path is slot-order
    /// dependent), but each path is bit-identical across thread counts.
    pub buckets: Option<BucketThresholds>,
}

impl Default for LpaConfig {
    fn default() -> Self {
        LpaConfig {
            max_iterations: 20,
            tolerance: 0.05,
            swap_mode: SwapMode::PickLess { every: 4 },
            switch_degree: 32,
            probe: ProbeStrategy::QuadraticDouble,
            value_type: ValueType::F32,
            pruning: true,
            frontier: false,
            shared_tables: false,
            device: DeviceConfig::a100(),
            cost: CostModel::default_gpu(),
            threads: 0,
            buckets: Some(BucketThresholds::default()),
        }
    }
}

/// Resolve a requested host-thread count to an effective one: an explicit
/// `requested > 0` wins; otherwise the `NULPA_THREADS` environment
/// variable (when set to a positive integer); otherwise the machine's
/// available parallelism. Thread count never affects results — only host
/// wall-clock.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    let auto = || {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    };
    if let Ok(env) = std::env::var("NULPA_THREADS") {
        match env.trim().parse::<usize>() {
            Ok(t) if t > 0 => return t,
            _ => {
                let fallback = auto();
                warn_bad_threads_env(&env, fallback);
                return fallback;
            }
        }
    }
    auto()
}

/// One-line stderr warning for an unusable `NULPA_THREADS` value, emitted
/// at most once per process so bench loops that resolve the config per
/// run don't spam.
fn warn_bad_threads_env(value: &str, fallback: usize) {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        eprintln!(
            "warning: NULPA_THREADS={value:?} is not a positive integer; \
             falling back to available parallelism ({fallback})"
        );
    });
}

impl LpaConfig {
    /// Check parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_iterations == 0 {
            return Err("max_iterations must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.tolerance) {
            return Err(format!("tolerance {} outside [0, 1]", self.tolerance));
        }
        match self.swap_mode {
            SwapMode::CrossCheck { every } | SwapMode::PickLess { every } if every == 0 => {
                return Err("swap-mitigation period must be positive".into());
            }
            SwapMode::Hybrid { cc_every, pl_every } if cc_every == 0 || pl_every == 0 => {
                return Err("swap-mitigation periods must be positive".into());
            }
            _ => {}
        }
        if self.frontier && !self.pruning {
            return Err("frontier mode requires pruning (the worklist is the pruning rule)".into());
        }
        if let Some(b) = self.buckets {
            if b.low_max == 0 {
                return Err("bucket threshold low_max must be positive".into());
            }
            if b.low_max >= b.mid_max {
                return Err(format!(
                    "bucket thresholds must satisfy low_max < mid_max (got {} >= {})",
                    b.low_max, b.mid_max
                ));
            }
        }
        self.device.validate()
    }

    /// Builder-style setter for the swap mode.
    pub fn with_swap_mode(mut self, m: SwapMode) -> Self {
        self.swap_mode = m;
        self
    }

    /// Builder-style setter for the probe strategy.
    pub fn with_probe(mut self, p: ProbeStrategy) -> Self {
        self.probe = p;
        self
    }

    /// Builder-style setter for the switch degree.
    pub fn with_switch_degree(mut self, d: u32) -> Self {
        self.switch_degree = d;
        self
    }

    /// Builder-style setter for the value type.
    pub fn with_value_type(mut self, v: ValueType) -> Self {
        self.value_type = v;
        self
    }

    /// Builder-style setter for vertex pruning.
    pub fn with_pruning(mut self, p: bool) -> Self {
        self.pruning = p;
        self
    }

    /// Builder-style setter for frontier (worklist) execution.
    pub fn with_frontier(mut self, f: bool) -> Self {
        self.frontier = f;
        self
    }

    /// Builder-style setter for shared-memory tables.
    pub fn with_shared_tables(mut self, s: bool) -> Self {
        self.shared_tables = s;
        self
    }

    /// Builder-style setter for the iteration cap.
    pub fn with_max_iterations(mut self, it: u32) -> Self {
        self.max_iterations = it;
        self
    }

    /// Builder-style setter for the tolerance.
    pub fn with_tolerance(mut self, t: f64) -> Self {
        self.tolerance = t;
        self
    }

    /// Builder-style setter for the simulated device.
    pub fn with_device(mut self, d: DeviceConfig) -> Self {
        self.device = d;
        self
    }

    /// Builder-style setter for the host-thread count (`0` = auto; see
    /// [`resolve_threads`]).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.threads = t;
        self
    }

    /// Builder-style setter for the native fast path's degree buckets
    /// (`None` = legacy per-vertex hashtable path).
    pub fn with_buckets(mut self, b: Option<BucketThresholds>) -> Self {
        self.buckets = b;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LpaConfig::default();
        assert_eq!(c.max_iterations, 20);
        assert_eq!(c.tolerance, 0.05);
        assert_eq!(c.swap_mode, SwapMode::PickLess { every: 4 });
        assert_eq!(c.switch_degree, 32);
        assert_eq!(c.probe, ProbeStrategy::QuadraticDouble);
        assert_eq!(c.value_type, ValueType::F32);
        assert!(c.pruning);
        assert!(!c.frontier);
        assert_eq!(c.buckets, Some(BucketThresholds::default()));
        assert!(c.validate().is_ok());
    }

    #[test]
    fn bucket_threshold_defaults_and_validation() {
        let b = BucketThresholds::default();
        assert_eq!(b.low_max, 32);
        assert_eq!(b.mid_max, 512);
        let base = LpaConfig::default();
        assert!(base.with_buckets(None).validate().is_ok());
        assert!(base
            .with_buckets(Some(BucketThresholds {
                low_max: 0,
                mid_max: 8
            }))
            .validate()
            .is_err());
        assert!(base
            .with_buckets(Some(BucketThresholds {
                low_max: 64,
                mid_max: 64
            }))
            .validate()
            .is_err());
        assert!(base
            .with_buckets(Some(BucketThresholds {
                low_max: 4,
                mid_max: 1024
            }))
            .validate()
            .is_ok());
    }

    #[test]
    fn frontier_requires_pruning() {
        let c = LpaConfig::default().with_frontier(true);
        assert!(c.validate().is_ok());
        assert!(c.with_pruning(false).validate().is_err());
    }

    /// Serializes the tests that mutate `NULPA_THREADS` — the test
    /// harness runs tests on parallel threads and the env is process
    /// global.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_threads_env<R>(value: Option<&str>, f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let saved = std::env::var("NULPA_THREADS").ok();
        match value {
            Some(v) => std::env::set_var("NULPA_THREADS", v),
            None => std::env::remove_var("NULPA_THREADS"),
        }
        let out = f();
        match saved {
            Some(v) => std::env::set_var("NULPA_THREADS", v),
            None => std::env::remove_var("NULPA_THREADS"),
        }
        out
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        with_threads_env(Some("7"), || {
            assert_eq!(resolve_threads(3), 3);
            assert!(resolve_threads(0) >= 1);
        });
    }

    #[test]
    fn resolve_threads_env_positive_integer() {
        with_threads_env(Some("6"), || assert_eq!(resolve_threads(0), 6));
        // surrounding whitespace is tolerated
        with_threads_env(Some("  5\n"), || assert_eq!(resolve_threads(0), 5));
    }

    #[test]
    fn resolve_threads_unparsable_env_falls_back() {
        let auto = with_threads_env(None, || resolve_threads(0));
        with_threads_env(Some("abc"), || assert_eq!(resolve_threads(0), auto));
    }

    #[test]
    fn resolve_threads_zero_env_falls_back() {
        let auto = with_threads_env(None, || resolve_threads(0));
        with_threads_env(Some("0"), || assert_eq!(resolve_threads(0), auto));
    }

    #[test]
    fn resolve_threads_whitespace_env_falls_back() {
        let auto = with_threads_env(None, || resolve_threads(0));
        with_threads_env(Some("   "), || assert_eq!(resolve_threads(0), auto));
        with_threads_env(Some(""), || assert_eq!(resolve_threads(0), auto));
    }

    #[test]
    fn with_threads_builder() {
        let c = LpaConfig::default();
        assert_eq!(c.threads, 0);
        assert_eq!(c.with_threads(4).threads, 4);
        assert!(c.with_threads(4).validate().is_ok());
    }

    #[test]
    fn pick_less_schedule() {
        let m = SwapMode::PickLess { every: 4 };
        assert!(m.pick_less_on(0));
        assert!(!m.pick_less_on(1));
        assert!(!m.pick_less_on(3));
        assert!(m.pick_less_on(4));
        assert!(m.pick_less_on(8));
        assert!(!m.cross_check_on(0));
    }

    #[test]
    fn cross_check_schedule() {
        let m = SwapMode::CrossCheck { every: 2 };
        assert!(m.cross_check_on(0));
        assert!(!m.cross_check_on(1));
        assert!(m.cross_check_on(2));
        assert!(!m.pick_less_on(0));
    }

    #[test]
    fn hybrid_schedules_both() {
        let m = SwapMode::Hybrid {
            cc_every: 2,
            pl_every: 3,
        };
        assert!(m.cross_check_on(2));
        assert!(!m.cross_check_on(3));
        assert!(m.pick_less_on(3));
        assert!(!m.pick_less_on(2));
    }

    #[test]
    fn off_never_fires() {
        for i in 0..10 {
            assert!(!SwapMode::Off.pick_less_on(i));
            assert!(!SwapMode::Off.cross_check_on(i));
        }
    }

    #[test]
    fn labels() {
        assert_eq!(SwapMode::PickLess { every: 4 }.label(), "PL4");
        assert_eq!(SwapMode::CrossCheck { every: 1 }.label(), "CC1");
        assert_eq!(
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 3
            }
            .label(),
            "H2,3"
        );
        assert_eq!(SwapMode::Off.label(), "Off");
    }

    #[test]
    fn validation_rejects_bad_params() {
        assert!(LpaConfig::default()
            .with_max_iterations(0)
            .validate()
            .is_err());
        assert!(LpaConfig::default().with_tolerance(1.5).validate().is_err());
        assert!(LpaConfig::default()
            .with_swap_mode(SwapMode::PickLess { every: 0 })
            .validate()
            .is_err());
        assert!(LpaConfig::default()
            .with_swap_mode(SwapMode::Hybrid {
                cc_every: 0,
                pl_every: 1
            })
            .validate()
            .is_err());
    }
}
