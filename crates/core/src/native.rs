//! Native (CPU, Rayon) port of ν-LPA — the wall-clock backend.
//!
//! The paper's headline speedups (Fig. 6) are wall-clock numbers on real
//! hardware; the SIMT simulator measures *modelled* cycles, not time. This
//! backend runs the same algorithm — per-vertex open-addressing
//! hashtables in two `2|E|` buffers, quadratic-double probing, Pick-Less
//! every 4 iterations, vertex pruning, strict first-max label picks —
//! natively with Rayon, and is what `fig_compare` times against the
//! baselines.
//!
//! Differences from the GPU backend, all documented in DESIGN.md:
//! * Fully asynchronous label visibility (relaxed atomic loads/stores; no
//!   wave buffering). CPUs have no lockstep, so swap cycles are *less*
//!   likely, but the paper's mitigation schedule is kept for parity.
//! * ΔN is computed with a parallel reduction (the paper's stated
//!   improvement over NetworKit's shared atomic counter).
//! * One task per vertex regardless of degree — there is no warp to keep
//!   busy — but the unshared table path matches the thread-per-vertex
//!   kernel exactly.

use crate::config::{LpaConfig, ValueType};
use crate::disjoint::DisjointBuffer;
use crate::fastpath::{FastState, FrontierCtx};
use crate::hostprof::HostProfData;
use crate::observe::{IterObserver, NullObserver};
use crate::result::LpaResult;
use nulpa_graph::{Csr, VertexId};
use nulpa_hashtab::{HashValue, TableMut, TableSlot, EMPTY_KEY};
use nulpa_simt::{track, KernelStats, NullSink, TraceSink};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::time::Instant;

/// Run the native parallel ν-LPA port.
pub fn lpa_native(g: &Csr, config: &LpaConfig) -> LpaResult {
    lpa_native_traced(g, config, &mut NullSink)
}

/// [`lpa_native`] with per-iteration tracing. There is no simulated clock
/// here — spans are timestamped in elapsed wall-clock **microseconds**
/// since the call started. The caller owns `sink.finish()`.
pub fn lpa_native_traced(g: &Csr, config: &LpaConfig, sink: &mut dyn TraceSink) -> LpaResult {
    lpa_native_observed(g, config, sink, &mut NullObserver)
}

/// [`lpa_native_traced`] plus an [`IterObserver`] called after every
/// committed iteration — the convergence-telemetry attachment point.
pub fn lpa_native_observed(
    g: &Csr,
    config: &LpaConfig,
    sink: &mut dyn TraceSink,
    obs: &mut dyn IterObserver,
) -> LpaResult {
    config.validate().expect("invalid LPA config");
    let init = (0..g.num_vertices() as VertexId).collect();
    match config.value_type {
        ValueType::F32 => lpa_native_typed::<f32>(g, config, init, None, sink, obs, None),
        ValueType::F64 => lpa_native_typed::<f64>(g, config, init, None, sink, obs, None),
    }
}

/// [`lpa_native`] with the host-parallel execution profiler attached:
/// per-thread compute/commit span timelines, per-bucket work and
/// cursor-contention counters, and per-iteration repair statistics from
/// the degree-bucketed fast path (see [`crate::hostprof`]).
///
/// The profiled run is bit-identical to [`lpa_native`] — the recorder
/// only observes which thread did what, never what was computed. Returns
/// `None` profile data when the fast path is disabled
/// (`config.buckets == None`) or the `hostprof` cargo feature is
/// compiled out.
pub fn lpa_native_hostprof(g: &Csr, config: &LpaConfig) -> (LpaResult, Option<HostProfData>) {
    config.validate().expect("invalid LPA config");
    let init = (0..g.num_vertices() as VertexId).collect();
    let mut prof = None;
    let result = match config.value_type {
        ValueType::F32 => lpa_native_typed::<f32>(
            g,
            config,
            init,
            None,
            &mut NullSink,
            &mut NullObserver,
            Some(&mut prof),
        ),
        ValueType::F64 => lpa_native_typed::<f64>(
            g,
            config,
            init,
            None,
            &mut NullSink,
            &mut NullObserver,
            Some(&mut prof),
        ),
    };
    (result, prof)
}

/// Run the native port from existing state: `init_labels` seeds the
/// community memberships and only `unprocessed` starts in the work set
/// (everything else is considered converged until a neighbour changes).
/// This is the engine behind [`crate::dynamic::lpa_dynamic`].
pub fn lpa_native_from_state(
    g: &Csr,
    config: &LpaConfig,
    init_labels: Vec<VertexId>,
    unprocessed: &[VertexId],
) -> LpaResult {
    config.validate().expect("invalid LPA config");
    assert_eq!(init_labels.len(), g.num_vertices(), "label length mismatch");
    match config.value_type {
        ValueType::F32 => lpa_native_typed::<f32>(
            g,
            config,
            init_labels,
            Some(unprocessed),
            &mut NullSink,
            &mut NullObserver,
            None,
        ),
        ValueType::F64 => lpa_native_typed::<f64>(
            g,
            config,
            init_labels,
            Some(unprocessed),
            &mut NullSink,
            &mut NullObserver,
            None,
        ),
    }
}

fn lpa_native_typed<V: HashValue>(
    g: &Csr,
    config: &LpaConfig,
    init_labels: Vec<VertexId>,
    unprocessed: Option<&[VertexId]>,
    sink: &mut dyn TraceSink,
    obs: &mut dyn IterObserver,
    hostprof: Option<&mut Option<HostProfData>>,
) -> LpaResult {
    let n = g.num_vertices();
    let labels: Vec<AtomicU32> = init_labels.into_iter().map(AtomicU32::new).collect();
    let processed: Vec<AtomicU8> = match unprocessed {
        // static run: every vertex starts unprocessed
        None => (0..n).map(|_| AtomicU8::new(0)).collect(),
        // warm start: only the given frontier is unprocessed
        Some(seed) => {
            let flags: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(1)).collect();
            for &v in seed {
                flags[v as usize].store(0, Ordering::Relaxed);
            }
            flags
        }
    };
    // Degree-bucketed fast path (default): dense per-thread counters and
    // cache-blocked commits replace the per-vertex hashtables, so the
    // 2|E| table buffers are only allocated for the legacy path.
    let mut fast = config.buckets.map(|b| {
        FastState::<V>::new(
            n,
            crate::config::resolve_threads(config.threads),
            b,
            nulpa_graph::blocks::DEFAULT_BLOCK_EDGES,
            config.probe,
            hostprof.is_some(),
        )
    });
    let buf_len = if fast.is_some() {
        0
    } else {
        TableSlot::buffer_len(g.num_edges())
    };
    let buf_k = DisjointBuffer::new(vec![EMPTY_KEY; buf_len]);
    let buf_v = DisjointBuffer::new(vec![V::zero(); buf_len]);

    // Frontier (worklist) state. Activation is deduplicated with atomic
    // `queued` flags (the thread that flips 0 → 1 owns the push), each
    // task returns its activations as a local list, and the lists are
    // merged on the host in candidate order — the merged *set* is the
    // race-free union, and sorting ascending at the next iteration start
    // erases any thread-schedule dependence in the order. That is what
    // keeps `--threads N` frontier runs bit-identical (see DESIGN.md).
    let frontier = config.frontier;
    let queued: Vec<AtomicU8> = (0..if frontier { n } else { 0 })
        .map(|_| AtomicU8::new(0))
        .collect();
    let mut worklist: Vec<VertexId> = Vec::new();
    if frontier {
        match unprocessed {
            None => {
                for v in 0..n as VertexId {
                    if g.degree(v) > 0 {
                        queued[v as usize].store(1, Ordering::Relaxed);
                        worklist.push(v);
                    }
                }
            }
            Some(seed) => {
                for &v in seed {
                    if g.degree(v) > 0 && queued[v as usize].swap(1, Ordering::Relaxed) == 0 {
                        worklist.push(v);
                    }
                }
            }
        }
    }
    let mut movers: Vec<VertexId> = Vec::new();

    let mut changed_per_iter = Vec::new();
    let mut scanned_per_iter = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    let t0 = Instant::now();
    let now_us = |t0: &Instant| t0.elapsed().as_micros() as u64;

    for iter in 0..config.max_iterations {
        // Shuffled sweep order: emulates the interleaved schedule a real
        // thread pool produces and avoids the ascending-cascade pathology
        // (see `seq::shuffle_candidates`).
        let (mut candidates, scanned) = if frontier {
            worklist.sort_unstable();
            // In-queue invariant: the CAS on `queued` means a vertex can
            // be enqueued at most once per iteration, and every entry
            // still holds its flag at drain time.
            debug_assert!(
                worklist.windows(2).all(|w| w[0] != w[1]),
                "duplicate enqueue in native frontier worklist"
            );
            debug_assert!(
                worklist
                    .iter()
                    .all(|&v| queued[v as usize].load(Ordering::Relaxed) == 1),
                "worklist entry without its queued flag set"
            );
            let scanned = worklist.len();
            for &v in &worklist {
                queued[v as usize].store(0, Ordering::Relaxed);
            }
            let cands: Vec<VertexId> = worklist
                .drain(..)
                .filter(|&v| processed[v as usize].load(Ordering::Relaxed) == 0)
                .collect();
            (cands, scanned)
        } else {
            (
                (0..n as VertexId)
                    .into_par_iter()
                    .filter(|&v| {
                        (!config.pruning || processed[v as usize].load(Ordering::Relaxed) == 0)
                            && g.degree(v) > 0
                    })
                    .collect(),
                n,
            )
        };
        if frontier && candidates.is_empty() {
            // Empty frontier: nothing can change, so the run is converged
            // without spending (or recording) a final sweep.
            converged = true;
            break;
        }
        iterations = iter + 1;
        let pick_less = config.swap_mode.pick_less_on(iter);
        let prev = config.swap_mode.cross_check_on(iter).then(|| {
            labels
                .iter()
                .map(|l| l.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        });
        if sink.is_enabled() {
            sink.span_begin(
                track::HOST,
                "iteration",
                now_us(&t0),
                &[("iter", iter.into())],
            );
        }
        crate::seq::shuffle_candidates(&mut candidates, iter);

        // ΔN via parallel reduce — no shared counter contention.
        let mut changed: usize;
        if let Some(fp) = fast.as_mut() {
            changed = if frontier {
                fp.run_iteration(
                    g,
                    iter,
                    &candidates,
                    pick_less,
                    &labels,
                    &processed,
                    Some(FrontierCtx {
                        queued: &queued,
                        worklist: &mut worklist,
                        movers: &mut movers,
                    }),
                )
            } else {
                fp.run_iteration(g, iter, &candidates, pick_less, &labels, &processed, None)
            };
        } else if frontier {
            let outcomes: Vec<(bool, Vec<VertexId>)> = candidates
                .par_iter()
                .map(|&v| {
                    let mut acts = Vec::new();
                    let moved = process_vertex::<V>(
                        g,
                        config,
                        v,
                        pick_less,
                        &labels,
                        &processed,
                        &buf_k,
                        &buf_v,
                        Some((queued.as_slice(), &mut acts)),
                    );
                    (moved, acts)
                })
                .collect();
            changed = 0;
            for (i, (moved, acts)) in outcomes.into_iter().enumerate() {
                if moved {
                    changed += 1;
                    movers.push(candidates[i]);
                }
                worklist.extend(acts);
            }
        } else {
            changed = candidates
                .par_iter()
                .map(|&v| {
                    process_vertex::<V>(
                        g, config, v, pick_less, &labels, &processed, &buf_k, &buf_v, None,
                    ) as usize
                })
                .sum();
        }

        // Cross-Check pass (paper §4.1): sequential over changed vertices,
        // so a revert is visible to the partner's check — this is the
        // symmetry breaker. Only movers can satisfy `c != prev[v]` and a
        // revert never flips a non-mover's condition, so in frontier mode
        // the ascending scan over the movers is exactly the dense 0..n
        // scan.
        if let Some(prev) = prev {
            let mut reverted = 0usize;
            if frontier {
                movers.sort_unstable();
                for &m in &movers {
                    let v = m as usize;
                    let c = labels[v].load(Ordering::Relaxed);
                    if c != prev[v] && labels[c as usize].load(Ordering::Relaxed) != c {
                        labels[v].store(prev[v], Ordering::Relaxed);
                        processed[v].store(0, Ordering::Relaxed);
                        if queued[v].swap(1, Ordering::Relaxed) == 0 {
                            worklist.push(m);
                        }
                        reverted += 1;
                    }
                }
            } else {
                for v in 0..n {
                    let c = labels[v].load(Ordering::Relaxed);
                    if c != prev[v] && labels[c as usize].load(Ordering::Relaxed) != c {
                        labels[v].store(prev[v], Ordering::Relaxed);
                        processed[v].store(0, Ordering::Relaxed);
                        reverted += 1;
                    }
                }
            }
            changed = changed.saturating_sub(reverted);
        }
        movers.clear();

        changed_per_iter.push(changed);
        scanned_per_iter.push(scanned);
        if obs.is_enabled() {
            let snapshot: Vec<VertexId> =
                labels.iter().map(|l| l.load(Ordering::Relaxed)).collect();
            obs.on_iteration(iter, changed, candidates.len(), scanned, &snapshot);
        }
        if sink.is_enabled() {
            let ts = now_us(&t0);
            sink.counter("dN", ts, changed as f64);
            sink.counter("active_vertices", ts, candidates.len() as f64);
            if frontier {
                sink.counter("frontier_size", ts, scanned as f64);
            }
            sink.span_end(
                track::HOST,
                "iteration",
                ts,
                &[
                    ("iter", iter.into()),
                    ("active", candidates.len().into()),
                    ("dN", changed.into()),
                    ("pick_less", pick_less.into()),
                ],
            );
        }
        // ΔN = 0 converges even on Pick-Less-gated iterations (PL1 would
        // otherwise never pass the gated test); see the same check in
        // `gpu.rs`.
        if changed == 0 || (!pick_less && (changed as f64 / n.max(1) as f64) < config.tolerance) {
            converged = true;
            break;
        }
    }

    if let Some(out) = hostprof {
        *out = fast.as_mut().and_then(FastState::take_profile);
    }
    LpaResult {
        labels: labels.into_iter().map(|l| l.into_inner()).collect(),
        iterations,
        converged,
        changed_per_iter,
        scanned_per_iter,
        stats: KernelStats::new(),
        staged_collisions: 0,
    }
}

/// One vertex's label update; returns `true` if the label changed.
///
/// In frontier mode, `activate` carries the shared `queued` flags and the
/// task-local activation list: a moving vertex CAS-claims each cleared
/// neighbour (0 → 1) and records the ones it won, so every re-activated
/// vertex lands in exactly one task's list.
#[allow(clippy::too_many_arguments)]
fn process_vertex<V: HashValue>(
    g: &Csr,
    config: &LpaConfig,
    v: VertexId,
    pick_less: bool,
    labels: &[AtomicU32],
    processed: &[AtomicU8],
    buf_k: &DisjointBuffer<u32>,
    buf_v: &DisjointBuffer<V>,
    activate: Option<(&[AtomicU8], &mut Vec<VertexId>)>,
) -> bool {
    processed[v as usize].store(1, Ordering::Relaxed);
    let degree = g.degree(v);
    let slot = TableSlot::for_vertex(g.offset(v), degree);
    if slot.capacity == 0 {
        return false;
    }
    // SAFETY: regions derive from CSR offsets (pairwise disjoint across
    // vertices) and each vertex appears at most once in `candidates`.
    let keys = unsafe { buf_k.slice_mut(slot.start, slot.capacity) };
    let values = unsafe { buf_v.slice_mut(slot.start, slot.capacity) };
    let mut table = TableMut::<V>::new(keys, values, slot.p2);
    table.clear();

    for (j, w) in g.neighbors(v) {
        if j == v {
            continue;
        }
        let c_j = labels[j as usize].load(Ordering::Relaxed);
        let outcome = table.accumulate(config.probe, c_j, V::from_weight(w));
        debug_assert!(outcome.is_done(), "table sized by layout cannot fill");
    }

    let Some((c_star, _)) = table.max_key() else {
        return false;
    };
    let cur = labels[v as usize].load(Ordering::Relaxed);
    if c_star != cur && (!pick_less || c_star < cur) {
        labels[v as usize].store(c_star, Ordering::Relaxed);
        if let Some((queued, acts)) = activate {
            for &j in g.neighbor_ids(v) {
                processed[j as usize].store(0, Ordering::Relaxed);
                if queued[j as usize].swap(1, Ordering::Relaxed) == 0 {
                    acts.push(j);
                }
            }
        } else {
            for &j in g.neighbor_ids(v) {
                processed[j as usize].store(0, Ordering::Relaxed);
            }
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LpaConfig, SwapMode};
    use crate::gpu::lpa_gpu;
    use crate::seq::lpa_seq;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition,
        two_cliques_light_bridge,
    };
    use nulpa_graph::GraphBuilder;
    use nulpa_metrics::{check_labels, community_count, modularity, nmi, same_partition};
    use nulpa_simt::DeviceConfig;

    fn cfg() -> LpaConfig {
        LpaConfig::default()
    }

    #[test]
    fn two_cliques_recovered() {
        let g = two_cliques_light_bridge(6);
        let r = lpa_native(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert!(same_partition(&r.labels, &caveman_ground_truth(2, 6)));
        assert!(r.converged);
    }

    #[test]
    fn pl1_converges_on_stable_labeling() {
        // The `!pick_less` gate alone would keep PL1 running to the cap;
        // ΔN = 0 must end the run (same fix as gpu.rs/seq.rs).
        let g = two_cliques_light_bridge(6);
        let pl1 = cfg().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_native(&g, &pl1);
        assert!(r.converged);
        assert!(r.iterations < pl1.max_iterations);
        assert_eq!(*r.changed_per_iter.last().unwrap(), 0);
    }

    #[test]
    fn caveman_recovered() {
        let g = caveman_weighted(6, 8, 0.5);
        let r = lpa_native(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(6, 8)));
    }

    #[test]
    fn complete_graph_single_community() {
        let g = complete(16);
        let r = lpa_native(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn matches_gpu_and_seq_quality_on_planted_graph() {
        // seed 5 recovers the planted partition exactly under all backends
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let q_native = modularity(&pp.graph, &lpa_native(&pp.graph, &cfg()).labels);
        let q_seq = modularity(&pp.graph, &lpa_seq(&pp.graph, &cfg()).labels);
        let q_gpu = modularity(
            &pp.graph,
            &lpa_gpu(&pp.graph, &cfg().with_device(DeviceConfig::tiny())).labels,
        );
        assert!(q_native > 0.9 * q_seq, "native {q_native} vs seq {q_seq}");
        assert!(q_native > 0.9 * q_gpu, "native {q_native} vs gpu {q_gpu}");
        let r = lpa_native(&pp.graph, &cfg());
        assert!(nmi(&r.labels, &pp.ground_truth) > 0.9);
    }

    #[test]
    fn labels_always_valid() {
        let g = erdos_renyi(300, 900, 7);
        let r = lpa_native(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert_eq!(r.changed_per_iter.len(), r.iterations as usize);
    }

    #[test]
    fn empty_and_isolated() {
        let g = nulpa_graph::Csr::empty(4);
        let r = lpa_native(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2, 3]);

        let g = GraphBuilder::new(3).add_undirected_edge(0, 1, 1.0).build();
        let r = lpa_native(&g, &cfg());
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn all_swap_modes_work() {
        let g = caveman_weighted(4, 6, 0.5);
        let truth = caveman_ground_truth(4, 6);
        for mode in [
            SwapMode::Off,
            SwapMode::PickLess { every: 4 },
            SwapMode::CrossCheck { every: 2 },
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 4,
            },
        ] {
            let r = lpa_native(&g, &cfg().with_swap_mode(mode));
            assert!(
                same_partition(&r.labels, &truth),
                "{mode:?} failed to recover cliques"
            );
        }
    }

    #[test]
    fn f64_values_give_same_quality() {
        let pp = planted_partition(&[50, 50], 8.0, 1.0, 31);
        let q32 = modularity(&pp.graph, &lpa_native(&pp.graph, &cfg()).labels);
        let q64 = modularity(
            &pp.graph,
            &lpa_native(&pp.graph, &cfg().with_value_type(ValueType::F64)).labels,
        );
        assert!((q32 - q64).abs() < 0.05, "{q32} vs {q64}");
    }

    #[test]
    fn self_loops_ignored() {
        let g = GraphBuilder::new(2)
            .keep_self_loops(true)
            .add_edge(1, 1, 50.0)
            .add_undirected_edge(0, 1, 1.0)
            .build();
        let r = lpa_native(&g, &cfg());
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn pick_less_iterations_only_decrease_labels() {
        let g = caveman_weighted(3, 7, 0.5);
        let c = cfg().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_native(&g, &c);
        for (v, &l) in r.labels.iter().enumerate() {
            assert!((l as usize) <= v);
        }
    }

    #[test]
    fn respects_iteration_cap() {
        let g = erdos_renyi(200, 800, 11);
        let r = lpa_native(&g, &cfg().with_max_iterations(3));
        assert!(r.iterations <= 3);
    }

    #[test]
    fn frontier_matches_dense_exactly_across_swap_modes() {
        // The worklist mirrors the pruning flags, so the full trajectory
        // — labels, ΔN series, iteration count — must be bit-identical.
        let g = erdos_renyi(200, 600, 13);
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 4 },
            SwapMode::PickLess { every: 1 },
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 3,
            },
        ] {
            let dense = lpa_native(&g, &cfg().with_swap_mode(mode));
            let front = lpa_native(&g, &cfg().with_swap_mode(mode).with_frontier(true));
            assert_eq!(dense.labels, front.labels, "{mode:?}");
            assert_eq!(dense.changed_per_iter, front.changed_per_iter, "{mode:?}");
            assert_eq!(dense.iterations, front.iterations, "{mode:?}");
        }
    }

    #[test]
    fn frontier_scans_fewer_vertices() {
        let g = caveman_weighted(8, 8, 0.5);
        let dense = lpa_native(&g, &cfg());
        let front = lpa_native(&g, &cfg().with_frontier(true));
        assert_eq!(dense.labels, front.labels);
        assert!(
            front.scanned_per_iter.iter().sum::<usize>()
                < dense.scanned_per_iter.iter().sum::<usize>()
        );
    }

    #[test]
    fn empty_frontier_warm_start_converges_without_a_sweep() {
        // Warm start with nothing to do: the frontier starts empty and the
        // run must report converged without recording a single iteration.
        let g = two_cliques_light_bridge(6);
        let settled = lpa_native(&g, &cfg());
        let r = lpa_native_from_state(&g, &cfg().with_frontier(true), settled.labels.clone(), &[]);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.changed_per_iter.is_empty());
        assert_eq!(r.labels, settled.labels);
    }

    #[test]
    fn frontier_bit_identical_across_thread_counts() {
        let g = erdos_renyi(250, 800, 17);
        let cfg = cfg().with_frontier(true);
        let base = lpa_native(&g, &cfg.with_threads(1));
        for threads in [2, 3, 4] {
            let r = lpa_native(&g, &cfg.with_threads(threads));
            assert_eq!(base.labels, r.labels, "threads={threads}");
            assert_eq!(
                base.changed_per_iter, r.changed_per_iter,
                "threads={threads}"
            );
        }
    }
}
