//! ν-LPA on the SIMT simulator (paper Algorithm 1).
//!
//! This is the reproduction of the paper's CUDA implementation, run on the
//! execution-model simulator of [`nulpa_simt`]:
//!
//! * Unprocessed vertices are partitioned by degree into a
//!   **thread-per-vertex** kernel (degree < `switch_degree`) and a
//!   **block-per-vertex** kernel (paper §4.3).
//! * Per-vertex hashtables live in two global `2|E|` buffers, addressed by
//!   CSR offsets (paper §4.2, Fig. 2); the thread kernel uses the unshared
//!   (atomic-free) table path, the block kernel the shared path with
//!   `atomicCAS`/`atomicAdd` charging.
//! * Label writes go through a [`SyncDeferredStore`]: within a wave
//!   everyone sees wave-start labels (lockstep visibility — the very
//!   mechanism that causes community swaps); across waves updates are
//!   visible (asynchronous LPA).
//! * Swap mitigation (paper §4.1): the Pick-Less gate restricts moves to
//!   strictly smaller labels every ρ iterations; Cross-Check validates and
//!   reverts "bad" moves (`C[c*] ≠ c*`) in a follow-up pass.
//!
//! Everything a lane does is metered (global reads/writes, atomics, probe
//! steps), so the returned [`KernelStats`] carries the simulated cycles,
//! divergence, and probe counts that the Fig. 1/3/4/5/7 harnesses report.
//!
//! # Host parallelism
//!
//! Lanes of a wave are independent by construction (reads see wave-start
//! state, writes are staged), so the kernels run through the scheduler's
//! *sharded* launches: each lane stages its writes into a per-host-thread
//! `LaneShard`, and the shards are merged in deterministic lane order at
//! the wave boundary. Labels, `KernelStats`, collision counts, and trace
//! output are bit-for-bit identical at every thread count; see
//! [`crate::config::resolve_threads`] for how `LpaConfig::threads` and
//! `NULPA_THREADS` pick the host-thread count. The shared state is
//! therefore lock-free by structure: committed labels/flags are atomics
//! read from `&self`, per-vertex hashtable regions are disjoint
//! [`DisjointBuffer`] slices tiled by the CSR layout, and the ΔN counter
//! is a commutative `fetch_add`.

use crate::addr::AddrMap;
use crate::config::{resolve_threads, LpaConfig, ValueType};
use crate::disjoint::DisjointBuffer;
use crate::observe::{IterObserver, NullObserver};
use crate::partition::partition_candidates;
use crate::result::LpaResult;
use nulpa_graph::{Csr, VertexId};
use nulpa_hashtab::{HashValue, TableMut, TableSlot, EMPTY_KEY};
use nulpa_simt::{
    track, KernelStats, LaneMeter, NullSink, StagedWrites, SyncDeferredStore, TraceSink,
    WaveScheduler, Width,
};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Run ν-LPA on the simulated device configured in `config`.
pub fn lpa_gpu(g: &Csr, config: &LpaConfig) -> LpaResult {
    lpa_gpu_traced(g, config, &mut NullSink)
}

/// [`lpa_gpu`] with structured tracing: per-iteration spans (active-vertex
/// count, thread/block partition sizes, ΔN, Pick-Less gating), per-kernel
/// and per-wave spans, and probe/warp-cost histograms, all keyed by
/// simulated cycles. The sink never influences the computation — the
/// neutrality test asserts identical labels and stats vs [`NullSink`].
/// The caller owns `sink.finish()`.
pub fn lpa_gpu_traced(g: &Csr, config: &LpaConfig, sink: &mut dyn TraceSink) -> LpaResult {
    lpa_gpu_observed(g, config, sink, &mut NullObserver)
}

/// [`lpa_gpu_traced`] plus an [`IterObserver`] called after every
/// committed iteration (post Cross-Check) — the convergence-telemetry
/// attachment point. The observer runs on the host between simulated
/// launches and never influences the simulation: labels, stats, and
/// trace output are bit-identical with and without it.
pub fn lpa_gpu_observed(
    g: &Csr,
    config: &LpaConfig,
    sink: &mut dyn TraceSink,
    obs: &mut dyn IterObserver,
) -> LpaResult {
    config.validate().expect("invalid LPA config");
    match config.value_type {
        ValueType::F32 => lpa_gpu_typed::<f32>(g, config, sink, obs),
        ValueType::F64 => lpa_gpu_typed::<f64>(g, config, sink, obs),
    }
}

/// Processed-flag store with lockstep visibility.
///
/// In Algorithm 1 a vertex marks *itself* processed at the start of its
/// body and marks its *neighbours* unprocessed after a move. Under
/// lockstep, all self-marks of a wave happen before the wave's
/// neighbour-unmarks in program order, so when two swap partners both
/// move, both end up unprocessed — which is exactly why the swap cycle
/// persists on hardware. Staging the writes (in [`LaneShard`]s) and
/// applying self-marks before unmarks at the wave boundary reproduces
/// that outcome deterministically (a serial interleave of immediate
/// writes would accidentally break the symmetry and hide the paper's
/// pathology).
struct FlagStore {
    committed: Vec<AtomicBool>,
}

impl FlagStore {
    fn new(n: usize) -> Self {
        FlagStore {
            committed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        self.committed[i].load(Ordering::Relaxed)
    }

    /// Immediate write (separate-kernel semantics, e.g. Cross-Check).
    #[inline]
    fn write_through(&self, i: usize, v: bool) {
        self.committed[i].store(v, Ordering::Relaxed);
    }

    /// Apply every shard's staged flags: ALL sets (in shard order) before
    /// ALL clears, across the whole wave — the lockstep ordering described
    /// on the type.
    fn flush_shards(&self, shards: &mut [LaneShard]) {
        for s in shards.iter_mut() {
            for i in s.flag_set.drain(..) {
                self.committed[i].store(true, Ordering::Relaxed);
            }
        }
        for s in shards.iter_mut() {
            for i in s.flag_clear.drain(..) {
                self.committed[i].store(false, Ordering::Relaxed);
            }
        }
    }
}

/// Per-host-thread staging area for one chunk of lanes. The scheduler
/// hands every chunk its own shard and merges them in lane order at the
/// wave boundary, so staged-write order — and therefore last-stage-wins
/// and collision accounting — matches the serial execution exactly.
#[derive(Default)]
struct LaneShard {
    /// Staged label writes (flushed via
    /// [`SyncDeferredStore::flush_shards`]).
    labels: StagedWrites,
    /// Staged processed-flag sets (self-marks).
    flag_set: Vec<usize>,
    /// Staged processed-flag clears (neighbour unmarks).
    flag_clear: Vec<usize>,
    /// Frontier mode only: vertices whose best label differed from their
    /// current one but whose move the Pick-Less gate blocked. The host
    /// parks them — their label is *not* the argmax of their
    /// neighbourhood, so a future neighbour move must re-activate them
    /// even when it lands on their own community.
    blocked: Vec<VertexId>,
}

/// Simulation state shared by the kernel closures across host threads.
/// Committed label/flag cells are atomics read through `&self`; the
/// hashtable buffers hand out disjoint per-vertex regions; ΔN is a
/// commutative counter — so no lane ever takes a lock or a `RefCell`
/// borrow.
struct GpuState<V: HashValue> {
    labels: SyncDeferredStore,
    processed: FlagStore,
    buf_k: DisjointBuffer<u32>,
    buf_v: DisjointBuffer<V>,
    changed: AtomicUsize,
}

fn lpa_gpu_typed<V: HashValue>(
    g: &Csr,
    config: &LpaConfig,
    sink: &mut dyn TraceSink,
    obs: &mut dyn IterObserver,
) -> LpaResult {
    let n = g.num_vertices();
    let m = g.num_edges();
    let threads = resolve_threads(config.threads);
    let sched = WaveScheduler::new(config.device, config.cost).with_threads(threads);
    // Shared-memory tables (ablation): the thread kernel runs on an
    // occupancy-limited device — each thread reserves its worst-case table
    // (2 * switch_degree slots of key + value) in the SM's shared memory.
    let low_sched = if config.shared_tables {
        WaveScheduler::new(
            config.device.with_shared_mem_per_thread(
                2 * config.switch_degree as usize * (4 + std::mem::size_of::<V>()),
            ),
            config.cost,
        )
        .with_threads(threads)
    } else {
        sched
    };
    let addr = AddrMap::new(n, m);
    let buf_len = TableSlot::buffer_len(m);

    let state = GpuState::<V> {
        labels: SyncDeferredStore::new((0..n as VertexId).collect()),
        processed: FlagStore::new(n),
        buf_k: DisjointBuffer::new(vec![EMPTY_KEY; buf_len]),
        buf_v: DisjointBuffer::new(vec![V::zero(); buf_len]),
        changed: AtomicUsize::new(0),
    };

    let mut stats = KernelStats::new();
    let mut changed_per_iter = Vec::new();
    let mut scanned_per_iter = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    // Sort scratch for collision counting, reused across waves and
    // iterations (the wave_end closures borrow it one launch at a time).
    let mut scratch: Vec<usize> = Vec::new();

    // Frontier-mode host state. The worklist plays FLPA's queue: a move
    // re-activates only the neighbours that could actually change next
    // iteration (different community, or parked behind the Pick-Less
    // gate), instead of dense mode's unconditional flag-clear of every
    // neighbour. `queued` deduplicates pushes; `parked` records processed
    // vertices whose label is provably *not* their neighbourhood argmax
    // (a Pick-Less-blocked move), which must stay re-activatable even by
    // a same-community move. See DESIGN.md for the equivalence argument.
    let frontier = config.frontier;
    let mut worklist: Vec<VertexId> = Vec::new();
    let mut queued = vec![false; if frontier { n } else { 0 }];
    let mut parked = vec![false; if frontier { n } else { 0 }];
    // Shadow of the *dense* run's processed flags, advanced each
    // iteration by the exact dense flag automaton: all of a launch's
    // self-marks apply before its neighbour-clears, the thread launch
    // flushes before the block launch, Cross-Check reverts last. The
    // dense sweep's work set is "unprocessed" under these flags, so
    // intersecting every frontier push with the shadow keeps the
    // frontier a subset of the dense work set even across the
    // launch-ordering subtlety (a thread-mover's clear of a high-degree
    // neighbour is overwritten by that neighbour's own later block-launch
    // self-mark — a re-activation the dense run genuinely loses). The
    // automaton needs only the movers and reverts, which match the dense
    // run's by induction.
    let mut shadow: Vec<bool> = vec![false; if frontier { n } else { 0 }];
    // Per-iteration harvests from the staged shards, split by launch so
    // the shadow automaton can order their clears: vertices that staged a
    // label move, and vertices the Pick-Less gate blocked.
    let mut movers_low: Vec<VertexId> = Vec::new();
    let mut movers_high: Vec<VertexId> = Vec::new();
    let mut blocked_acc: Vec<VertexId> = Vec::new();
    // The *dense* candidate partition of the current iteration (from the
    // shadow flags) — the self-marks the automaton replays.
    let mut dense_low: Vec<VertexId> = Vec::new();
    let mut dense_high: Vec<VertexId> = Vec::new();
    if frontier {
        for v in 0..n as VertexId {
            if g.degree(v) > 0 {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
    }

    if sink.is_enabled() {
        sink.span_begin(
            track::HOST,
            "lpa_gpu",
            0,
            &[("n", n.into()), ("m", m.into())],
        );
    }

    for iter in 0..config.max_iterations {
        // Candidate set. Dense: unprocessed, non-isolated vertices (vertex
        // pruning); with pruning disabled, all non-isolated vertices.
        // Frontier: last iteration's worklist, sorted ascending so the
        // lane order matches the dense ascending scan exactly.
        let (candidates, scanned) = if frontier {
            worklist.sort_unstable();
            for &v in &worklist {
                queued[v as usize] = false;
            }
            let wl = std::mem::take(&mut worklist);
            if wl.is_empty() {
                // Nothing can change any more: report convergence without
                // launching a final full sweep (the break runs before the
                // `iterations` bump, so an empty *initial* frontier
                // reports zero iterations).
                converged = true;
                break;
            }
            // The dense run's candidate partition this iteration, from the
            // shadow flags — consumed by the end-of-iteration automaton
            // replay (the self-marks, in launch order).
            dense_low.clear();
            dense_high.clear();
            for v in 0..n as VertexId {
                if !shadow[v as usize] && g.degree(v) > 0 {
                    if g.degree(v) < config.switch_degree as usize {
                        dense_low.push(v);
                    } else {
                        dense_high.push(v);
                    }
                }
            }
            let scanned = wl.len();
            (wl, scanned)
        } else {
            let dense: Vec<VertexId> = (0..n as VertexId)
                .filter(|&v| {
                    (!config.pruning || !state.processed.get(v as usize)) && g.degree(v) > 0
                })
                .collect();
            (dense, n)
        };
        iterations = iter + 1;
        let pick_less = config.swap_mode.pick_less_on(iter);
        let do_cc = config.swap_mode.cross_check_on(iter);
        let prev_labels = do_cc.then(|| state.labels.snapshot());
        let t_iter = stats.sim_cycles;
        if sink.is_enabled() {
            sink.span_begin(track::HOST, "iteration", t_iter, &[("iter", iter.into())]);
        }

        // --- frontier compaction kernel (frontier mode only) ----------
        // Models the device-side stream compaction that turns the raw
        // re-activation list into a dense launch list: one lane per entry
        // reads its processed flag, evaluates the keep predicate, and
        // emits through a warp-aggregated ballot/popcount push (one
        // atomic per warp, amortised to ALU cost). Every cycle charged
        // inside the scope lands in the dedicated `frontier_compact`
        // attribution component.
        if frontier {
            let st_compact = sched.launch_thread_per_item_sharded_traced(
                "kernel:compact",
                stats.sim_cycles,
                sink,
                &candidates,
                LaneShard::default,
                |v, lane, _shard: &mut LaneShard| {
                    let cost = &config.cost;
                    lane.compact_scope(true);
                    lane.global_read(cost, addr.processed + v as usize, Width::W32);
                    lane.alu(cost, 1); // keep-predicate
                    lane.alu(cost, 2); // ballot + popc + warp-aggregated emit
                    lane.compact_scope(false);
                },
                |_, _shards| {},
            );
            stats.add(&st_compact);
        }

        let part = partition_candidates(g, candidates.into_iter(), config.switch_degree);
        let (low_n, high_n) = (part.low.len(), part.high.len());
        state.changed.store(0, Ordering::Relaxed);

        // --- thread-per-vertex kernel (low-degree) --------------------
        let st_low = low_sched.launch_thread_per_item_sharded_traced(
            "kernel:thread",
            stats.sim_cycles,
            sink,
            &part.low,
            LaneShard::default,
            |v, lane, shard: &mut LaneShard| {
                process_vertex_thread(g, &state, v, pick_less, config, lane, shard, addr)
            },
            |_, shards| {
                if frontier {
                    harvest_frontier(shards, &mut movers_low, &mut blocked_acc);
                }
                state
                    .labels
                    .flush_shards(shards, |s| &mut s.labels, &mut scratch);
                state.processed.flush_shards(shards);
            },
        );
        stats.add(&st_low);

        // --- block-per-vertex kernel (high-degree) --------------------
        let st_high = sched.launch_block_per_item_sharded_traced(
            "kernel:block",
            stats.sim_cycles,
            sink,
            &part.high,
            LaneShard::default,
            |v, ctx, shard: &mut LaneShard| {
                process_vertex_block(g, &state, v, pick_less, config, ctx, shard, addr)
            },
            |_, shards| {
                if frontier {
                    harvest_frontier(shards, &mut movers_high, &mut blocked_acc);
                }
                state
                    .labels
                    .flush_shards(shards, |s| &mut s.labels, &mut scratch);
                state.processed.flush_shards(shards);
            },
        );
        stats.add(&st_high);

        // --- Cross-Check pass (separate kernel; immediate writes) -----
        // Stays on the serial launch path deliberately: its atomic
        // reverts are immediately visible and later lanes read labels a
        // previous lane may have reverted, so lane order is
        // semantics-bearing here (unlike the staged main kernels). The
        // pass touches only the few changed vertices — not worth
        // parallelising at the cost of the determinism argument.
        let cross_check = prev_labels.is_some();
        let mut reverted: Vec<VertexId> = Vec::new();
        if let Some(prev) = prev_labels {
            // Frontier mode already knows exactly which vertices changed
            // (the staged-move harvest); dense mode scans all of |V|.
            // Sorting makes the lists identical, so the Cross-Check
            // kernel's serial lane order — which is semantics-bearing —
            // matches between the two modes.
            let changed_vertices: Vec<VertexId> = if frontier {
                let mut m: Vec<VertexId> = movers_low
                    .iter()
                    .chain(movers_high.iter())
                    .copied()
                    .collect();
                m.sort_unstable();
                m
            } else {
                (0..n as VertexId)
                    .filter(|&v| state.labels.get(v as usize) != prev[v as usize])
                    .collect()
            };
            let t_cc = stats.sim_cycles;
            if sink.is_enabled() {
                sink.span_begin(
                    track::HOST,
                    "cross_check",
                    t_cc,
                    &[("changed_vertices", changed_vertices.len().into())],
                );
            }
            let st_cc = sched.launch_thread_per_item_traced(
                "kernel:cross_check",
                t_cc,
                sink,
                &changed_vertices,
                |v, lane| {
                    let cost = &config.cost;
                    let c = state.labels.get(v as usize);
                    lane.global_read(cost, addr.labels + v as usize, Width::W32);
                    lane.global_read(cost, addr.labels + c as usize, Width::W32);
                    // A change is good iff the leader vertex c is in its own
                    // community (paper §4.1); otherwise revert atomically.
                    if state.labels.get(c as usize) != c {
                        // atomicExch, as in the reference implementation:
                        // the revert takes effect immediately, not at the
                        // wave flush.
                        state.labels.atomic_exchange(v as usize, prev[v as usize]);
                        lane.atomic(cost, addr.labels + v as usize, Width::W32);
                        state.processed.write_through(v as usize, false);
                        lane.global_write(cost, addr.processed + v as usize, Width::W32);
                        // a reverted move no longer counts as a change
                        let _ =
                            state
                                .changed
                                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                                    Some(c.saturating_sub(1))
                                });
                    }
                },
                |_| {},
            );
            stats.add(&st_cc);
            if sink.is_enabled() {
                sink.span_end(track::HOST, "cross_check", stats.sim_cycles, &[]);
            }
            // Detect reverts while `prev` is in scope: a surviving mover
            // keeps its staged c* != prev[v], so equality means the
            // Cross-Check kernel wrote the old label back.
            if frontier {
                for &v in movers_low.iter().chain(movers_high.iter()) {
                    if state.labels.get(v as usize) == prev[v as usize] {
                        reverted.push(v);
                    }
                }
            }
        }

        // --- frontier update (host, post Cross-Check) -----------------
        // Builds next iteration's worklist from this iteration's
        // committed outcome. A surviving move re-activates only the
        // neighbours it could actually flip: those in a *different*
        // community (the move changed their argmax race) or parked ones
        // (their label already lost the race but Pick-Less blocked the
        // fix). A reverted move is net-zero for everyone who saw only
        // committed state, but dense mode still re-activates its whole
        // neighbourhood — mirror that conservatively so multi-wave
        // schedules (where a lane may have *seen* the transient label)
        // stay covered too. Every push is additionally gated on the
        // shadow flags: the dense run only reprocesses a vertex whose
        // flag survives the launch-ordered set/clear interleaving, so a
        // push the automaton says dense would lose must be dropped to
        // keep the frontier a subset of the dense work set.
        if frontier {
            for x in part.low.iter().chain(part.high.iter()) {
                parked[*x as usize] = false;
            }
            for x in blocked_acc.drain(..) {
                parked[x as usize] = true;
            }
            // Replay the dense flag automaton: a launch applies all its
            // self-marks before its movers' neighbour-clears, the thread
            // launch flushes before the block launch, and Cross-Check
            // reverts clear write-through last.
            for &x in &dense_low {
                shadow[x as usize] = true;
            }
            for &v in &movers_low {
                for &j in g.neighbor_ids(v) {
                    shadow[j as usize] = false;
                }
            }
            for &x in &dense_high {
                shadow[x as usize] = true;
            }
            for &v in &movers_high {
                for &j in g.neighbor_ids(v) {
                    shadow[j as usize] = false;
                }
            }
            for &v in &reverted {
                shadow[v as usize] = false;
            }
            reverted.sort_unstable();
            for &v in movers_low.iter().chain(movers_high.iter()) {
                let vu = v as usize;
                if reverted.binary_search(&v).is_ok() {
                    if !shadow[vu] && !queued[vu] {
                        queued[vu] = true;
                        worklist.push(v);
                    }
                    for &j in g.neighbor_ids(v) {
                        let ju = j as usize;
                        if !shadow[ju] && !queued[ju] {
                            queued[ju] = true;
                            worklist.push(j);
                        }
                    }
                } else {
                    let lv = state.labels.get(vu);
                    for &j in g.neighbor_ids(v) {
                        let ju = j as usize;
                        if !shadow[ju] && (state.labels.get(ju) != lv || parked[ju]) && !queued[ju]
                        {
                            queued[ju] = true;
                            worklist.push(j);
                        }
                    }
                }
            }
            movers_low.clear();
            movers_high.clear();
        }

        let changed = state.changed.load(Ordering::Relaxed);
        changed_per_iter.push(changed);
        scanned_per_iter.push(scanned);
        if obs.is_enabled() {
            let snapshot = state.labels.snapshot();
            obs.on_iteration(iter, changed, low_n + high_n, scanned, &snapshot);
        }
        if sink.is_enabled() {
            let active = low_n + high_n;
            sink.counter("dN", stats.sim_cycles, changed as f64);
            sink.counter("active_vertices", stats.sim_cycles, active as f64);
            if frontier {
                sink.counter("frontier_size", stats.sim_cycles, scanned as f64);
            }
            sink.span_end(
                track::HOST,
                "iteration",
                stats.sim_cycles,
                &[
                    ("iter", iter.into()),
                    ("active", active.into()),
                    ("thread_partition", low_n.into()),
                    ("block_partition", high_n.into()),
                    ("dN", changed.into()),
                    ("pick_less", pick_less.into()),
                    ("cross_check", cross_check.into()),
                ],
            );
        }
        // ΔN = 0 is declared converged even on Pick-Less-gated iterations:
        // with pruning (the adopted configuration) every candidate is now
        // marked processed and nothing re-activates it, so the labeling is
        // a fixed point. Gating the test on `!pick_less` alone made
        // `PickLess { every: 1 }` — where *every* iteration is gated —
        // run to the iteration cap on fully stable labelings.
        if changed == 0 || (!pick_less && (changed as f64 / n.max(1) as f64) < config.tolerance) {
            converged = true;
            break;
        }
    }

    if sink.is_enabled() {
        sink.span_end(
            track::HOST,
            "lpa_gpu",
            stats.sim_cycles,
            &[
                ("iterations", iterations.into()),
                ("converged", converged.into()),
            ],
        );
    }

    let staged_collisions = state.labels.staged_collisions();
    LpaResult {
        labels: state.labels.into_inner(),
        iterations,
        converged,
        changed_per_iter,
        scanned_per_iter,
        stats,
        staged_collisions,
    }
}

/// Collect frontier bookkeeping out of a wave's shards *before* they are
/// flushed: every staged label write is a mover, every Pick-Less-blocked
/// vertex gets parked. Shards are visited in lane-chunk order, so the
/// harvest is deterministic across host-thread counts (and both lists are
/// sorted before use anyway).
fn harvest_frontier(
    shards: &mut [LaneShard],
    movers: &mut Vec<VertexId>,
    blocked: &mut Vec<VertexId>,
) {
    for s in shards.iter_mut() {
        for &(i, _) in s.labels.iter() {
            movers.push(i as VertexId);
        }
        blocked.append(&mut s.blocked);
    }
}

/// Algorithm 1's per-vertex body, thread-per-vertex flavour: one lane owns
/// the whole vertex, so the hashtable needs no atomics.
#[allow(clippy::too_many_arguments)]
fn process_vertex_thread<V: HashValue>(
    g: &Csr,
    state: &GpuState<V>,
    v: VertexId,
    pick_less: bool,
    config: &LpaConfig,
    lane: &mut LaneMeter,
    shard: &mut LaneShard,
    addr: AddrMap,
) {
    let probe = config.probe;
    let cost = &config.cost;
    // Mark vertex as processed (visible at the wave boundary).
    shard.flag_set.push(v as usize);
    lane.global_write(cost, addr.processed + v as usize, Width::W32);

    let degree = g.degree(v);
    let slot = TableSlot::for_vertex(g.offset(v), degree);
    if slot.capacity == 0 {
        return;
    }
    let taddr = if config.shared_tables {
        addr.table(&slot).in_shared_memory()
    } else {
        addr.table(&slot)
    };

    // SAFETY: per-vertex table regions are carved from the CSR edge
    // layout, so distinct vertices' ranges never overlap, and each vertex
    // appears at most once per launch — all slices live within one wave
    // are disjoint.
    let (keys, vals) = unsafe {
        (
            state.buf_k.slice_mut(slot.start, slot.capacity),
            state.buf_v.slice_mut(slot.start, slot.capacity),
        )
    };
    let mut table = TableMut::<V>::new(keys, vals, slot.p2);

    // hashtableClear (one lane clears every slot).
    for s in 0..slot.capacity {
        if taddr.shared_space {
            lane.shared(cost, Width::W32);
            lane.shared(cost, V::WIDTH);
        } else {
            lane.global_write(cost, taddr.keys + s, Width::W32);
            lane.global_write(cost, taddr.values + s, V::WIDTH);
        }
    }
    table.clear();

    // Scan neighbours, accumulating weighted labels.
    let off = g.offset(v);
    for (k, (j, w)) in g.neighbors(v).enumerate() {
        lane.global_read(cost, addr.targets + off + k, Width::W32);
        lane.global_read(cost, addr.weights + off + k, Width::W32);
        if j == v {
            continue;
        }
        let c_j = state.labels.get(j as usize);
        lane.global_read(cost, addr.labels + j as usize, Width::W32);
        let outcome = table.accumulate_metered(probe, c_j, V::from_weight(w), taddr, lane, cost);
        debug_assert!(outcome.is_done(), "table sized by layout cannot fill");
    }

    // hashtableMaxKey (sequential scan for a single lane).
    for s in 0..slot.capacity {
        if taddr.shared_space {
            lane.shared(cost, Width::W32);
            lane.shared(cost, V::WIDTH);
        } else {
            lane.global_read(cost, taddr.keys + s, Width::W32);
            lane.global_read(cost, taddr.values + s, V::WIDTH);
        }
    }
    let best = table.max_key();

    lane.alu(cost, 2);
    if let Some((c_star, _)) = best {
        let cur = state.labels.get(v as usize);
        if c_star != cur && (!pick_less || c_star < cur) {
            state.labels.stage(&mut shard.labels, v as usize, c_star);
            lane.global_write(cost, addr.labels + v as usize, Width::W32);
            state.changed.fetch_add(1, Ordering::Relaxed);
            lane.atomic(cost, addr.dn, Width::W32); // ΔN_T → ΔN
            for &j in g.neighbor_ids(v) {
                shard.flag_clear.push(j as usize);
                lane.global_write(cost, addr.processed + j as usize, Width::W32);
            }
        } else if config.frontier && c_star != cur {
            // Pick-Less blocked a wanted move: the host parks v so that a
            // future neighbour move — even into v's own community —
            // re-activates it. Host bookkeeping only; no cycles charged
            // (dense mode's equivalent state lives in the already-charged
            // processed flags).
            shard.blocked.push(v);
        }
    }
}

/// Algorithm 1's per-vertex body, block-per-vertex flavour: a whole block
/// cooperates — strided clears and neighbour scans, shared-path hashtable
/// costs, a tree reduction for `hashtableMaxKey`.
#[allow(clippy::too_many_arguments)]
fn process_vertex_block<V: HashValue>(
    g: &Csr,
    state: &GpuState<V>,
    v: VertexId,
    pick_less: bool,
    config: &LpaConfig,
    ctx: &mut nulpa_simt::BlockCtx<'_>,
    shard: &mut LaneShard,
    addr: AddrMap,
) {
    let probe = config.probe;
    let cost = *ctx.cost;
    shard.flag_set.push(v as usize);
    ctx.lane(0)
        .global_write(&cost, addr.processed + v as usize, Width::W32);

    let degree = g.degree(v);
    let slot = TableSlot::for_vertex(g.offset(v), degree);
    if slot.capacity == 0 {
        return;
    }
    let taddr = addr.table(&slot);

    // SAFETY: same disjointness argument as `process_vertex_thread` —
    // regions tile the buffer by CSR offsets and each vertex (block item)
    // appears once per launch.
    let (keys, vals) = unsafe {
        (
            state.buf_k.slice_mut(slot.start, slot.capacity),
            state.buf_v.slice_mut(slot.start, slot.capacity),
        )
    };
    let mut table = TableMut::<V>::new(keys, vals, slot.p2);

    // Parallel clear, strided across lanes.
    ctx.for_each_strided(slot.capacity, |s, lane| {
        lane.global_write(&cost, taddr.keys + s, Width::W32);
        lane.global_write(&cost, taddr.values + s, V::WIDTH);
    });
    table.clear();
    ctx.barrier();

    // Parallel neighbour scan: lane k % B handles neighbour k. The
    // shared-path table charges atomicCAS + atomicAdd per accumulation.
    let off = g.offset(v);
    let targets = g.neighbor_ids(v);
    let weights = g.neighbor_weights(v);
    ctx.for_each_strided(degree, |k, lane| {
        lane.global_read(&cost, addr.targets + off + k, Width::W32);
        lane.global_read(&cost, addr.weights + off + k, Width::W32);
        let j = targets[k];
        if j == v {
            return;
        }
        let c_j = state.labels.get(j as usize);
        lane.global_read(&cost, addr.labels + j as usize, Width::W32);
        let outcome = table.accumulate_metered_shared(
            probe,
            c_j,
            V::from_weight(weights[k]),
            taddr,
            lane,
            &cost,
        );
        debug_assert!(outcome.is_done(), "table sized by layout cannot fill");
    });
    ctx.barrier();

    // Parallel max: strided scan of the table, then a tree reduction.
    ctx.for_each_strided(slot.capacity, |s, lane| {
        lane.global_read(&cost, taddr.keys + s, Width::W32);
        lane.global_read(&cost, taddr.values + s, V::WIDTH);
    });
    ctx.charge_reduction(slot.capacity.min(ctx.num_lanes()));
    ctx.barrier();
    let best = table.max_key();

    if let Some((c_star, _)) = best {
        let cur = state.labels.get(v as usize);
        ctx.lane(0).alu(&cost, 2);
        if c_star != cur && (!pick_less || c_star < cur) {
            state.labels.stage(&mut shard.labels, v as usize, c_star);
            ctx.lane(0)
                .global_write(&cost, addr.labels + v as usize, Width::W32);
            state.changed.fetch_add(1, Ordering::Relaxed);
            ctx.lane(0).atomic(&cost, addr.dn, Width::W32); // ΔN_T → ΔN
            let clears = &mut shard.flag_clear;
            ctx.for_each_strided(degree, |k, lane| {
                let j = targets[k];
                clears.push(j as usize);
                lane.global_write(&cost, addr.processed + j as usize, Width::W32);
            });
        } else if config.frontier && c_star != cur {
            // Same parking rule as the thread kernel.
            shard.blocked.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LpaConfig, SwapMode};
    use crate::seq::lpa_seq;
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, erdos_renyi, planted_partition,
        two_cliques_light_bridge,
    };
    use nulpa_graph::GraphBuilder;
    use nulpa_hashtab::ProbeStrategy;
    use nulpa_metrics::{check_labels, community_count, modularity, nmi, same_partition};
    use nulpa_simt::DeviceConfig;

    fn cfg() -> LpaConfig {
        // tiny device => multiple waves even on small test graphs;
        // threads pinned to 1 so unit tests are env-independent (the
        // parallel ≡ serial matrix lives in tests/parallel.rs)
        LpaConfig::default()
            .with_device(DeviceConfig::tiny())
            .with_threads(1)
    }

    #[test]
    fn two_cliques_recovered() {
        let g = two_cliques_light_bridge(6);
        let r = lpa_gpu(&g, &cfg());
        assert!(check_labels(&g, &r.labels).is_ok());
        assert!(same_partition(&r.labels, &caveman_ground_truth(2, 6)));
    }

    #[test]
    fn caveman_recovered_with_stats() {
        let g = caveman_weighted(5, 8, 0.5);
        let r = lpa_gpu(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 8)));
        assert!(r.stats.sim_cycles > 0);
        assert!(r.stats.probes > 0);
        assert!(r.stats.waves > 0);
    }

    #[test]
    fn complete_graph_single_community() {
        let g = complete(12);
        let r = lpa_gpu(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn quality_close_to_sequential_reference() {
        // seed 5 recovers the planted partition exactly under all
        // backends; asynchronous LPA occasionally merges two blocks on
        // other seeds (inherent variability, paper §4: "potentially
        // introducing variability in results")
        let pp = planted_partition(&[60, 60, 60], 12.0, 0.5, 5);
        let r_gpu = lpa_gpu(&pp.graph, &cfg());
        let r_seq = lpa_seq(&pp.graph, &cfg());
        let q_gpu = modularity(&pp.graph, &r_gpu.labels);
        let q_seq = modularity(&pp.graph, &r_seq.labels);
        assert!(q_gpu > 0.9 * q_seq, "gpu {q_gpu} vs seq {q_seq}");
        assert!(nmi(&r_gpu.labels, &pp.ground_truth) > 0.9);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = erdos_renyi(150, 450, 3);
        let a = lpa_gpu(&g, &cfg());
        let b = lpa_gpu(&g, &cfg());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.staged_collisions, b.staged_collisions);
    }

    #[test]
    fn swap_pathology_without_mitigation() {
        // A perfect matching of symmetric pairs: vertex 2i — 2i+1. With no
        // mitigation and lockstep waves, pairs co-resident in a wave swap
        // labels forever and the run hits the iteration cap.
        let mut b = GraphBuilder::new(64);
        for i in 0..32u32 {
            b.push_undirected(2 * i, 2 * i + 1, 1.0);
        }
        let g = b.build();
        let no_fix = cfg().with_swap_mode(SwapMode::Off);
        let r = lpa_gpu(&g, &no_fix);
        assert!(!r.converged, "expected swap livelock without mitigation");
        assert_eq!(r.iterations, no_fix.max_iterations);

        // Pick-Less breaks the symmetry and converges to pair communities.
        let r_pl = lpa_gpu(&g, &cfg());
        assert!(r_pl.converged, "PL4 should converge");
        assert_eq!(community_count(&r_pl.labels), 32);

        // Cross-Check also breaks it.
        let r_cc = lpa_gpu(&g, &cfg().with_swap_mode(SwapMode::CrossCheck { every: 1 }));
        assert!(r_cc.converged, "CC1 should converge");
        assert_eq!(community_count(&r_cc.labels), 32);
    }

    #[test]
    fn pl1_converges_on_stable_labeling() {
        // Regression for the `!pick_less`-gated tolerance test: under
        // PickLess { every: 1 } every iteration is gated, so a fully
        // stable labeling (ΔN = 0) used to run to max_iterations. It must
        // stop as soon as an iteration changes nothing.
        let g = two_cliques_light_bridge(6);
        let pl1 = cfg().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_gpu(&g, &pl1);
        assert!(r.converged, "PL1 must converge on a stable labeling");
        assert!(
            r.iterations < pl1.max_iterations,
            "PL1 ran to the cap: {} iterations",
            r.iterations
        );
        assert_eq!(*r.changed_per_iter.last().unwrap(), 0);

        // Hybrid with pl_every = 1 is gated on every iteration too.
        let h = cfg().with_swap_mode(SwapMode::Hybrid {
            cc_every: 2,
            pl_every: 1,
        });
        let rh = lpa_gpu(&g, &h);
        assert!(rh.converged, "Hybrid(pl_every=1) must converge");
        assert!(rh.iterations < h.max_iterations);
    }

    #[test]
    fn dn_counter_has_dedicated_address() {
        // Regression for the ΔN cost-attribution bug: the counter used to
        // be charged at `addr.processed`, aliasing vertex 0's processed
        // flag in the locality model. Its cell must lie outside every
        // per-vertex/per-edge region.
        let n = 100;
        let m = 400;
        let a = AddrMap::new(n, m);
        assert_eq!(a.dn, a.values + 2 * m, "ΔN follows the last region");
        for (name, start, len) in [
            ("labels", a.labels, n),
            ("processed", a.processed, n),
            ("targets", a.targets, m),
            ("weights", a.weights, m),
            ("keys", a.keys, 2 * m),
            ("values", a.values, 2 * m),
        ] {
            assert!(
                a.dn < start || a.dn >= start + len,
                "ΔN cell {} aliases region {name} [{start}, {})",
                a.dn,
                start + len
            );
        }
        // In particular it no longer shares a cache line with processed[0].
        use nulpa_simt::LINE_WORDS;
        assert_ne!(a.dn / LINE_WORDS, a.processed / LINE_WORDS);
    }

    #[test]
    fn all_probe_strategies_same_partition_quality() {
        let g = caveman_weighted(4, 10, 0.5);
        let truth = caveman_ground_truth(4, 10);
        for p in ProbeStrategy::all() {
            let r = lpa_gpu(&g, &cfg().with_probe(p));
            assert!(
                same_partition(&r.labels, &truth),
                "{p:?} failed to recover cliques"
            );
        }
    }

    #[test]
    fn f32_and_f64_values_agree_on_quality() {
        let pp = planted_partition(&[50, 50], 8.0, 1.0, 5);
        let r32 = lpa_gpu(&pp.graph, &cfg().with_value_type(ValueType::F32));
        let r64 = lpa_gpu(&pp.graph, &cfg().with_value_type(ValueType::F64));
        let q32 = modularity(&pp.graph, &r32.labels);
        let q64 = modularity(&pp.graph, &r64.labels);
        assert!((q32 - q64).abs() < 0.05, "q32 {q32} vs q64 {q64}");
        // f64 must cost more simulated cycles (wider memory traffic)
        assert!(r64.stats.sim_cycles > r32.stats.sim_cycles);
    }

    #[test]
    fn switch_degree_extremes_agree() {
        // all-thread-kernel vs all-block-kernel must find the same cliques
        let g = caveman_weighted(3, 12, 0.5);
        let truth = caveman_ground_truth(3, 12);
        let all_thread = lpa_gpu(&g, &cfg().with_switch_degree(u32::MAX));
        let all_block = lpa_gpu(&g, &cfg().with_switch_degree(1));
        assert!(same_partition(&all_thread.labels, &truth));
        assert!(same_partition(&all_block.labels, &truth));
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = nulpa_graph::Csr::empty(7);
        let r = lpa_gpu(&g, &cfg());
        assert_eq!(r.labels, (0..7).collect::<Vec<_>>());
        assert!(r.converged);

        let g = GraphBuilder::new(3).add_undirected_edge(0, 1, 1.0).build();
        let r = lpa_gpu(&g, &cfg());
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn self_loops_ignored() {
        let g = GraphBuilder::new(2)
            .keep_self_loops(true)
            .add_edge(0, 0, 100.0)
            .add_undirected_edge(0, 1, 1.0)
            .build();
        let r = lpa_gpu(&g, &cfg());
        // the heavy self loop must not pin vertex 0 to itself
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn a100_and_tiny_devices_both_valid() {
        let g = caveman_weighted(3, 6, 0.5);
        let truth = caveman_ground_truth(3, 6);
        for d in [DeviceConfig::a100(), DeviceConfig::tiny()] {
            let r = lpa_gpu(&g, &LpaConfig::default().with_device(d).with_threads(1));
            assert!(same_partition(&r.labels, &truth));
        }
    }

    /// Single-wave config: the default device (A100-class) holds every
    /// test graph in one wave, which is the regime where the narrowed
    /// frontier rule is provably label-identical to the dense sweep
    /// (multi-wave schedules change intra-iteration visibility with the
    /// launch size, so `tiny`-device equality is not claimed).
    fn acfg() -> LpaConfig {
        LpaConfig::default().with_threads(1)
    }

    #[test]
    fn frontier_matches_dense_exactly_across_swap_modes() {
        let g = erdos_renyi(200, 600, 11);
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 4 },
            SwapMode::PickLess { every: 1 },
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 3,
            },
        ] {
            let dense = lpa_gpu(&g, &acfg().with_swap_mode(mode));
            let front = lpa_gpu(&g, &acfg().with_swap_mode(mode).with_frontier(true));
            assert_eq!(front.labels, dense.labels, "{mode:?}: labels diverged");
            assert_eq!(front.converged, dense.converged, "{mode:?}");
            // The frontier may detect a fixed point one iteration early:
            // when nothing was re-activated it converges without the
            // dense run's final ΔN = 0 confirmation sweep. Everything up
            // to that sweep must match exactly.
            let skipped_sweep = dense.iterations == front.iterations + 1
                && dense.changed_per_iter.last() == Some(&0);
            assert!(
                front.iterations == dense.iterations || skipped_sweep,
                "{mode:?}: iterations {} vs dense {}",
                front.iterations,
                dense.iterations
            );
            assert_eq!(
                front.changed_per_iter[..],
                dense.changed_per_iter[..front.changed_per_iter.len()],
                "{mode:?}: ΔN series diverged"
            );
        }
    }

    #[test]
    fn frontier_reduces_simulated_cycles() {
        // Throughput-bound regime (`tiny`): wave duration is dominated by
        // warp work / issue width, so the frontier's smaller launches must
        // beat the dense sweeps even after paying for the compaction
        // kernel. caveman-4x8 is a perf-gate trio graph; the committed
        // baseline shows ~29% here.
        let g = caveman_weighted(4, 8, 0.5);
        let tiny = LpaConfig::default()
            .with_device(DeviceConfig::tiny())
            .with_threads(1);
        let dense = lpa_gpu(&g, &tiny);
        let front = lpa_gpu(&g, &tiny.with_frontier(true));
        assert_eq!(front.labels, dense.labels);
        assert!(
            (front.stats.sim_cycles as f64) < 0.8 * dense.stats.sim_cycles as f64,
            "frontier {} vs dense {} sim cycles",
            front.stats.sim_cycles,
            dense.stats.sim_cycles
        );
        // The scan series collapses while dense stays pinned at |V|.
        assert!(dense
            .scanned_per_iter
            .iter()
            .all(|&s| s == g.num_vertices()));
        assert!(
            front.scanned_per_iter.iter().sum::<usize>()
                < dense.scanned_per_iter.iter().sum::<usize>(),
            "frontier scans {:?}",
            front.scanned_per_iter
        );
        // The critical-path-bound A100 preset must also stay label-exact
        // while scanning strictly less.
        let dense_a = lpa_gpu(&g, &acfg());
        let front_a = lpa_gpu(&g, &acfg().with_frontier(true));
        assert_eq!(front_a.labels, dense_a.labels);
        assert!(
            front_a.scanned_per_iter.iter().sum::<usize>()
                < dense_a.scanned_per_iter.iter().sum::<usize>()
        );
    }

    #[test]
    fn empty_frontier_converges_without_a_sweep() {
        // No edges: the initial worklist is empty, so frontier mode must
        // report convergence without launching anything.
        let g = nulpa_graph::Csr::empty(5);
        let r = lpa_gpu(&g, &acfg().with_frontier(true));
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.changed_per_iter.is_empty());
        assert!(r.scanned_per_iter.is_empty());
        assert_eq!(r.stats.sim_cycles, 0);
        assert_eq!(r.labels, (0..5).collect::<Vec<_>>());
    }

    #[test]
    fn frontier_runs_on_multi_wave_device_too() {
        // `tiny` forces multiple waves per launch; frontier results need
        // not be bit-identical to dense there, but must still be a valid
        // high-quality labeling.
        let g = caveman_weighted(4, 10, 0.5);
        let truth = caveman_ground_truth(4, 10);
        let r = lpa_gpu(&g, &cfg().with_frontier(true));
        assert!(check_labels(&g, &r.labels).is_ok());
        assert!(same_partition(&r.labels, &truth));
    }

    #[test]
    fn stats_accumulate_across_iterations() {
        let g = erdos_renyi(100, 400, 8);
        let r = lpa_gpu(&g, &cfg());
        assert_eq!(r.changed_per_iter.len(), r.iterations as usize);
        assert!(r.stats.global_reads > 0);
        assert!(r.stats.lane_cycles > 0);
        assert!(r.stats.sim_cycles <= r.stats.lane_cycles + r.stats.idle_cycles);
    }
}
