//! Community-structure-based link prediction.
//!
//! Another application the paper's related work cites for parallel LPA
//! (Mohan et al. 2017: "a parallel label propagation algorithm for
//! community detection and a parallel community information-based
//! Adamic–Adar measure for link prediction"). The predictor scores a
//! candidate pair by the Adamic–Adar index restricted to *community
//! information*: common neighbours that share the pair's community
//! context count fully, others are discounted.
//!
//! `CAA(u, v) = Σ_{z ∈ N(u) ∩ N(v)} bonus(z) / ln(deg(z))`
//!
//! with `bonus(z) = 1 + β` when `C(z) = C(u) = C(v)` (within-community
//! evidence is stronger), `1` otherwise.

use nulpa_graph::{Csr, VertexId};

/// Weight boost for common neighbours inside the pair's own community.
pub const COMMUNITY_BONUS: f64 = 1.0;

/// Plain Adamic–Adar score of a candidate pair.
pub fn adamic_adar(g: &Csr, u: VertexId, v: VertexId) -> f64 {
    common_neighbors(g, u, v)
        .map(|z| 1.0 / (g.degree(z) as f64).ln().max(f64::MIN_POSITIVE))
        .sum()
}

/// Community-information Adamic–Adar (Mohan et al. style): common
/// neighbours sharing the endpoints' community weigh `1 + bonus`.
pub fn community_adamic_adar(g: &Csr, labels: &[VertexId], u: VertexId, v: VertexId) -> f64 {
    assert_eq!(labels.len(), g.num_vertices(), "labels length mismatch");
    let same_side = labels[u as usize] == labels[v as usize];
    common_neighbors(g, u, v)
        .map(|z| {
            let bonus = if same_side && labels[z as usize] == labels[u as usize] {
                1.0 + COMMUNITY_BONUS
            } else {
                1.0
            };
            bonus / (g.degree(z) as f64).ln().max(f64::MIN_POSITIVE)
        })
        .sum()
}

/// Iterate common neighbours of `u` and `v` (sorted-merge over CSR rows;
/// duplicates collapse, self-endpoints skipped).
fn common_neighbors<'a>(
    g: &'a Csr,
    u: VertexId,
    v: VertexId,
) -> impl Iterator<Item = VertexId> + 'a {
    let a = g.neighbor_ids(u);
    let b = g.neighbor_ids(v);
    MergeCommon {
        a,
        b,
        i: 0,
        j: 0,
        skip: [u, v],
    }
}

struct MergeCommon<'a> {
    a: &'a [VertexId],
    b: &'a [VertexId],
    i: usize,
    j: usize,
    skip: [VertexId; 2],
}

impl Iterator for MergeCommon<'_> {
    type Item = VertexId;
    fn next(&mut self) -> Option<VertexId> {
        while self.i < self.a.len() && self.j < self.b.len() {
            let (x, y) = (self.a[self.i], self.b[self.j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Less => self.i += 1,
                std::cmp::Ordering::Greater => self.j += 1,
                std::cmp::Ordering::Equal => {
                    // consume duplicates on both sides
                    while self.i < self.a.len() && self.a[self.i] == x {
                        self.i += 1;
                    }
                    while self.j < self.b.len() && self.b[self.j] == x {
                        self.j += 1;
                    }
                    if !self.skip.contains(&x) {
                        return Some(x);
                    }
                }
            }
        }
        None
    }
}

/// Rank the top-`k` non-edges by community Adamic–Adar, scanning 2-hop
/// candidate pairs (the only pairs with a non-zero score). `O(Σ d²)`.
pub fn top_k_predictions(g: &Csr, labels: &[VertexId], k: usize) -> Vec<(VertexId, VertexId, f64)> {
    assert_eq!(labels.len(), g.num_vertices(), "labels length mismatch");
    let mut seen = std::collections::HashSet::new();
    let mut scored: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for z in g.vertices() {
        let nbrs = g.neighbor_ids(z);
        for (i, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[i + 1..] {
                if u == v || g.has_edge(u, v) {
                    continue;
                }
                let key = (u.min(v), u.max(v));
                if !seen.insert(key) {
                    continue;
                }
                let s = community_adamic_adar(g, labels, key.0, key.1);
                if s > 0.0 {
                    scored.push((key.0, key.1, s));
                }
            }
        }
    }
    scored.sort_by(|a, b| {
        b.2.partial_cmp(&a.2)
            .unwrap()
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::lpa_native;
    use crate::LpaConfig;
    use nulpa_graph::gen::{caveman_weighted, planted_partition};
    use nulpa_graph::GraphBuilder;

    #[test]
    fn adamic_adar_counts_common_neighbours() {
        // u=0 and v=1 share neighbours 2 and 3 (degree 2 each)
        let g = GraphBuilder::new(4)
            .add_undirected_edges([(0, 2, 1.0), (0, 3, 1.0), (1, 2, 1.0), (1, 3, 1.0)])
            .build();
        let s = adamic_adar(&g, 0, 1);
        let expected = 2.0 / (2.0f64).ln();
        assert!((s - expected).abs() < 1e-9, "{s} vs {expected}");
    }

    #[test]
    fn no_common_neighbours_scores_zero() {
        let g = GraphBuilder::new(4)
            .add_undirected_edges([(0, 1, 1.0), (2, 3, 1.0)])
            .build();
        assert_eq!(adamic_adar(&g, 0, 2), 0.0);
        assert_eq!(community_adamic_adar(&g, &[0, 0, 1, 1], 0, 2), 0.0);
    }

    #[test]
    fn community_bonus_raises_intra_scores() {
        let g = GraphBuilder::new(4)
            .add_undirected_edges([(0, 2, 1.0), (1, 2, 1.0), (0, 3, 1.0), (1, 3, 1.0)])
            .build();
        let same = community_adamic_adar(&g, &[0, 0, 0, 0], 0, 1);
        let cross = community_adamic_adar(&g, &[0, 1, 2, 3], 0, 1);
        assert!(same > cross, "{same} vs {cross}");
        assert!((same - 2.0 * cross).abs() < 1e-9); // bonus = 1.0 doubles
    }

    #[test]
    fn top_k_predicts_missing_clique_edge() {
        // remove one intra-clique edge: it should be the #1 prediction
        let full = caveman_weighted(2, 6, 0.5);
        let mut b = GraphBuilder::new(12);
        for u in full.vertices() {
            for (v, w) in full.neighbors(u) {
                if v > u && ((u, v) != (1, 2)) {
                    b.push_undirected(u, v, w);
                }
            }
        }
        let g = b.build();
        let labels = lpa_native(&g, &LpaConfig::default()).labels;
        let preds = top_k_predictions(&g, &labels, 3);
        assert!(!preds.is_empty());
        assert_eq!((preds[0].0, preds[0].1), (1, 2), "{preds:?}");
    }

    #[test]
    fn predictions_exclude_existing_edges_and_self() {
        let pp = planted_partition(&[30, 30], 8.0, 1.0, 3);
        let labels = lpa_native(&pp.graph, &LpaConfig::default()).labels;
        for (u, v, s) in top_k_predictions(&pp.graph, &labels, 50) {
            assert_ne!(u, v);
            assert!(!pp.graph.has_edge(u, v));
            assert!(s > 0.0);
        }
    }

    #[test]
    fn held_out_edges_rank_above_random_pairs() {
        // hold out 20 intra-community edges; their mean score must exceed
        // the mean score of random unconnected inter-community pairs
        let pp = planted_partition(&[50, 50], 10.0, 0.5, 7);
        let g_full = &pp.graph;
        let mut held: Vec<(VertexId, VertexId)> = Vec::new();
        let mut b = GraphBuilder::new(g_full.num_vertices());
        for u in g_full.vertices() {
            for (v, w) in g_full.neighbors(u) {
                if v > u {
                    let intra = pp.ground_truth[u as usize] == pp.ground_truth[v as usize];
                    if intra && held.len() < 20 && (u + v) % 7 == 0 {
                        held.push((u, v));
                    } else {
                        b.push_undirected(u, v, w);
                    }
                }
            }
        }
        let g = b.build();
        let labels = lpa_native(&g, &LpaConfig::default()).labels;

        let mean = |pairs: &[(VertexId, VertexId)]| -> f64 {
            pairs
                .iter()
                .map(|&(u, v)| community_adamic_adar(&g, &labels, u, v))
                .sum::<f64>()
                / pairs.len().max(1) as f64
        };
        let held_score = mean(&held);
        let random: Vec<(VertexId, VertexId)> = (0..20)
            .map(|i| (i as VertexId, (i + 53) as VertexId))
            .collect();
        let random_score = mean(&random);
        assert!(
            held_score > random_score,
            "held {held_score} vs random {random_score}"
        );
    }
}
