//! Output of an LPA run.

use nulpa_graph::VertexId;
use nulpa_simt::KernelStats;

/// Result of one LPA run (any backend).
#[derive(Clone, Debug)]
pub struct LpaResult {
    /// Final community label of every vertex.
    pub labels: Vec<VertexId>,
    /// Iterations performed (`l_i` at exit).
    pub iterations: u32,
    /// `true` if the tolerance test fired before the iteration cap.
    pub converged: bool,
    /// Vertices whose label changed, per iteration (`ΔN` series).
    pub changed_per_iter: Vec<usize>,
    /// Vertices each iteration had to inspect to build its work set:
    /// |V| per dense sweep, the worklist length per frontier iteration.
    /// The frontier speedup is visible as this series collapsing while
    /// `changed_per_iter` stays identical.
    pub scanned_per_iter: Vec<usize>,
    /// Simulator statistics (zeroed for the native/sequential backends).
    pub stats: KernelStats,
    /// Label cells staged more than once within a single simulated wave,
    /// cumulative over the run (zero for the native/sequential backends;
    /// ν-LPA writes each vertex from exactly one thread, so a non-zero
    /// count indicates a scheduling bug — the parallel ≡ serial matrix
    /// test also asserts it is identical across host-thread counts).
    pub staged_collisions: u64,
}

impl LpaResult {
    /// Number of distinct communities — `|Γ|` in Table 1.
    pub fn num_communities(&self) -> usize {
        nulpa_metrics::community_count(&self.labels)
    }

    /// Total label changes across all iterations.
    pub fn total_changes(&self) -> usize {
        self.changed_per_iter.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_count_delegates() {
        let r = LpaResult {
            labels: vec![0, 0, 2, 2],
            iterations: 3,
            converged: true,
            changed_per_iter: vec![4, 2, 0],
            scanned_per_iter: vec![4, 4, 4],
            stats: KernelStats::new(),
            staged_collisions: 0,
        };
        assert_eq!(r.num_communities(), 2);
        assert_eq!(r.total_changes(), 6);
    }
}
