//! Sequential reference LPA.
//!
//! A deliberately simple, obviously-correct implementation used for
//! differential testing of the GPU-simulator and native backends. It
//! follows the same high-level schedule as ν-LPA (asynchronous in-place
//! updates in vertex-id order, vertex pruning, per-iteration tolerance,
//! optional Pick-Less/Cross-Check) but accumulates label weights in a
//! `BTreeMap` — no hashtables, no waves.
//!
//! Tie-breaking: highest total weight; among equal weights, the label with
//! the smallest *scrambled* id wins. A smallest-raw-label rule would be
//! degenerate (every tie cascades toward community 0 and unit-weight
//! graphs collapse into one monster community); the hashtable backends
//! break ties by slot-scan order, which is uncorrelated with label
//! magnitude, and the scramble reproduces that property deterministically.

use crate::config::LpaConfig;
use crate::observe::{IterObserver, NullObserver};
use crate::result::LpaResult;
use nulpa_graph::{Csr, VertexId};
use nulpa_simt::{track, KernelStats, NullSink, TraceSink};
use std::collections::BTreeMap;
use std::time::Instant;

/// Deterministic, magnitude-uncorrelated label order for tie-breaking.
#[inline]
pub(crate) fn scramble(label: VertexId) -> u32 {
    (label ^ 0x5bd1_e995)
        .wrapping_mul(0x9e37_79b9)
        .rotate_left(13)
}

/// Deterministically shuffle the candidate sweep order.
///
/// The original RAK algorithm processes vertices "in a random order" each
/// iteration, and parallel implementations get an effectively interleaved
/// order from their schedulers. A strictly ascending sweep with immediate
/// label visibility is pathological: on the all-ties first iteration a
/// single label can cascade through the whole graph in one pass, producing
/// a monster community. A seeded Fisher–Yates shuffle (varied per
/// iteration) restores the intended behaviour while staying reproducible.
pub(crate) fn shuffle_candidates(candidates: &mut [VertexId], iter: u32) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x6c70_6100 + iter as u64);
    candidates.shuffle(&mut rng);
}

/// Run the sequential reference LPA.
pub fn lpa_seq(g: &Csr, config: &LpaConfig) -> LpaResult {
    lpa_seq_traced(g, config, &mut NullSink)
}

/// [`lpa_seq`] with per-iteration tracing, timestamped in elapsed
/// wall-clock microseconds (the reference backend has no simulated
/// clock). The caller owns `sink.finish()`.
pub fn lpa_seq_traced(g: &Csr, config: &LpaConfig, sink: &mut dyn TraceSink) -> LpaResult {
    lpa_seq_observed(g, config, sink, &mut NullObserver)
}

/// [`lpa_seq_traced`] plus an [`IterObserver`] called after every
/// committed iteration — the convergence-telemetry attachment point.
pub fn lpa_seq_observed(
    g: &Csr,
    config: &LpaConfig,
    sink: &mut dyn TraceSink,
    obs: &mut dyn IterObserver,
) -> LpaResult {
    config.validate().expect("invalid LPA config");
    let n = g.num_vertices();
    let t0 = Instant::now();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut processed = vec![false; n];
    let mut changed_per_iter = Vec::new();
    let mut scanned_per_iter = Vec::new();
    let mut converged = false;
    let mut iterations = 0;

    // Frontier (worklist) state. The worklist mirrors the pruning flags
    // exactly: a vertex is queued iff its `processed` flag was cleared
    // (by a moving neighbour or a Cross-Check revert) since it last ran.
    // Sorting ascending and re-filtering on the flag at iteration start
    // reproduces the dense candidate list verbatim, so the shuffled sweep
    // order — and therefore every label — is bit-identical to the dense
    // sweep; only the O(n)-per-iteration scan disappears.
    let frontier = config.frontier;
    let mut worklist: Vec<VertexId> = Vec::new();
    let mut queued = vec![false; if frontier { n } else { 0 }];
    if frontier {
        for v in 0..n as VertexId {
            if g.degree(v) > 0 {
                queued[v as usize] = true;
                worklist.push(v);
            }
        }
    }
    let mut movers: Vec<VertexId> = Vec::new();

    for iter in 0..config.max_iterations {
        let (mut candidates, scanned) = if frontier {
            worklist.sort_unstable();
            // In-queue invariant: the `queued` bitmap means a vertex can
            // be enqueued at most once per iteration, and every entry
            // still holds its flag at drain time.
            debug_assert!(
                worklist.windows(2).all(|w| w[0] != w[1]),
                "duplicate enqueue in sequential frontier worklist"
            );
            debug_assert!(
                worklist.iter().all(|&v| queued[v as usize]),
                "worklist entry without its queued flag set"
            );
            let scanned = worklist.len();
            for &v in &worklist {
                queued[v as usize] = false;
            }
            let cands: Vec<VertexId> = worklist
                .drain(..)
                .filter(|&v| !processed[v as usize])
                .collect();
            (cands, scanned)
        } else {
            (
                (0..n as VertexId)
                    .filter(|&v| (!config.pruning || !processed[v as usize]) && g.degree(v) > 0)
                    .collect(),
                n,
            )
        };
        if frontier && candidates.is_empty() {
            // Empty frontier: nothing can change, so the run is converged
            // without spending (or recording) a final sweep.
            converged = true;
            break;
        }
        iterations = iter + 1;
        let pick_less = config.swap_mode.pick_less_on(iter);
        let prev = if config.swap_mode.cross_check_on(iter) {
            Some(labels.clone())
        } else {
            None
        };

        shuffle_candidates(&mut candidates, iter);
        let active = candidates.len();
        if sink.is_enabled() {
            sink.span_begin(
                track::HOST,
                "iteration",
                t0.elapsed().as_micros() as u64,
                &[("iter", iter.into())],
            );
        }

        let mut changed = 0usize;
        for v in candidates {
            processed[v as usize] = true;
            let mut weights: BTreeMap<VertexId, f64> = BTreeMap::new();
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue;
                }
                *weights.entry(labels[j as usize]).or_insert(0.0) += w as f64;
            }
            let best = weights
                .iter()
                .fold(None::<(VertexId, f64)>, |acc, (&c, &w)| match acc {
                    Some((bc, bw)) if w > bw || (w == bw && scramble(c) < scramble(bc)) => {
                        Some((c, w))
                    }
                    None => Some((c, w)),
                    _ => acc,
                });
            let Some((c_star, _)) = best else { continue };
            let cur = labels[v as usize];
            if c_star != cur && (!pick_less || c_star < cur) {
                labels[v as usize] = c_star;
                changed += 1;
                if frontier {
                    movers.push(v);
                }
                for j in g.neighbor_ids(v) {
                    processed[*j as usize] = false;
                    if frontier && !queued[*j as usize] {
                        queued[*j as usize] = true;
                        worklist.push(*j);
                    }
                }
            }
        }

        // Cross-Check pass: revert "bad" changes (paper §4.1). Only
        // movers can satisfy `c != prev[v]`, and reverting a mover never
        // flips a non-mover's condition, so in frontier mode scanning the
        // movers in ascending vertex order is exactly the dense 0..n scan.
        if let Some(prev) = prev {
            if frontier {
                movers.sort_unstable();
                for &m in &movers {
                    let v = m as usize;
                    let c = labels[v];
                    if c != prev[v] && labels[c as usize] != c {
                        labels[v] = prev[v];
                        processed[v] = false;
                        if !queued[v] {
                            queued[v] = true;
                            worklist.push(m);
                        }
                    }
                }
            } else {
                for v in 0..n {
                    let c = labels[v];
                    if c != prev[v] && labels[c as usize] != c {
                        labels[v] = prev[v];
                        // reverted vertices may need reprocessing
                        processed[v] = false;
                    }
                }
            }
        }
        movers.clear();

        changed_per_iter.push(changed);
        scanned_per_iter.push(scanned);
        if obs.is_enabled() {
            obs.on_iteration(iter, changed, active, scanned, &labels);
        }
        if sink.is_enabled() {
            let ts = t0.elapsed().as_micros() as u64;
            sink.counter("dN", ts, changed as f64);
            sink.counter("active_vertices", ts, active as f64);
            if frontier {
                sink.counter("frontier_size", ts, scanned as f64);
            }
            sink.span_end(
                track::HOST,
                "iteration",
                ts,
                &[
                    ("iter", iter.into()),
                    ("active", active.into()),
                    ("dN", changed.into()),
                    ("pick_less", pick_less.into()),
                ],
            );
        }
        // ΔN = 0 converges even on Pick-Less-gated iterations (PL1 would
        // otherwise never pass the gated test); see the same check in
        // `gpu.rs`.
        if changed == 0 || (!pick_less && (changed as f64 / n.max(1) as f64) < config.tolerance) {
            converged = true;
            break;
        }
    }

    LpaResult {
        labels,
        iterations,
        converged,
        changed_per_iter,
        scanned_per_iter,
        stats: KernelStats::new(),
        staged_collisions: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LpaConfig, SwapMode};
    use nulpa_graph::gen::{
        caveman_ground_truth, caveman_weighted, complete, star, two_cliques_light_bridge,
    };
    use nulpa_graph::{Csr, GraphBuilder};
    use nulpa_metrics::{community_count, modularity, same_partition};

    fn cfg() -> LpaConfig {
        LpaConfig::default()
    }

    #[test]
    fn pl1_converges_on_stable_labeling() {
        // The `!pick_less` gate alone would keep PL1 running to the cap;
        // ΔN = 0 must end the run (same fix as gpu.rs/native.rs).
        let g = two_cliques_light_bridge(6);
        let pl1 = cfg().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_seq(&g, &pl1);
        assert!(r.converged);
        assert!(r.iterations < pl1.max_iterations);
        assert_eq!(*r.changed_per_iter.last().unwrap(), 0);
    }

    #[test]
    fn two_cliques_found_exactly() {
        let g = two_cliques_light_bridge(6);
        let r = lpa_seq(&g, &cfg());
        assert!(r.converged);
        assert!(same_partition(&r.labels, &caveman_ground_truth(2, 6)));
    }

    #[test]
    fn caveman_communities_recovered() {
        let g = caveman_weighted(5, 8, 0.5);
        let r = lpa_seq(&g, &cfg());
        assert!(same_partition(&r.labels, &caveman_ground_truth(5, 8)));
        let q = modularity(&g, &r.labels);
        assert!(q > 0.6, "Q = {q}");
    }

    #[test]
    fn complete_graph_collapses_to_one_community() {
        let g = complete(10);
        let r = lpa_seq(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn star_collapses_to_one_community() {
        let g = star(10);
        let r = lpa_seq(&g, &cfg());
        assert_eq!(community_count(&r.labels), 1);
    }

    #[test]
    fn empty_graph_keeps_singletons() {
        let g = Csr::empty(5);
        let r = lpa_seq(&g, &cfg());
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
        assert!(r.converged);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = GraphBuilder::new(4).add_undirected_edge(0, 1, 1.0).build();
        let r = lpa_seq(&g, &cfg());
        assert_eq!(r.labels[2], 2);
        assert_eq!(r.labels[3], 3);
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn labels_always_valid_vertex_ids() {
        let g = nulpa_graph::gen::erdos_renyi(120, 300, 9);
        let r = lpa_seq(&g, &cfg());
        assert!(nulpa_metrics::check_labels(&g, &r.labels).is_ok());
    }

    #[test]
    fn deterministic() {
        let g = nulpa_graph::gen::erdos_renyi(100, 250, 4);
        let a = lpa_seq(&g, &cfg());
        let b = lpa_seq(&g, &cfg());
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn respects_iteration_cap() {
        let g = nulpa_graph::gen::erdos_renyi(200, 800, 2);
        let c = cfg().with_max_iterations(2);
        let r = lpa_seq(&g, &c);
        assert!(r.iterations <= 2);
        assert_eq!(r.changed_per_iter.len(), r.iterations as usize);
    }

    #[test]
    fn pick_less_never_increases_labels_on_pl_iterations() {
        // On a PL iteration (iter 0 with PL1), every adopted label must be
        // smaller than the vertex's previous label (its own id initially).
        let g = caveman_weighted(4, 5, 0.5);
        let c = cfg().with_swap_mode(SwapMode::PickLess { every: 1 });
        let r = lpa_seq(&g, &c);
        for (v, &l) in r.labels.iter().enumerate() {
            assert!(l as usize <= v, "vertex {v} got larger label {l}");
        }
    }

    #[test]
    fn swap_modes_all_converge_on_structured_graph() {
        let g = caveman_weighted(6, 6, 0.5);
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 4 },
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 4,
            },
        ] {
            let r = lpa_seq(&g, &cfg().with_swap_mode(mode));
            let q = modularity(&g, &r.labels);
            assert!(q > 0.5, "{mode:?}: Q = {q}");
        }
    }

    #[test]
    fn weighted_edges_steer_labels() {
        // 0-1 heavy, 1-2 light: 1 joins 0's community
        let g = GraphBuilder::new(3)
            .add_undirected_edge(0, 1, 10.0)
            .add_undirected_edge(1, 2, 0.1)
            .build();
        let r = lpa_seq(&g, &cfg());
        assert_eq!(r.labels[0], r.labels[1]);
    }

    #[test]
    fn frontier_matches_dense_exactly_across_swap_modes() {
        // The worklist mirrors the pruning flags, so the full trajectory
        // — labels, ΔN series, iteration count — must be bit-identical.
        let g = nulpa_graph::gen::erdos_renyi(200, 600, 11);
        for mode in [
            SwapMode::Off,
            SwapMode::CrossCheck { every: 2 },
            SwapMode::PickLess { every: 4 },
            SwapMode::PickLess { every: 1 },
            SwapMode::Hybrid {
                cc_every: 2,
                pl_every: 3,
            },
        ] {
            let dense = lpa_seq(&g, &cfg().with_swap_mode(mode));
            let front = lpa_seq(&g, &cfg().with_swap_mode(mode).with_frontier(true));
            assert_eq!(dense.labels, front.labels, "{mode:?}");
            assert_eq!(dense.changed_per_iter, front.changed_per_iter, "{mode:?}");
            assert_eq!(dense.iterations, front.iterations, "{mode:?}");
            assert_eq!(dense.converged, front.converged, "{mode:?}");
        }
    }

    #[test]
    fn frontier_scans_fewer_vertices() {
        let g = caveman_weighted(8, 8, 0.5);
        let dense = lpa_seq(&g, &cfg());
        let front = lpa_seq(&g, &cfg().with_frontier(true));
        assert_eq!(dense.labels, front.labels);
        assert!(dense
            .scanned_per_iter
            .iter()
            .all(|&s| s == g.num_vertices()));
        assert!(
            front.scanned_per_iter.iter().sum::<usize>()
                < dense.scanned_per_iter.iter().sum::<usize>(),
            "frontier should inspect fewer vertices: {:?}",
            front.scanned_per_iter
        );
        // active <= scanned per iteration
        assert!(front
            .scanned_per_iter
            .iter()
            .zip(&front.changed_per_iter)
            .all(|(&s, &c)| c <= s));
    }

    #[test]
    fn empty_frontier_converges_without_a_sweep() {
        // No edges: the initial frontier is empty, so the run must report
        // converged without recording a single iteration.
        let g = Csr::empty(5);
        let r = lpa_seq(&g, &cfg().with_frontier(true));
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert!(r.changed_per_iter.is_empty());
        assert_eq!(r.labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn changed_counts_monotone_trend() {
        // changes should generally shrink as labels converge; assert the
        // last recorded iteration changed fewer vertices than the first
        let g = caveman_weighted(8, 8, 0.5);
        let r = lpa_seq(&g, &cfg());
        if r.changed_per_iter.len() >= 2 {
            assert!(r.changed_per_iter.last().unwrap() <= &r.changed_per_iter[0]);
        }
    }
}
