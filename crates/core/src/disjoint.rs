//! Disjoint-region shared buffer.
//!
//! The native backend keeps all per-vertex hashtables in two global
//! buffers, exactly like the GPU layout (paper Fig. 2). During one LPA
//! iteration every vertex is processed by exactly one Rayon task, and the
//! per-vertex regions `[2·O_i, 2·O_i + 2·D_i)` are pairwise disjoint by
//! CSR construction — so handing each task a `&mut` view of its own region
//! is sound even though the buffer itself is shared. Rust cannot see that
//! through an ordinary `Vec`, hence this small `UnsafeCell` wrapper with
//! the invariant stated at the single `unsafe` boundary.

use std::cell::UnsafeCell;

/// A heap buffer that can hand out non-overlapping mutable regions to
/// concurrent tasks.
pub struct DisjointBuffer<T> {
    data: UnsafeCell<Vec<T>>,
}

// SAFETY: concurrent access is only through `slice_mut`, whose contract
// requires callers to take pairwise-disjoint regions; disjoint &mut [T]
// views are Send/Sync-safe exactly like split_at_mut's halves.
unsafe impl<T: Send> Sync for DisjointBuffer<T> {}

impl<T> DisjointBuffer<T> {
    /// Wrap a buffer.
    pub fn new(data: Vec<T>) -> Self {
        DisjointBuffer {
            data: UnsafeCell::new(data),
        }
    }

    /// Buffer length.
    pub fn len(&self) -> usize {
        // SAFETY: reading the Vec's length field; no element access races
        // because callers only mutate disjoint element ranges, never the
        // Vec header.
        unsafe { (*self.data.get()).len() }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable view of `start..start + len`.
    ///
    /// # Safety
    /// For the lifetime of the returned slice no other live slice from
    /// this buffer may overlap `start..start + len`. The ν-LPA caller
    /// guarantees this by deriving regions from CSR offsets, which tile
    /// the buffer without overlap, and by processing each vertex at most
    /// once per iteration.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        let v = &mut *self.data.get();
        assert!(
            start.checked_add(len).is_some_and(|end| end <= v.len()),
            "region {start}..{} out of bounds (len {})",
            start + len,
            v.len()
        );
        std::slice::from_raw_parts_mut(v.as_mut_ptr().add(start), len)
    }

    /// Recover the underlying buffer.
    pub fn into_inner(self) -> Vec<T> {
        self.data.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn disjoint_parallel_writes() {
        let buf = DisjointBuffer::new(vec![0u32; 1000]);
        (0..100usize).into_par_iter().for_each(|i| {
            // SAFETY: regions [10i, 10i+10) are pairwise disjoint
            let s = unsafe { buf.slice_mut(i * 10, 10) };
            for (k, cell) in s.iter_mut().enumerate() {
                *cell = (i * 10 + k) as u32;
            }
        });
        let v = buf.into_inner();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32));
    }

    #[test]
    fn len_and_empty() {
        let buf = DisjointBuffer::new(vec![1u8; 5]);
        assert_eq!(buf.len(), 5);
        assert!(!buf.is_empty());
        assert!(DisjointBuffer::<u8>::new(vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_rejected() {
        let buf = DisjointBuffer::new(vec![0u8; 4]);
        unsafe {
            buf.slice_mut(2, 3);
        }
    }

    #[test]
    fn zero_length_slice_ok() {
        let buf = DisjointBuffer::new(vec![0u8; 4]);
        let s = unsafe { buf.slice_mut(4, 0) };
        assert!(s.is_empty());
    }
}
