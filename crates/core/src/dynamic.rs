//! Dynamic Frontier LPA — community detection on evolving graphs.
//!
//! The ν-LPA lineage continues into dynamic graphs (Sahu's follow-up
//! "DF-LPA": updating communities on graphs receiving batch updates
//! without recomputing from scratch). This module implements that
//! extension on top of the native backend:
//!
//! * an [`EdgeBatch`] of insertions/deletions is applied to the CSR;
//! * the **frontier** is seeded per the Dynamic Frontier rule — an
//!   inserted edge `(i, j)` marks both endpoints when it *crosses*
//!   communities (`C[i] ≠ C[j]`; an intra-community insertion cannot
//!   change any argmax), a deleted edge marks both endpoints when it was
//!   *internal* (`C[i] = C[j]`);
//! * pruned LPA then runs from the previous labels with only the frontier
//!   unprocessed — label changes re-activate neighbours exactly as in the
//!   static algorithm, so the update cascades precisely as far as it
//!   needs to.

use crate::config::LpaConfig;
use crate::native::lpa_native_from_state;
use crate::result::LpaResult;
use nulpa_graph::{Csr, GraphBuilder, VertexId, Weight};

/// A batch of edge updates to an undirected graph.
#[derive(Clone, Debug, Default)]
pub struct EdgeBatch {
    /// Undirected insertions (stored in both directions on apply).
    pub insertions: Vec<(VertexId, VertexId, Weight)>,
    /// Undirected deletions (both directions removed; missing edges are
    /// ignored).
    pub deletions: Vec<(VertexId, VertexId)>,
}

impl EdgeBatch {
    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// Apply a batch to a graph, producing the updated CSR. `O(|E| + |B|)`.
pub fn apply_batch(g: &Csr, batch: &EdgeBatch) -> Csr {
    let n = g.num_vertices();
    let mut delete: Vec<(VertexId, VertexId)> = Vec::with_capacity(batch.deletions.len() * 2);
    for &(u, v) in &batch.deletions {
        delete.push((u, v));
        delete.push((v, u));
    }
    delete.sort_unstable();
    delete.dedup();

    let mut b = GraphBuilder::new(n).reserve(g.num_edges() + 2 * batch.insertions.len());
    for u in g.vertices() {
        for (v, w) in g.neighbors(u) {
            if delete.binary_search(&(u, v)).is_err() {
                b.push_edge(u, v, w);
            }
        }
    }
    for &(u, v, w) in &batch.insertions {
        b.push_undirected(u, v, w);
    }
    b.build()
}

/// The Dynamic Frontier seed: endpoints whose local argmax may have
/// changed. Pass the labels of the *previous* run on the *old* graph.
pub fn frontier(batch: &EdgeBatch, prev_labels: &[VertexId]) -> Vec<VertexId> {
    let mut f = Vec::new();
    for &(u, v, _) in &batch.insertions {
        if prev_labels[u as usize] != prev_labels[v as usize] {
            f.push(u);
            f.push(v);
        }
    }
    for &(u, v) in &batch.deletions {
        if prev_labels[u as usize] == prev_labels[v as usize] {
            f.push(u);
            f.push(v);
        }
    }
    f.sort_unstable();
    f.dedup();
    f
}

/// Update communities after a batch: apply the batch, seed the frontier,
/// and run pruned LPA from the previous labels. Returns the new graph and
/// the LPA result (whose `changed_per_iter` shows how little work the
/// incremental update needed).
pub fn lpa_dynamic(
    g: &Csr,
    prev_labels: &[VertexId],
    batch: &EdgeBatch,
    config: &LpaConfig,
) -> (Csr, LpaResult) {
    assert_eq!(prev_labels.len(), g.num_vertices(), "label length mismatch");
    let g_new = apply_batch(g, batch);
    let seed = frontier(batch, prev_labels);
    let result = lpa_native_from_state(&g_new, config, prev_labels.to_vec(), &seed);
    (g_new, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::lpa_native;
    use nulpa_graph::gen::{caveman_ground_truth, caveman_weighted, planted_partition};
    use nulpa_metrics::{check_labels, modularity, same_partition};

    fn cfg() -> LpaConfig {
        LpaConfig::default()
    }

    #[test]
    fn apply_batch_inserts_and_deletes() {
        let g = caveman_weighted(2, 4, 0.5);
        let batch = EdgeBatch {
            insertions: vec![(0, 5, 2.0)],
            deletions: vec![(0, 4)], // the bridge
        };
        let g2 = apply_batch(&g, &batch);
        assert_eq!(g2.edge_weight(0, 5), Some(2.0));
        assert_eq!(g2.edge_weight(5, 0), Some(2.0));
        assert_eq!(g2.edge_weight(0, 4), None);
        assert!(g2.is_symmetric());
    }

    #[test]
    fn apply_batch_ignores_missing_deletions() {
        let g = caveman_weighted(2, 4, 0.5);
        let batch = EdgeBatch {
            insertions: vec![],
            deletions: vec![(0, 7)], // no such edge
        };
        assert_eq!(apply_batch(&g, &batch), g);
    }

    #[test]
    fn frontier_rules() {
        // labels: {0,0,1,1}
        let labels = vec![0, 0, 1, 1];
        let batch = EdgeBatch {
            insertions: vec![(0, 1, 1.0), (1, 2, 1.0)], // intra, inter
            deletions: vec![(2, 3), (0, 3)],            // intra, inter
        };
        let f = frontier(&batch, &labels);
        // inter insertion (1,2) and intra deletion (2,3) contribute
        assert_eq!(f, vec![1, 2, 3]);
    }

    #[test]
    fn empty_batch_converges_immediately() {
        let g = caveman_weighted(4, 6, 0.5);
        let base = lpa_native(&g, &cfg());
        let (g2, r) = lpa_dynamic(&g, &base.labels, &EdgeBatch::default(), &cfg());
        assert_eq!(g2, g);
        assert_eq!(r.labels, base.labels);
        assert_eq!(r.total_changes(), 0);
        assert!(r.converged);
    }

    #[test]
    fn incremental_matches_static_quality_with_less_work() {
        let pp = planted_partition(&[80, 80, 80], 12.0, 0.5, 5);
        let g = pp.graph;
        let base = lpa_native(&g, &cfg());

        // perturb: a few random-ish inter edges and one deletion
        let batch = EdgeBatch {
            insertions: vec![(0, 100, 1.0), (10, 170, 1.0), (50, 200, 1.0)],
            deletions: vec![(0, 1)],
        };
        let (g_new, dynamic) = lpa_dynamic(&g, &base.labels, &batch, &cfg());
        let from_scratch = lpa_native(&g_new, &cfg());

        assert!(check_labels(&g_new, &dynamic.labels).is_ok());
        let q_dyn = modularity(&g_new, &dynamic.labels);
        let q_full = modularity(&g_new, &from_scratch.labels);
        assert!(q_dyn > 0.9 * q_full, "dyn {q_dyn} vs full {q_full}");
        // the incremental update must touch far fewer vertices
        assert!(
            dynamic.total_changes() * 5 < from_scratch.total_changes().max(1),
            "dyn changed {} vs full {}",
            dynamic.total_changes(),
            from_scratch.total_changes()
        );
    }

    #[test]
    fn stable_merged_community_survives_bridge_deletion() {
        // The documented limitation of frontier-based dynamic LPA (shared
        // with DF-LPA): a merged community is a *fixed point* — after the
        // bridge is deleted, every vertex's neighbours still carry the
        // merged label, so no frontier update can split it. A from-scratch
        // run on the new graph does split. Dynamic updates trade this
        // occasional suboptimality for orders-of-magnitude less work.
        let g = caveman_weighted(2, 5, 10.0);
        let merged = lpa_native(&g, &cfg());
        assert_eq!(nulpa_metrics::community_count(&merged.labels), 1);

        let batch = EdgeBatch {
            insertions: vec![],
            deletions: vec![(0, 5)],
        };
        let (g_new, r) = lpa_dynamic(&g, &merged.labels, &batch, &cfg());
        // dynamic: stays merged (stable fixed point), converges instantly
        assert_eq!(nulpa_metrics::community_count(&r.labels), 1);
        assert_eq!(r.total_changes(), 0);
        // static rerun: finds the split
        let fresh = lpa_native(&g_new, &cfg());
        assert!(same_partition(&fresh.labels, &caveman_ground_truth(2, 5)));
        assert!(modularity(&g_new, &fresh.labels) > modularity(&g_new, &r.labels));
    }

    #[test]
    fn inter_community_insertions_can_merge() {
        let g = caveman_weighted(2, 4, 0.5);
        let base = lpa_native(&g, &cfg());
        // saturate the cut: connect everything to everything across
        let mut ins = Vec::new();
        for u in 0..4u32 {
            for v in 4..8u32 {
                ins.push((u, v, 3.0));
            }
        }
        let (g_new, r) = lpa_dynamic(
            &g,
            &base.labels,
            &EdgeBatch {
                insertions: ins,
                deletions: vec![],
            },
            &cfg(),
        );
        assert_eq!(nulpa_metrics::community_count(&r.labels), 1);
        assert!(check_labels(&g_new, &r.labels).is_ok());
    }

    #[test]
    #[should_panic(expected = "label length mismatch")]
    fn rejects_wrong_label_length() {
        let g = caveman_weighted(2, 4, 0.5);
        lpa_dynamic(&g, &[0, 1], &EdgeBatch::default(), &cfg());
    }
}
