//! # nulpa-core
//!
//! ν-LPA: the paper's GPU label-propagation algorithm for community
//! detection, in three backends sharing one configuration:
//!
//! * [`lpa_gpu`] — the reproduction of the CUDA implementation, executed
//!   on the SIMT simulator with full cost metering (Algorithm 1 + 2,
//!   Pick-Less / Cross-Check swap mitigation, thread- and block-per-vertex
//!   kernels, per-vertex hashtables).
//! * [`lpa_native`] — the same algorithm as a native Rayon port, used for
//!   wall-clock benchmarking against the baselines (Fig. 6).
//! * [`lpa_seq`] — a simple sequential reference for differential testing.
//!
//! Plus [`pulp_partition`] — the paper's stated future-work application:
//! size-constrained k-way graph partitioning by label propagation.
//!
//! ```
//! use nulpa_core::{lpa_native, LpaConfig};
//! use nulpa_graph::gen::caveman_weighted;
//! use nulpa_metrics::modularity;
//!
//! let g = caveman_weighted(4, 8, 0.5);
//! let result = lpa_native(&g, &LpaConfig::default());
//! assert!(modularity(&g, &result.labels) > 0.5);
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod coarsen;
pub mod config;
// The only unsafe code in the workspace lives in these three modules
// (audited, allowlisted in check/unsafe_allowlist.toml and enforced by
// `nulpa check`): `disjoint` hands out non-overlapping mutable table
// regions from one buffer, and `native` and `gpu` take such disjoint
// per-vertex regions from it (vertex-disjoint by CSR construction) for
// their parallel table writes.
#[allow(unsafe_code)]
pub mod disjoint;
pub mod dynamic;
pub mod effects;
pub mod fastpath;
#[allow(unsafe_code)]
pub mod gpu;
pub mod hostprof;
pub mod linkpred;
#[allow(unsafe_code)]
pub mod native;
pub mod observe;
pub mod partition;
pub mod pulp;
pub mod result;
pub mod seq;

pub use addr::AddrMap;
pub use coarsen::{coarsen_lpa, CoarseLevel, CoarsenConfig, CoarsenResult};
pub use config::{resolve_threads, BucketThresholds, LpaConfig, SwapMode, ValueType};
pub use dynamic::{apply_batch, frontier, lpa_dynamic, EdgeBatch};
pub use effects::shipped_effects;
pub use fastpath::bucket_partition;
pub use gpu::{lpa_gpu, lpa_gpu_observed, lpa_gpu_traced};
pub use hostprof::{
    BucketCounters, HostProfData, IterRepairStats, SpanKind, SpanRec, ThreadProfData, BUCKET_NAMES,
};
pub use linkpred::{adamic_adar, community_adamic_adar, top_k_predictions};
pub use native::{
    lpa_native, lpa_native_from_state, lpa_native_hostprof, lpa_native_observed, lpa_native_traced,
};
pub use observe::{IterObserver, NullObserver};
pub use partition::{partition_all, partition_candidates, KernelPartition};
pub use pulp::{pulp_partition, pulp_partition_weighted, PulpConfig, PulpResult};
pub use result::LpaResult;
pub use seq::{lpa_seq, lpa_seq_observed, lpa_seq_traced};
