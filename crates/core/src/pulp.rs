//! LPA-based k-way graph partitioning — the paper's stated future work.
//!
//! The conclusion motivates ν-LPA "for performance-critical applications,
//! such as partitioning of large graphs. We plan to look into this in the
//! future." This module implements that application in the style of PuLP
//! (Slota et al., "PuLP: Scalable multi-objective multi-constraint
//! partitioning using label propagation", cited by the paper): labels are
//! *part ids* instead of community ids, propagation maximizes the weight
//! connecting a vertex to a part, and a size constraint keeps parts
//! balanced.
//!
//! Algorithm:
//! 1. initialize parts by contiguous chunks (CSR order is usually already
//!    locality-friendly) or randomly;
//! 2. LPA sweeps in shuffled order — a vertex moves to its most-connected
//!    part *iff* the destination stays under `balance · n/k` and the move
//!    does not empty the source below a floor;
//! 3. stop when a sweep moves fewer than `tolerance · n` vertices.

use crate::seq::{scramble, shuffle_candidates};
use nulpa_graph::{Csr, VertexId};
use std::collections::BTreeMap;

/// Partitioner configuration.
#[derive(Clone, Copy, Debug)]
pub struct PulpConfig {
    /// Number of parts `k`.
    pub num_parts: usize,
    /// Maximum part size as a multiple of `n / k` (1.05 = 5 % slack).
    pub balance: f64,
    /// Sweep cap.
    pub max_iterations: u32,
    /// Stop when fewer than this fraction of vertices move in a sweep.
    pub tolerance: f64,
    /// Start from random part assignment instead of contiguous chunks.
    pub random_init: bool,
    /// Seed for shuffles / random init.
    pub seed: u64,
}

impl Default for PulpConfig {
    fn default() -> Self {
        PulpConfig {
            num_parts: 2,
            balance: 1.05,
            max_iterations: 20,
            tolerance: 0.005,
            random_init: false,
            seed: 0,
        }
    }
}

/// Result of a partitioning run.
#[derive(Clone, Debug)]
pub struct PulpResult {
    /// Part id (`0..k`) of every vertex.
    pub parts: Vec<VertexId>,
    /// Sweeps performed.
    pub iterations: u32,
    /// Vertices moved per sweep.
    pub moved_per_iter: Vec<usize>,
}

/// Partition `g` into `config.num_parts` balanced parts by size-constrained
/// label propagation.
///
/// # Panics
/// Panics if `num_parts` is 0 or exceeds `|V|`, or the balance is < 1.
pub fn pulp_partition(g: &Csr, config: &PulpConfig) -> PulpResult {
    pulp_partition_weighted(g, config, None)
}

/// [`pulp_partition`] with per-vertex weights: the balance constraint caps
/// each part's total *weight* instead of its vertex count. This is what a
/// multilevel pipeline needs — after [`crate::coarsen::coarsen_lpa`],
/// super-vertices carry different numbers of original vertices, and
/// partitioning the coarse graph by count alone projects back imbalanced.
///
/// # Panics
/// Additionally panics if `weights` has the wrong length or non-positive
/// entries.
pub fn pulp_partition_weighted(
    g: &Csr,
    config: &PulpConfig,
    weights: Option<&[f64]>,
) -> PulpResult {
    let n = g.num_vertices();
    let k = config.num_parts;
    assert!(k >= 1, "need at least one part");
    assert!(k <= n.max(1), "more parts than vertices");
    assert!(config.balance >= 1.0, "balance factor must be >= 1");
    if let Some(w) = weights {
        assert_eq!(w.len(), n, "weights length mismatch");
        assert!(w.iter().all(|&x| x > 0.0), "weights must be positive");
    }
    let weight = |v: usize| weights.map_or(1.0, |w| w[v]);
    let total_weight: f64 = weights.map_or(n as f64, |w| w.iter().sum());

    // initial assignment
    let mut parts: Vec<VertexId> = if config.random_init {
        use rand::Rng;
        use rand::SeedableRng;
        let mut r = rand_chacha::ChaCha8Rng::seed_from_u64(config.seed);
        (0..n).map(|_| r.gen_range(0..k) as VertexId).collect()
    } else {
        // contiguous chunks of ceil(n/k)
        let chunk = n.div_ceil(k.max(1)).max(1);
        (0..n).map(|v| (v / chunk) as VertexId).collect()
    };
    let mut sizes = vec![0.0f64; k];
    for (v, &p) in parts.iter().enumerate() {
        sizes[p as usize] += weight(v);
    }

    let cap = (total_weight / k as f64) * config.balance;
    // every part keeps at least half its fair share
    let floor = total_weight / (2.0 * k as f64);

    let mut moved_per_iter = Vec::new();
    let mut iterations = 0;

    if n == 0 || k == 1 {
        return PulpResult {
            parts,
            iterations: 0,
            moved_per_iter,
        };
    }

    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        shuffle_candidates(&mut order, iter ^ 0x9a97);
        let mut moved = 0usize;

        for &v in &order {
            let cur = parts[v as usize];
            let w_v = weight(v as usize);
            let mut conn: BTreeMap<VertexId, f64> = BTreeMap::new();
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue;
                }
                *conn.entry(parts[j as usize]).or_insert(0.0) += w as f64;
            }
            let cur_w = conn.get(&cur).copied().unwrap_or(0.0);
            // best admissible destination strictly better-connected than cur
            let mut best: Option<(VertexId, f64)> = None;
            for (&p, &w) in &conn {
                if p == cur || w <= cur_w {
                    continue;
                }
                if sizes[p as usize] + w_v > cap || sizes[cur as usize] - w_v < floor {
                    continue;
                }
                match best {
                    Some((bp, bw)) if w > bw || (w == bw && scramble(p) < scramble(bp)) => {
                        best = Some((p, w))
                    }
                    None => best = Some((p, w)),
                    _ => {}
                }
            }
            if let Some((p, _)) = best {
                sizes[cur as usize] -= w_v;
                sizes[p as usize] += w_v;
                parts[v as usize] = p;
                moved += 1;
            }
        }

        moved_per_iter.push(moved);
        if (moved as f64) < config.tolerance * n as f64 {
            break;
        }
    }

    PulpResult {
        parts,
        iterations,
        moved_per_iter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_weighted, erdos_renyi, grid2d};
    use nulpa_metrics::{cut_fraction, imbalance};

    fn cfg(k: usize) -> PulpConfig {
        PulpConfig {
            num_parts: k,
            ..Default::default()
        }
    }

    #[test]
    fn parts_valid_and_balanced_on_grid() {
        let g = grid2d(32, 32, 1.0, 0);
        let r = pulp_partition(&g, &cfg(4));
        assert!(r.parts.iter().all(|&p| (p as usize) < 4));
        let imb = imbalance(&r.parts, 4);
        assert!(imb <= 1.06, "imbalance {imb}");
    }

    #[test]
    fn cut_improves_over_random_on_grid() {
        let g = grid2d(32, 32, 1.0, 0);
        let refined = pulp_partition(&g, &cfg(4));
        let random = pulp_partition(
            &g,
            &PulpConfig {
                num_parts: 4,
                random_init: true,
                max_iterations: 0,
                ..Default::default()
            },
        );
        // a 0-iteration random partition cuts ~75 % of edges; refinement
        // must do far better
        let f_ref = cut_fraction(&g, &refined.parts);
        let f_rand = cut_fraction(&g, &random.parts);
        assert!(f_ref < f_rand / 2.0, "refined {f_ref} vs random {f_rand}");
        assert!(f_ref < 0.2, "refined cut fraction {f_ref}");
    }

    #[test]
    fn random_init_also_converges() {
        let g = grid2d(24, 24, 1.0, 1);
        let r = pulp_partition(
            &g,
            &PulpConfig {
                num_parts: 3,
                random_init: true,
                ..Default::default()
            },
        );
        let f = cut_fraction(&g, &r.parts);
        assert!(f < 0.35, "cut fraction {f}");
        assert!(imbalance(&r.parts, 3) <= 1.6);
    }

    #[test]
    fn respects_community_boundaries() {
        // two cliques, two parts: the bridge should be the only cut
        let g = caveman_weighted(2, 8, 0.5);
        let r = pulp_partition(&g, &cfg(2));
        let f = cut_fraction(&g, &r.parts);
        assert!(f < 0.05, "cut fraction {f}");
        assert_eq!(imbalance(&r.parts, 2), 1.0);
    }

    #[test]
    fn single_part_is_trivial() {
        let g = erdos_renyi(50, 120, 2);
        let r = pulp_partition(&g, &cfg(1));
        assert!(r.parts.iter().all(|&p| p == 0));
        assert_eq!(r.iterations, 0);
    }

    #[test]
    fn deterministic() {
        let g = grid2d(20, 20, 0.8, 2);
        assert_eq!(
            pulp_partition(&g, &cfg(4)).parts,
            pulp_partition(&g, &cfg(4)).parts
        );
    }

    #[test]
    fn empty_graph() {
        let g = nulpa_graph::Csr::empty(0);
        let r = pulp_partition(&g, &cfg(1));
        assert!(r.parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "more parts")]
    fn rejects_k_above_n() {
        pulp_partition(&nulpa_graph::Csr::empty(2), &cfg(5));
    }

    #[test]
    fn weighted_partition_caps_weight_not_count() {
        // 8 heavy vertices (weight 10) + 32 light (weight 1) in a ring
        let n = 40;
        let mut b = nulpa_graph::GraphBuilder::new(n);
        for i in 0..n as u32 {
            b.push_undirected(i, (i + 1) % n as u32, 1.0);
        }
        let g = b.build();
        let weights: Vec<f64> = (0..n)
            .map(|v| if v % 5 == 0 { 10.0 } else { 1.0 })
            .collect();
        let total: f64 = weights.iter().sum();
        let k = 4;
        let r = pulp_partition_weighted(&g, &cfg(k), Some(&weights));
        let mut part_w = vec![0.0f64; k];
        for (v, &p) in r.parts.iter().enumerate() {
            part_w[p as usize] += weights[v];
        }
        // contiguous init puts at most ceil(n/k) vertices per part; weights
        // may start above the cap, but no *move* may push a part above it —
        // and every part must respect the floor
        for (p, &w) in part_w.iter().enumerate() {
            assert!(
                w >= total / (2.0 * k as f64) - 10.0,
                "part {p} too light: {w}"
            );
        }
        assert_eq!(r.parts.len(), n);
    }

    #[test]
    fn weighted_matches_unweighted_with_unit_weights() {
        let g = grid2d(16, 16, 1.0, 1);
        let unit = vec![1.0; g.num_vertices()];
        let a = pulp_partition(&g, &cfg(4));
        let b = pulp_partition_weighted(&g, &cfg(4), Some(&unit));
        assert_eq!(a.parts, b.parts);
    }

    #[test]
    #[should_panic(expected = "weights length")]
    fn weighted_rejects_wrong_length() {
        let g = grid2d(4, 4, 1.0, 0);
        pulp_partition_weighted(&g, &cfg(2), Some(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn weighted_rejects_nonpositive() {
        let g = grid2d(2, 2, 1.0, 0);
        pulp_partition_weighted(&g, &cfg(2), Some(&[1.0, 0.0, 1.0, 1.0]));
    }

    #[test]
    fn balance_cap_never_violated() {
        let g = erdos_renyi(200, 600, 5);
        let r = pulp_partition(&g, &cfg(5));
        let imb = imbalance(&r.parts, 5);
        assert!(imb <= 1.05 + 0.05, "imbalance {imb}"); // cap is ceil'd
    }
}
