//! Effect descriptors for the shipped ν-LPA kernels.
//!
//! Each kernel in [`crate::gpu`] declares here, as data, exactly what it
//! does to the simulated address space ([`crate::addr::AddrMap`]): which
//! regions it reads/writes/atomically updates and with which symbolic
//! index expression, where its barriers sit, and how its probe loops are
//! bounded. The declarations are the input to `nulpa-check`'s solver,
//! which proves lane-disjointness, staging discipline, barrier
//! uniformity, probe budgets, and immediate-write confinement for *all*
//! graphs — the static counterpart of the dynamic `nulpa-sancheck` runs.
//!
//! Keeping the descriptors beside the kernels (rather than in the
//! checker) makes them part of the kernel's contract: a kernel change
//! that alters its memory behaviour must update its declaration here, and
//! the cross-validation tests (static-clean ⇒ sancheck-clean, plus the
//! declaration-vs-metering consistency tests in `nulpa-check`) catch
//! declarations that drift from the code.

use nulpa_hashtab::{probe_budget, TableSlot, MAX_RETRIES};
use nulpa_simt::effects::{
    AccessEffect, AccessKind, AddrExpr, BarrierSite, Effects, EffectsRegistry, IndexExpr,
    KernelFlavor, LaneOrder, Pred, ProbeBound, Region, StagingClass, Visibility,
};

/// Launch name of the thread-per-vertex kernel.
pub const KERNEL_THREAD: &str = "kernel:thread";
/// Launch name of the block-per-vertex kernel.
pub const KERNEL_BLOCK: &str = "kernel:block";
/// Launch name of the Cross-Check revert kernel.
pub const KERNEL_CROSS_CHECK: &str = "kernel:cross_check";
/// Launch name of the frontier-compaction kernel (frontier mode only).
pub const KERNEL_COMPACT: &str = "kernel:compact";

const fn read(site: &'static str, region: Region, index: IndexExpr) -> AccessEffect {
    AccessEffect {
        site,
        addr: AddrExpr::new(region, index),
        kind: AccessKind::Read,
    }
}

const fn write(
    site: &'static str,
    region: Region,
    index: IndexExpr,
    vis: Visibility,
    idempotent: bool,
) -> AccessEffect {
    AccessEffect {
        site,
        addr: AddrExpr::new(region, index),
        kind: AccessKind::Write { vis, idempotent },
    }
}

const fn atomic(site: &'static str, region: Region, index: IndexExpr) -> AccessEffect {
    AccessEffect {
        site,
        addr: AddrExpr::new(region, index),
        kind: AccessKind::Atomic,
    }
}

/// The vertex's full hashtable reservation: `2·off(v) + 0..2·deg(v)`,
/// the interval [`TableSlot::for_vertex`] carves (start `2·off`, reserve
/// `2·deg`; the power-of-two capacity is a subset of the reservation).
const TABLE_INTERVAL: IndexExpr = IndexExpr::CsrInterval {
    start_scale: 2,
    extent_scale: 2,
};

/// The vertex's CSR edge slice: `off(v) + 0..deg(v)`.
const EDGE_INTERVAL: IndexExpr = IndexExpr::CsrInterval {
    start_scale: 1,
    extent_scale: 1,
};

/// The probe bound every table-probing kernel declares: at most
/// [`MAX_RETRIES`] strategy-driven steps (further clamped to `2·p₁` by
/// [`probe_budget`]) before the linear fallback guarantees termination.
pub fn declared_probe_bound() -> ProbeBound {
    ProbeBound::Bounded {
        budget: MAX_RETRIES,
        fallback_linear: true,
    }
}

/// Effects of the thread-per-vertex kernel
/// (`process_vertex_thread`): one lane owns the whole vertex body.
fn thread_kernel_effects() -> Effects {
    Effects {
        kernel: KERNEL_THREAD,
        flavor: KernelFlavor::ThreadPerItem,
        order: LaneOrder::Lockstep,
        staging: StagingClass::Staged,
        distinct_items: true,
        accesses: vec![
            // Self-mark processed (staged flag_set; always `true`).
            write(
                "processed self-mark",
                Region::Processed,
                IndexExpr::OwnVertex,
                Visibility::Staged,
                true,
            ),
            // hashtableClear + accumulate + maxKey over the lane's own
            // CSR-carved reservation — plain immediate stores, legal
            // because the intervals of distinct vertices are disjoint.
            write(
                "table clear/insert",
                Region::Keys,
                TABLE_INTERVAL,
                Visibility::Immediate,
                false,
            ),
            write(
                "table accumulate",
                Region::Values,
                TABLE_INTERVAL,
                Visibility::Immediate,
                false,
            ),
            read("table scan", Region::Keys, TABLE_INTERVAL),
            read("table scan", Region::Values, TABLE_INTERVAL),
            // Neighbour scan over the CSR slice (read-only topology).
            read("neighbour ids", Region::Targets, EDGE_INTERVAL),
            read("edge weights", Region::Weights, EDGE_INTERVAL),
            // Labels of neighbours (wave-start values via the deferred
            // store).
            read("neighbour labels", Region::Labels, IndexExpr::Neighbor),
            read("own label", Region::Labels, IndexExpr::OwnVertex),
            // Label move: staged, own cell only.
            write(
                "label move",
                Region::Labels,
                IndexExpr::OwnVertex,
                Visibility::Staged,
                false,
            ),
            // ΔN_T → ΔN (atomicAdd on the dedicated counter word).
            atomic("ΔN add", Region::Dn, IndexExpr::Fixed),
            // Neighbour unmark (staged flag_clear; always `false`, so
            // overlapping writers from different lanes are benign).
            write(
                "processed neighbour clear",
                Region::Processed,
                IndexExpr::Neighbor,
                Visibility::Staged,
                true,
            ),
        ],
        barriers: vec![],
        probes: declared_probe_bound(),
    }
}

/// Effects of the block-per-vertex kernel
/// (`process_vertex_block`): a cooperative block owns one vertex, lanes
/// stride over its edges and table slots.
fn block_kernel_effects() -> Effects {
    Effects {
        kernel: KERNEL_BLOCK,
        flavor: KernelFlavor::BlockPerItem,
        order: LaneOrder::Lockstep,
        staging: StagingClass::Staged,
        distinct_items: true,
        accesses: vec![
            write(
                "processed self-mark",
                Region::Processed,
                IndexExpr::OwnVertex,
                Visibility::Staged,
                true,
            ),
            // Strided clear: lanes of the block partition the interval, so
            // within a block the writes are lane-disjoint by the stride;
            // across blocks by CSR carving. The clear stores a constant.
            write(
                "strided table clear",
                Region::Keys,
                TABLE_INTERVAL,
                Visibility::Immediate,
                true,
            ),
            write(
                "strided table clear (values)",
                Region::Values,
                TABLE_INTERVAL,
                Visibility::Immediate,
                true,
            ),
            // Shared-path accumulation: atomicCAS on keys, atomicAdd on
            // values — lanes of the block may collide on a slot.
            atomic("table claim (atomicCAS)", Region::Keys, TABLE_INTERVAL),
            atomic("table add (atomicAdd)", Region::Values, TABLE_INTERVAL),
            read("strided table scan", Region::Keys, TABLE_INTERVAL),
            read("strided table scan", Region::Values, TABLE_INTERVAL),
            read("neighbour ids", Region::Targets, EDGE_INTERVAL),
            read("edge weights", Region::Weights, EDGE_INTERVAL),
            read("neighbour labels", Region::Labels, IndexExpr::Neighbor),
            read("own label", Region::Labels, IndexExpr::OwnVertex),
            write(
                "label move (lane 0)",
                Region::Labels,
                IndexExpr::OwnVertex,
                Visibility::Staged,
                false,
            ),
            atomic("ΔN add", Region::Dn, IndexExpr::Fixed),
            write(
                "processed neighbour clear",
                Region::Processed,
                IndexExpr::Neighbor,
                Visibility::Staged,
                true,
            ),
        ],
        // All three barriers sit after the early `capacity == 0` return,
        // whose guard (the block item's degree) is block-uniform: every
        // lane of a block computes the same slot, so either all lanes
        // reach every barrier or none does.
        barriers: vec![
            BarrierSite {
                site: "post-clear",
                pred: Pred::BlockUniform,
            },
            BarrierSite {
                site: "post-accumulate",
                pred: Pred::BlockUniform,
            },
            BarrierSite {
                site: "post-max-scan",
                pred: Pred::BlockUniform,
            },
        ],
        probes: declared_probe_bound(),
    }
}

/// Effects of the Cross-Check revert kernel: a separate launch with
/// immediate (write-through / atomicExch) semantics, deliberately run
/// with sequential lane order.
fn cross_check_effects() -> Effects {
    Effects {
        kernel: KERNEL_CROSS_CHECK,
        flavor: KernelFlavor::ThreadPerItem,
        order: LaneOrder::Sequential,
        staging: StagingClass::Immediate,
        distinct_items: true,
        accesses: vec![
            read("own label", Region::Labels, IndexExpr::OwnVertex),
            // `labels[c]` where c is itself a label value — aliases any
            // label cell, which is exactly why the revert must be atomic
            // and the lanes sequential.
            read("leader label", Region::Labels, IndexExpr::LabelValue),
            atomic("revert (atomicExch)", Region::Labels, IndexExpr::OwnVertex),
            // Immediate write-through of the own processed flag:
            // lane-disjoint because items are distinct vertices.
            write(
                "processed write-through",
                Region::Processed,
                IndexExpr::OwnVertex,
                Visibility::Immediate,
                false,
            ),
            atomic("ΔN decrement", Region::Dn, IndexExpr::Fixed),
        ],
        barriers: vec![],
        probes: ProbeBound::None,
    }
}

/// Effects of the frontier-compaction kernel: one lane per worklist
/// entry reads its processed flag and emits through a warp-aggregated
/// push (modelled as ALU work — the per-warp counter bump is amortised
/// and the output list is host-side state, not a simulated region). A
/// pure reader: no shared-state writes, no barriers, no table probes.
fn compact_kernel_effects() -> Effects {
    Effects {
        kernel: KERNEL_COMPACT,
        flavor: KernelFlavor::ThreadPerItem,
        order: LaneOrder::Lockstep,
        staging: StagingClass::Staged,
        distinct_items: true,
        accesses: vec![read(
            "processed flag",
            Region::Processed,
            IndexExpr::OwnVertex,
        )],
        barriers: vec![],
        probes: ProbeBound::None,
    }
}

/// Registry holding the effect declarations of every kernel the
/// workspace launches. `nulpa check` verifies exactly this set; the
/// launch-site lint cross-references it by kernel name.
pub fn shipped_effects() -> EffectsRegistry {
    let mut r = EffectsRegistry::new();
    r.register(thread_kernel_effects());
    r.register(block_kernel_effects());
    r.register(cross_check_effects());
    r.register(compact_kernel_effects());
    r
}

/// Concrete probe cap for a table of capacity `p1`, as the table code
/// enforces it: `probe_budget(p1)` strategy steps plus at most `p1`
/// linear-fallback steps. Re-exported here so checker tests can compare
/// the declaration against the enforced value without reaching into
/// `nulpa-hashtab` internals.
pub fn enforced_probe_cap(p1: usize) -> u64 {
    (probe_budget(p1) + p1 as u32) as u64
}

/// The table reservation interval the declarations use, as concrete
/// numbers for a given vertex — used by consistency tests to tie the
/// symbolic [`IndexExpr::CsrInterval`] to [`TableSlot::for_vertex`].
pub fn table_reservation(offset: usize, degree: usize) -> (usize, usize) {
    let slot = TableSlot::for_vertex(offset, degree);
    (slot.start, slot.reserve)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_launch_names() {
        let r = shipped_effects();
        assert_eq!(r.len(), 4);
        for k in [
            KERNEL_THREAD,
            KERNEL_BLOCK,
            KERNEL_CROSS_CHECK,
            KERNEL_COMPACT,
        ] {
            assert!(r.lookup(k).is_some(), "missing descriptor for {k}");
        }
    }

    #[test]
    fn staged_kernels_have_no_immediate_state_writes() {
        // The structural property rule (e) of the solver rests on: the
        // main kernels only write shared state (labels/processed/dn)
        // staged or atomically; immediate plain writes are confined to
        // the CSR-carved scratch regions.
        let r = shipped_effects();
        for k in [KERNEL_THREAD, KERNEL_BLOCK] {
            let e = r.lookup(k).unwrap();
            assert_eq!(e.staging, StagingClass::Staged);
            for a in &e.accesses {
                if let AccessKind::Write {
                    vis: Visibility::Immediate,
                    ..
                } = a.kind
                {
                    assert!(
                        !a.addr.region.is_shared_state(),
                        "{k}: immediate write to shared state at `{}`",
                        a.site
                    );
                }
            }
        }
    }

    #[test]
    fn cross_check_is_the_only_immediate_kernel() {
        let r = shipped_effects();
        let immediate: Vec<_> = r
            .iter()
            .filter(|e| e.staging == StagingClass::Immediate)
            .map(|e| e.kernel)
            .collect();
        assert_eq!(immediate, vec![KERNEL_CROSS_CHECK]);
        // ... and it is the only sequential-order kernel.
        let seq: Vec<_> = r
            .iter()
            .filter(|e| e.order == LaneOrder::Sequential)
            .map(|e| e.kernel)
            .collect();
        assert_eq!(seq, vec![KERNEL_CROSS_CHECK]);
    }

    #[test]
    fn table_interval_matches_table_slot_carving() {
        // The symbolic interval 2·off(v) + 0..2·deg(v) must be exactly
        // what TableSlot::for_vertex reserves.
        for (off, deg) in [(0, 0), (0, 3), (5, 1), (17, 42)] {
            let (start, reserve) = table_reservation(off, deg);
            assert_eq!(start, 2 * off);
            assert_eq!(reserve, 2 * deg);
        }
    }

    #[test]
    fn declared_probe_bound_matches_enforcement() {
        match declared_probe_bound() {
            ProbeBound::Bounded {
                budget,
                fallback_linear,
            } => {
                assert!(fallback_linear);
                // The enforced per-table budget never exceeds the
                // declared one, for any capacity.
                for p1 in [0usize, 1, 2, 31, 32, 33, 1024] {
                    assert!(probe_budget(p1) <= budget);
                    assert_eq!(
                        enforced_probe_cap(p1),
                        (probe_budget(p1) + p1 as u32) as u64
                    );
                }
            }
            other => panic!("expected Bounded, got {other:?}"),
        }
    }
}
