//! Weight-constrained graph coarsening by label propagation.
//!
//! One of the applications the paper's introduction cites for LPA
//! (Valejo et al. 2020, "A coarsening method for large multilevel
//! graphs"): collapse a graph into a hierarchy of successively smaller
//! graphs, where each super-vertex is an LPA community whose total
//! *vertex weight* is capped — the user controls the size of the
//! coarsest graph and the balance of super-vertices, which is what makes
//! the hierarchy usable for multilevel partitioning and drawing.
//!
//! Each level runs a constrained LPA (a vertex may only adopt a
//! neighbour's label if the merged super-vertex stays under the cap),
//! aggregates, and repeats until the target size or a fixed point.

use crate::seq::{scramble, shuffle_candidates};
use nulpa_graph::{Csr, DuplicatePolicy, GraphBuilder, VertexId};
use nulpa_metrics::compact_labels;
use std::collections::BTreeMap;

/// Coarsening configuration.
#[derive(Clone, Copy, Debug)]
pub struct CoarsenConfig {
    /// Stop when the coarse graph has at most this many vertices.
    pub target_vertices: usize,
    /// Maximum total vertex weight of a super-vertex, as a multiple of the
    /// average (2.0 = a super-vertex may hold at most twice the fair
    /// share of `|V| / target_vertices` original vertices).
    pub max_weight_factor: f64,
    /// LPA sweeps per level.
    pub sweeps_per_level: u32,
    /// Maximum levels.
    pub max_levels: u32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig {
            target_vertices: 64,
            max_weight_factor: 2.0,
            sweeps_per_level: 4,
            max_levels: 20,
            seed: 0,
        }
    }
}

/// One level of the hierarchy.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse graph (edge weights are summed fine-edge weights; self
    /// loops carry intra-super-vertex weight).
    pub graph: Csr,
    /// For each vertex of the *previous* (finer) level, its super-vertex
    /// in this level's graph.
    pub mapping: Vec<VertexId>,
    /// Total original-vertex weight of every super-vertex.
    pub vertex_weights: Vec<f64>,
}

/// The coarsening hierarchy, finest to coarsest.
#[derive(Clone, Debug)]
pub struct CoarsenResult {
    /// Levels in coarsening order (`levels[0].mapping` indexes the input).
    pub levels: Vec<CoarseLevel>,
}

impl CoarsenResult {
    /// The coarsest graph (the input graph if no coarsening happened).
    pub fn coarsest(&self) -> Option<&Csr> {
        self.levels.last().map(|l| &l.graph)
    }

    /// Project labels on the coarsest graph back to the original vertices.
    pub fn project(&self, coarse_labels: &[VertexId]) -> Vec<VertexId> {
        let Some(first) = self.levels.first() else {
            return coarse_labels.to_vec();
        };
        // compose mappings: original -> level0 -> ... -> coarsest
        let mut map: Vec<VertexId> = first.mapping.clone();
        for level in &self.levels[1..] {
            for m in map.iter_mut() {
                *m = level.mapping[*m as usize];
            }
        }
        map.iter().map(|&c| coarse_labels[c as usize]).collect()
    }
}

/// Coarsen `g` by weight-constrained label propagation.
pub fn coarsen_lpa(g: &Csr, config: &CoarsenConfig) -> CoarsenResult {
    assert!(config.target_vertices >= 1);
    assert!(config.max_weight_factor >= 1.0);
    let n0 = g.num_vertices();
    let cap = (config.max_weight_factor * n0 as f64 / config.target_vertices as f64).max(1.0);

    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut weights: Vec<f64> = vec![1.0; n0];

    for level in 0..config.max_levels {
        if current.num_vertices() <= config.target_vertices {
            break;
        }
        let labels = constrained_lpa(
            &current,
            &weights,
            cap,
            config.sweeps_per_level,
            config.seed ^ (level as u64) << 16,
        );
        let (mapping, k) = compact_labels(&labels);
        if k == current.num_vertices() {
            break; // no reduction possible under the cap
        }

        // aggregate graph and vertex weights
        let mut b = GraphBuilder::new(k)
            .keep_self_loops(true)
            .duplicate_policy(DuplicatePolicy::SumWeights)
            .reserve(current.num_edges().min(4 * k));
        for u in current.vertices() {
            for (v, w) in current.neighbors(u) {
                b.push_edge(mapping[u as usize], mapping[v as usize], w);
            }
        }
        let coarse = b.build();
        let mut wts = vec![0.0f64; k];
        for (u, &m) in mapping.iter().enumerate() {
            wts[m as usize] += weights[u];
        }
        levels.push(CoarseLevel {
            graph: coarse.clone(),
            mapping,
            vertex_weights: wts.clone(),
        });
        current = coarse;
        weights = wts;
    }

    CoarsenResult { levels }
}

/// One level of weight-constrained LPA: labels are super-vertex seeds;
/// adopting a label is allowed only while the receiving super-vertex's
/// accumulated weight stays under `cap`.
fn constrained_lpa(
    g: &Csr,
    vertex_weights: &[f64],
    cap: f64,
    sweeps: u32,
    seed: u64,
) -> Vec<VertexId> {
    let n = g.num_vertices();
    let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
    let mut group_weight: Vec<f64> = vertex_weights.to_vec();

    let mut order: Vec<VertexId> = g.vertices().filter(|&v| g.degree(v) > 0).collect();
    let mut acc: BTreeMap<VertexId, f64> = BTreeMap::new();

    for sweep in 0..sweeps {
        shuffle_candidates(&mut order, sweep);
        let _ = seed;
        let mut moves = 0usize;
        for &v in &order {
            let cur = labels[v as usize];
            let w_v = vertex_weights[v as usize];
            acc.clear();
            for (j, w) in g.neighbors(v) {
                if j == v {
                    continue;
                }
                *acc.entry(labels[j as usize]).or_insert(0.0) += w as f64;
            }
            // strongest admissible label
            let mut best: Option<(VertexId, f64)> = None;
            for (&c, &w) in &acc {
                if c == cur {
                    continue;
                }
                if group_weight[c as usize] + w_v > cap {
                    continue;
                }
                match best {
                    Some((bc, bw)) if w > bw || (w == bw && scramble(c) < scramble(bc)) => {
                        best = Some((c, w))
                    }
                    None => best = Some((c, w)),
                    _ => {}
                }
            }
            // move only if strictly better connected than staying
            let stay = acc.get(&cur).copied().unwrap_or(0.0);
            if let Some((c, w)) = best {
                if w > stay {
                    group_weight[cur as usize] -= w_v;
                    group_weight[c as usize] += w_v;
                    labels[v as usize] = c;
                    moves += 1;
                }
            }
        }
        if moves == 0 {
            break;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{caveman_weighted, grid2d, web_crawl};

    fn cfg(target: usize) -> CoarsenConfig {
        CoarsenConfig {
            target_vertices: target,
            ..Default::default()
        }
    }

    #[test]
    fn coarsens_to_target() {
        let g = grid2d(30, 30, 1.0, 0);
        let r = coarsen_lpa(&g, &cfg(50));
        let coarsest = r.coarsest().unwrap();
        assert!(
            coarsest.num_vertices() <= 200,
            "{}",
            coarsest.num_vertices()
        );
        assert!(coarsest.num_vertices() < g.num_vertices() / 4);
    }

    #[test]
    fn weight_cap_respected_on_every_level() {
        let g = web_crawl(2000, 6, 0.1, 1);
        let c = cfg(40);
        let cap = c.max_weight_factor * g.num_vertices() as f64 / c.target_vertices as f64;
        let r = coarsen_lpa(&g, &c);
        for (i, level) in r.levels.iter().enumerate() {
            for (sv, &w) in level.vertex_weights.iter().enumerate() {
                assert!(w <= cap + 1e-9, "level {i} super-vertex {sv}: {w} > {cap}");
            }
        }
    }

    #[test]
    fn total_weight_preserved() {
        let g = caveman_weighted(6, 8, 1.0);
        let r = coarsen_lpa(&g, &cfg(6));
        for level in &r.levels {
            assert!((level.graph.total_weight() - g.total_weight()).abs() < 1e-3);
            let total_w: f64 = level.vertex_weights.iter().sum();
            assert!((total_w - g.num_vertices() as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn projection_roundtrip() {
        let g = caveman_weighted(4, 8, 0.5);
        let r = coarsen_lpa(&g, &cfg(4));
        let coarsest = r.coarsest().unwrap();
        // label every coarse vertex with itself; the projection must give
        // every original vertex a valid coarse id and respect the mapping
        let ids: Vec<VertexId> = (0..coarsest.num_vertices() as VertexId).collect();
        let projected = r.project(&ids);
        assert_eq!(projected.len(), g.num_vertices());
        assert!(projected
            .iter()
            .all(|&p| (p as usize) < coarsest.num_vertices()));
        // vertices of the same clique should mostly land together
        let same = (0..8).filter(|&v| projected[v] == projected[0]).count();
        assert!(same >= 4, "clique scattered: {same}/8 together");
    }

    #[test]
    fn empty_hierarchy_for_small_graph() {
        let g = caveman_weighted(2, 4, 0.5);
        let r = coarsen_lpa(&g, &cfg(100));
        assert!(r.levels.is_empty());
        assert!(r.coarsest().is_none());
        // projection with no levels is the identity on the given labels
        assert_eq!(r.project(&[7, 7, 7, 7, 7, 7, 7, 7]), vec![7; 8]);
    }

    #[test]
    fn deterministic() {
        let g = web_crawl(1000, 5, 0.1, 2);
        let a = coarsen_lpa(&g, &cfg(30));
        let b = coarsen_lpa(&g, &cfg(30));
        assert_eq!(a.levels.len(), b.levels.len());
        for (x, y) in a.levels.iter().zip(&b.levels) {
            assert_eq!(x.mapping, y.mapping);
            assert_eq!(x.graph, y.graph);
        }
    }
}
