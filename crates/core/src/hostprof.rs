//! Host-parallel execution profiling for the native fast path.
//!
//! The fast path (`crates/core/src/fastpath.rs`) interleaves a parallel
//! speculative-compute phase with a sequential repair-commit phase per
//! cache block; where multi-core time actually goes — thread imbalance,
//! cursor contention, repair serialization — is invisible from the
//! outside. This module is the measurement side: a per-thread recorder
//! threaded through the claim/compute/commit loops that captures
//!
//! * **per-thread span timelines** — one `compute` span per (thread,
//!   block) and one `commit` span per block on the lead thread, in
//!   nanoseconds since the run started, renderable as a Chrome trace;
//! * **per-bucket work counters** — vertices and edges scanned, chunks
//!   claimed, and cursor-CAS retries (a direct contention proxy) split
//!   by the low/mid/high degree buckets;
//! * **per-iteration repair statistics** — how many speculative picks
//!   the sequential commit had to recompute and how many blocks
//!   serialized behind the lead, plus commit wall time.
//!
//! Everything here is **provably neutral**: with the `hostprof` cargo
//! feature off the recorder types are zero-sized no-ops (the claim path
//! compiles back to the exact `fetch_add` the unprofiled build uses),
//! and even with the feature on nothing is timed or counted until a run
//! is started through [`crate::lpa_native_hostprof`] — the committed
//! label trajectory is bit-identical either way, because speculative
//! picks are pure functions of block-frozen labels and the claim
//! mechanism only decides *which thread* computes a pick, never its
//! value. Aggregation, rendering, and the regression gate live in
//! `nulpa-telemetry`'s `hostprof` module; this side stays plain data.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Human-readable names of the three degree buckets, indexable by the
/// bucket id used throughout the fast path.
pub const BUCKET_NAMES: [&str; 3] = ["low", "mid", "high"];

/// Work attributed to one degree bucket by one thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BucketCounters {
    /// Candidate vertices whose pick this thread computed.
    pub vertices: u64,
    /// Stored (directed) edges scanned while computing those picks.
    pub edges: u64,
    /// Work chunks claimed off the bucket's shared cursor.
    pub chunks: u64,
    /// Failed `compare_exchange_weak` attempts while claiming — each one
    /// means another thread won the cursor word in the same window.
    pub cas_retries: u64,
}

impl BucketCounters {
    /// Accumulate another thread's counters into this one.
    pub fn merge(&mut self, other: &BucketCounters) {
        self.vertices += other.vertices;
        self.edges += other.edges;
        self.chunks += other.chunks;
        self.cas_retries += other.cas_retries;
    }
}

/// What a recorded span covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Parallel speculative-pick phase of one block.
    Compute,
    /// Sequential repair-commit phase of one block (lead thread only).
    Commit,
}

/// One timed span on a thread's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    /// Iteration the block belonged to.
    pub iter: u32,
    /// Block index within the iteration.
    pub block: u32,
    /// Phase covered.
    pub kind: SpanKind,
    /// Start, in nanoseconds since the run began.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything one thread recorded over a run. Thread 0 is the lead
/// (coordinating) thread; only it carries `Commit` spans.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadProfData {
    /// Span timeline in emission order (monotone `start_ns`).
    pub spans: Vec<SpanRec>,
    /// Per-bucket work counters (indexed like [`BUCKET_NAMES`]).
    pub buckets: [BucketCounters; 3],
    /// Total time inside spans, in nanoseconds.
    pub busy_ns: u64,
}

/// Repair statistics for one committed iteration. Every field except
/// `commit_ns` is a pure function of the candidate schedule, so these
/// records are deterministic *and* identical at any thread count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterRepairStats {
    /// Iteration index.
    pub iter: u32,
    /// Commit blocks the candidate list was cut into.
    pub blocks: u32,
    /// Candidates swept (the iteration's active set).
    pub candidates: u64,
    /// Speculative picks the sequential commit recomputed because a
    /// same-block neighbour moved earlier in the block.
    pub repaired: u64,
    /// Blocks that needed at least one repair — work serialized behind
    /// the lead thread.
    pub repair_blocks: u32,
    /// Label moves committed (the iteration's ΔN).
    pub committed: u64,
    /// Wall time of the sequential commit phase, in nanoseconds.
    pub commit_ns: u64,
}

impl IterRepairStats {
    /// True when every deterministic field matches (`commit_ns`, the one
    /// wall-clock field, is ignored) — the thread-invariance predicate.
    pub fn same_schedule(&self, other: &IterRepairStats) -> bool {
        self.iter == other.iter
            && self.blocks == other.blocks
            && self.candidates == other.candidates
            && self.repaired == other.repaired
            && self.repair_blocks == other.repair_blocks
            && self.committed == other.committed
    }
}

/// The raw output of one profiled `lpa_native` run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostProfData {
    /// Resolved thread count the run used.
    pub threads: usize,
    /// Wall time from fast-path creation to collection, in nanoseconds.
    pub wall_ns: u64,
    /// One timeline per thread (index 0 is the lead).
    pub per_thread: Vec<ThreadProfData>,
    /// Per-iteration repair statistics, in iteration order.
    pub iters: Vec<IterRepairStats>,
}

impl HostProfData {
    /// Mean per-thread busy time in nanoseconds (0 when empty).
    pub fn busy_ns_mean(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 0.0;
        }
        self.per_thread
            .iter()
            .map(|t| t.busy_ns as f64)
            .sum::<f64>()
            / self.per_thread.len() as f64
    }

    /// Imbalance metric: max over mean per-thread busy time. 1.0 means
    /// perfectly balanced; `t` means the slowest thread carried `t`× the
    /// average load. Returns 1.0 when nothing was recorded.
    pub fn imbalance(&self) -> f64 {
        let mean = self.busy_ns_mean();
        if mean <= 0.0 {
            return 1.0;
        }
        let max = self.per_thread.iter().map(|t| t.busy_ns).max().unwrap_or(0) as f64;
        max / mean
    }

    /// Fraction of candidate picks the sequential commit recomputed
    /// (0 when no candidates were swept). Deterministic and
    /// thread-count-invariant — the regression-gate metric.
    pub fn repair_rate(&self) -> f64 {
        let cands: u64 = self.iters.iter().map(|i| i.candidates).sum();
        if cands == 0 {
            return 0.0;
        }
        self.iters.iter().map(|i| i.repaired).sum::<u64>() as f64 / cands as f64
    }

    /// Per-bucket counters summed over all threads.
    pub fn bucket_totals(&self) -> [BucketCounters; 3] {
        let mut out: [BucketCounters; 3] = Default::default();
        for t in &self.per_thread {
            for (acc, b) in out.iter_mut().zip(t.buckets.iter()) {
                acc.merge(b);
            }
        }
        out
    }

    /// Total cursor-CAS retries across threads and buckets.
    pub fn cas_retries(&self) -> u64 {
        self.bucket_totals().iter().map(|b| b.cas_retries).sum()
    }
}

#[cfg(feature = "hostprof")]
pub(crate) use real::{RunProf, ThreadProf};

#[cfg(not(feature = "hostprof"))]
pub(crate) use noop::{RunProf, ThreadProf};

/// The recording implementation (cargo feature `hostprof` on). Every
/// method is gated on the run-time `enabled` flag so a feature-on but
/// unprofiled run does no timing, no counting, and claims cursors with
/// the same `fetch_add` as the feature-off build.
#[cfg(feature = "hostprof")]
mod real {
    use super::*;
    use std::time::Instant;

    /// Per-thread recorder handed to the claim/compute/commit loops.
    pub(crate) struct ThreadProf {
        enabled: bool,
        t0: Instant,
        span_start: u64,
        data: ThreadProfData,
    }

    impl ThreadProf {
        #[inline]
        pub(crate) fn enabled(&self) -> bool {
            self.enabled
        }

        /// Open a span (no-op when disabled).
        #[inline]
        pub(crate) fn begin_span(&mut self) {
            if self.enabled {
                self.span_start = self.t0.elapsed().as_nanos() as u64;
            }
        }

        /// Close the span opened by `begin_span`; returns its duration in
        /// nanoseconds (0 when disabled).
        #[inline]
        pub(crate) fn end_span(&mut self, kind: SpanKind, iter: u32, block: u32) -> u64 {
            if !self.enabled {
                return 0;
            }
            let now = self.t0.elapsed().as_nanos() as u64;
            let dur = now.saturating_sub(self.span_start);
            self.data.spans.push(SpanRec {
                iter,
                block,
                kind,
                start_ns: self.span_start,
                dur_ns: dur,
            });
            self.data.busy_ns += dur;
            dur
        }

        /// Claim `chunk` indices off a bucket cursor. Disabled (and
        /// feature-off) runs use a single `fetch_add`; profiled runs use
        /// a CAS loop whose failures count cursor contention. Both claim
        /// the same ranges — only the mechanism differs, and picks are
        /// pure functions of block-frozen labels, so this cannot change
        /// any result.
        #[inline]
        pub(crate) fn claim(
            &mut self,
            cursor: &AtomicUsize,
            bucket: usize,
            chunk: usize,
            len: usize,
        ) -> usize {
            if !self.enabled {
                return cursor.fetch_add(chunk, Ordering::Relaxed);
            }
            let mut cur = cursor.load(Ordering::Relaxed);
            loop {
                if cur >= len {
                    // Exhausted: leave the cursor saturated, as fetch_add
                    // would have, and report the out-of-range start.
                    return cur;
                }
                match cursor.compare_exchange_weak(
                    cur,
                    cur + chunk,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return cur,
                    Err(seen) => {
                        self.data.buckets[bucket].cas_retries += 1;
                        cur = seen;
                    }
                }
            }
        }

        /// Attribute one claimed chunk's work to a bucket.
        #[inline]
        pub(crate) fn count_chunk(&mut self, bucket: usize, vertices: u64, edges: u64) {
            let b = &mut self.data.buckets[bucket];
            b.vertices += vertices;
            b.edges += edges;
            b.chunks += 1;
        }
    }

    /// Run-level recorder owned by the fast-path state.
    pub(crate) struct RunProf {
        enabled: bool,
        t0: Instant,
        iters: Vec<IterRepairStats>,
    }

    impl RunProf {
        pub(crate) fn new(enabled: bool) -> Self {
            RunProf {
                enabled,
                t0: Instant::now(),
                iters: Vec::new(),
            }
        }

        /// One recorder per thread, all sharing the run's time origin.
        pub(crate) fn thread_recorders(&self, threads: usize) -> Vec<ThreadProf> {
            (0..threads)
                .map(|_| ThreadProf {
                    enabled: self.enabled,
                    t0: self.t0,
                    span_start: 0,
                    data: ThreadProfData::default(),
                })
                .collect()
        }

        /// Record one iteration's repair statistics (no-op when
        /// disabled).
        #[allow(clippy::too_many_arguments)]
        pub(crate) fn record_iter(
            &mut self,
            iter: u32,
            blocks: u32,
            candidates: u64,
            repaired: u64,
            repair_blocks: u32,
            committed: u64,
            commit_ns: u64,
        ) {
            if self.enabled {
                self.iters.push(IterRepairStats {
                    iter,
                    blocks,
                    candidates,
                    repaired,
                    repair_blocks,
                    committed,
                    commit_ns,
                });
            }
        }

        /// Assemble the run's profile; `None` when profiling was off.
        pub(crate) fn collect(&mut self, threads: &mut [ThreadProf]) -> Option<HostProfData> {
            if !self.enabled {
                return None;
            }
            Some(HostProfData {
                threads: threads.len(),
                wall_ns: self.t0.elapsed().as_nanos() as u64,
                per_thread: threads
                    .iter_mut()
                    .map(|t| std::mem::take(&mut t.data))
                    .collect(),
                iters: std::mem::take(&mut self.iters),
            })
        }
    }
}

/// Zero-sized mirror used when the `hostprof` feature is compiled out:
/// the API is identical, every recording call vanishes, and `claim` is
/// exactly the unprofiled `fetch_add`.
#[cfg(not(feature = "hostprof"))]
mod noop {
    use super::*;

    pub(crate) struct ThreadProf;

    impl ThreadProf {
        #[inline]
        pub(crate) fn enabled(&self) -> bool {
            false
        }

        #[inline]
        pub(crate) fn begin_span(&mut self) {}

        #[inline]
        pub(crate) fn end_span(&mut self, _kind: SpanKind, _iter: u32, _block: u32) -> u64 {
            0
        }

        #[inline]
        pub(crate) fn claim(
            &mut self,
            cursor: &AtomicUsize,
            _bucket: usize,
            chunk: usize,
            _len: usize,
        ) -> usize {
            cursor.fetch_add(chunk, Ordering::Relaxed)
        }

        #[inline]
        pub(crate) fn count_chunk(&mut self, _bucket: usize, _vertices: u64, _edges: u64) {}
    }

    pub(crate) struct RunProf;

    impl RunProf {
        pub(crate) fn new(_enabled: bool) -> Self {
            RunProf
        }

        pub(crate) fn thread_recorders(&self, threads: usize) -> Vec<ThreadProf> {
            (0..threads).map(|_| ThreadProf).collect()
        }

        #[allow(clippy::too_many_arguments)]
        pub(crate) fn record_iter(
            &mut self,
            _iter: u32,
            _blocks: u32,
            _candidates: u64,
            _repaired: u64,
            _repair_blocks: u32,
            _committed: u64,
            _commit_ns: u64,
        ) {
        }

        pub(crate) fn collect(&mut self, _threads: &mut [ThreadProf]) -> Option<HostProfData> {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with_busy(busy: &[u64]) -> HostProfData {
        HostProfData {
            threads: busy.len(),
            wall_ns: 1_000,
            per_thread: busy
                .iter()
                .map(|&b| ThreadProfData {
                    busy_ns: b,
                    ..Default::default()
                })
                .collect(),
            iters: Vec::new(),
        }
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(data_with_busy(&[100, 100]).imbalance(), 1.0);
        let d = data_with_busy(&[300, 100]);
        assert!((d.imbalance() - 1.5).abs() < 1e-12);
        // degenerate cases collapse to "balanced"
        assert_eq!(data_with_busy(&[]).imbalance(), 1.0);
        assert_eq!(data_with_busy(&[0, 0]).imbalance(), 1.0);
    }

    #[test]
    fn repair_rate_over_all_iterations() {
        let mut d = data_with_busy(&[1]);
        assert_eq!(d.repair_rate(), 0.0);
        for (iter, (cands, rep)) in [(100u64, 5u64), (50, 0)].into_iter().enumerate() {
            d.iters.push(IterRepairStats {
                iter: iter as u32,
                blocks: 4,
                candidates: cands,
                repaired: rep,
                repair_blocks: (rep > 0) as u32,
                committed: 10,
                commit_ns: 123,
            });
        }
        assert!((d.repair_rate() - 5.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_totals_merge_across_threads() {
        let mut d = data_with_busy(&[1, 2]);
        d.per_thread[0].buckets[0] = BucketCounters {
            vertices: 10,
            edges: 20,
            chunks: 2,
            cas_retries: 1,
        };
        d.per_thread[1].buckets[0] = BucketCounters {
            vertices: 5,
            edges: 8,
            chunks: 1,
            cas_retries: 3,
        };
        let t = d.bucket_totals();
        assert_eq!(t[0].vertices, 15);
        assert_eq!(t[0].edges, 28);
        assert_eq!(t[0].chunks, 3);
        assert_eq!(d.cas_retries(), 4);
    }

    #[test]
    fn same_schedule_ignores_commit_wall_time() {
        let a = IterRepairStats {
            iter: 0,
            blocks: 8,
            candidates: 100,
            repaired: 3,
            repair_blocks: 2,
            committed: 40,
            commit_ns: 1_000,
        };
        let mut b = a;
        b.commit_ns = 999_999;
        assert!(a.same_schedule(&b));
        b.repaired = 4;
        assert!(!a.same_schedule(&b));
    }
}
