//! Word-address layout of the simulated global memory.
//!
//! One flat address space holds, in order: vertex labels (`n` words),
//! processed flags (`n`), CSR edge targets (`m`), CSR edge weights
//! (`m`), hashtable keys (`2m`), hashtable values (`2m`), and a single
//! dedicated word for the global ΔN counter. The kernels in
//! [`crate::gpu`] charge every access against this map so the locality
//! model sees realistic cache-line reuse, and the static verifier
//! (`nulpa-check`) cross-validates its symbolic region model
//! ([`nulpa_simt::effects::Region`]) against the concrete layout here.

use nulpa_hashtab::{TableAddr, TableSlot};
use nulpa_simt::effects::Region;

/// Word-address layout of the simulated global memory, for the locality
/// model. Regions in order: labels, processed flags, CSR targets, CSR
/// weights, hash keys, hash values, and the one-word ΔN counter.
#[derive(Clone, Copy, Debug)]
pub struct AddrMap {
    /// Start of the `n`-word label region (always 0).
    pub labels: usize,
    /// Start of the `n`-word processed-flag region.
    pub processed: usize,
    /// Start of the `m`-word CSR target region.
    pub targets: usize,
    /// Start of the `m`-word CSR weight region.
    pub weights: usize,
    /// Start of the `2m`-word hashtable key region.
    pub keys: usize,
    /// Start of the `2m`-word hashtable value region.
    pub values: usize,
    /// Dedicated cell for the global ΔN counter. It must not alias any
    /// per-vertex region: charging the ΔN atomic at `processed` (as an
    /// earlier revision did) made it share a cache line with vertex 0's
    /// processed flag, mixing a plain write and an atomic on the same
    /// simulated cell and skewing the locality model.
    pub dn: usize,
    n: usize,
    m: usize,
}

impl AddrMap {
    /// Layout for a graph with `n` vertices and `m` stored directed edges.
    pub fn new(n: usize, m: usize) -> Self {
        let labels = 0;
        let processed = labels + n;
        let targets = processed + n;
        let weights = targets + m;
        let keys = weights + m;
        let values = keys + 2 * m;
        let dn = values + 2 * m;
        AddrMap {
            labels,
            processed,
            targets,
            weights,
            keys,
            values,
            dn,
            n,
            m,
        }
    }

    /// Global addresses of a per-vertex hashtable slot.
    pub fn table(&self, slot: &TableSlot) -> TableAddr {
        TableAddr {
            keys: self.keys + slot.start,
            values: self.values + slot.start,
            shared_space: false,
        }
    }

    /// Total extent of the address space in words (one past the ΔN cell).
    pub fn len(&self) -> usize {
        self.dn + 1
    }

    /// `true` only for the degenerate empty graph (`n = 0`, `m = 0`),
    /// where the only cell is the ΔN word.
    pub fn is_empty(&self) -> bool {
        self.n == 0 && self.m == 0
    }

    /// `[start, start + len)` of a symbolic region in this concrete
    /// layout. This is what ties the static verifier's symbolic model to
    /// the addresses the kernels actually charge:
    /// `nulpa-check` asserts `region_range(r).len() == r.extent(n, m)`
    /// and that the regions tile `[0, len())` without gaps or overlap.
    /// [`Region::Shared`] has no global range and returns an empty range
    /// at the end of the space.
    pub fn region_range(&self, r: Region) -> std::ops::Range<usize> {
        let (n, m) = (self.n, self.m);
        match r {
            Region::Labels => self.labels..self.labels + n,
            Region::Processed => self.processed..self.processed + n,
            Region::Targets => self.targets..self.targets + m,
            Region::Weights => self.weights..self.weights + m,
            Region::Keys => self.keys..self.keys + 2 * m,
            Region::Values => self.values..self.values + 2 * m,
            Region::Dn => self.dn..self.dn + 1,
            Region::Shared => self.len()..self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_simt::effects::Region;

    #[test]
    fn regions_tile_the_space_in_order() {
        for (n, m) in [(0, 0), (1, 0), (100, 400), (7, 13)] {
            let a = AddrMap::new(n, m);
            let mut next = 0usize;
            for r in Region::GLOBAL {
                let range = a.region_range(r);
                assert_eq!(
                    range.start,
                    next,
                    "{} starts late for n={n} m={m}",
                    r.name()
                );
                assert_eq!(
                    range.len(),
                    r.extent(n, m),
                    "{} extent mismatch for n={n} m={m}",
                    r.name()
                );
                next = range.end;
            }
            assert_eq!(next, a.len());
        }
    }

    #[test]
    fn zero_length_regions_collapse_cleanly() {
        // An edgeless graph: the four m-scaled regions are empty and the
        // adjacent regions become back-to-back. Empty ranges must not be
        // treated as overlapping anything.
        let a = AddrMap::new(5, 0);
        assert_eq!(a.region_range(Region::Targets).len(), 0);
        assert_eq!(a.region_range(Region::Keys).len(), 0);
        assert_eq!(a.targets, a.weights);
        assert_eq!(a.weights, a.keys);
        assert_eq!(a.dn, 2 * 5);
        assert_eq!(a.len(), 2 * 5 + 1);
        assert!(!a.is_empty());
        assert!(AddrMap::new(0, 0).is_empty());
    }

    #[test]
    fn dn_word_is_not_vertex_zero_of_any_region() {
        // The ΔN counter once aliased processed[0]; it must sit strictly
        // after every region, including in the degenerate n=1, m=0 layout
        // where most region starts coincide.
        for (n, m) in [(1, 0), (1, 1), (100, 400)] {
            let a = AddrMap::new(n, m);
            for r in Region::GLOBAL {
                if r == Region::Dn {
                    continue;
                }
                let range = a.region_range(r);
                assert!(
                    !range.contains(&a.dn),
                    "dn aliases {} for n={n} m={m}",
                    r.name()
                );
            }
            assert_ne!(a.dn, a.processed, "dn must differ from processed[0]");
        }
    }

    #[test]
    fn shared_tables_leave_global_layout_untouched() {
        // Block-shared (and thread-shared ablation) tables keep their
        // *offsets* from the global map but flip the address space — the
        // global key/value regions must be unaffected.
        use nulpa_hashtab::TableSlot;
        let a = AddrMap::new(10, 40);
        let slot = TableSlot::for_vertex(8, 5);
        let global = a.table(&slot);
        let shared = a.table(&slot).in_shared_memory();
        assert!(!global.shared_space);
        assert!(shared.shared_space);
        assert_eq!(global.keys, shared.keys);
        assert_eq!(global.values, shared.values);
        assert_eq!(global.keys, a.keys + slot.start);
        assert_eq!(global.values, a.values + slot.start);
        // The slot's key range stays inside the keys region.
        let keys = a.region_range(Region::Keys);
        assert!(global.keys >= keys.start);
        assert!(global.keys + slot.capacity <= keys.end);
    }

    #[test]
    fn table_slots_of_distinct_vertices_are_disjoint() {
        // The CSR-carving property the effect solver's interval oracle
        // relies on: for offsets off(v) + deg(v) <= off(v'), the
        // 2·off-based reservations never overlap.
        let a = AddrMap::new(4, 10);
        // Degrees 3, 1, 6 at offsets 0, 3, 4 (CSR-consistent).
        let slots = [
            TableSlot::for_vertex(0, 3),
            TableSlot::for_vertex(3, 1),
            TableSlot::for_vertex(4, 6),
        ];
        for (i, s) in slots.iter().enumerate() {
            for t in slots.iter().skip(i + 1) {
                let (a0, a1) = (a.table(s).keys, a.table(s).keys + s.reserve);
                let (b0, b1) = (a.table(t).keys, a.table(t).keys + t.reserve);
                assert!(
                    a1 <= b0 || b1 <= a0,
                    "slots {a0}..{a1} and {b0}..{b1} overlap"
                );
            }
        }
    }
}
