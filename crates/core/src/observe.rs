//! Per-iteration observation hooks for host-side telemetry.
//!
//! The three LPA backends ([`crate::lpa_seq`], [`crate::lpa_native`],
//! [`crate::lpa_gpu`]) expose `_observed` entry points that call an
//! [`IterObserver`] once per completed iteration with the post-iteration
//! label array. This is the attachment point for convergence telemetry
//! (ΔN trajectories, active-vertex fraction, incremental modularity —
//! see the `nulpa-telemetry` crate) without entangling the algorithm
//! crates with the metrics layer.
//!
//! Observation is strictly read-only and gated: when
//! [`IterObserver::is_enabled`] returns `false` (the [`NullObserver`]
//! default), the backends skip the label snapshot entirely, so an
//! unobserved run pays one virtual call per iteration and nothing else.
//! The neutrality tests assert byte-identical labels, stats, and trace
//! output with and without an observer attached.

use nulpa_graph::VertexId;

/// Receives one callback per completed LPA iteration.
pub trait IterObserver {
    /// `false` skips snapshotting and the [`Self::on_iteration`] call —
    /// the backends check this once per iteration.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Called after iteration `iter` (0-based) has fully committed,
    /// including any Cross-Check revert pass.
    ///
    /// * `changed` — vertices whose label changed this iteration (ΔN,
    ///   net of Cross-Check reverts; matches `changed_per_iter`).
    /// * `active` — candidate vertices processed this iteration (the
    ///   pruned work set).
    /// * `scanned` — vertices the iteration had to *inspect* to build
    ///   that work set: |V| for a dense sweep, the worklist length for a
    ///   frontier iteration. `active <= scanned` always holds.
    /// * `labels` — the committed label of every vertex after the
    ///   iteration.
    fn on_iteration(
        &mut self,
        iter: u32,
        changed: usize,
        active: usize,
        scanned: usize,
        labels: &[VertexId],
    );
}

/// The do-nothing observer: reports disabled, so backends skip all
/// observation work.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl IterObserver for NullObserver {
    fn is_enabled(&self) -> bool {
        false
    }
    fn on_iteration(
        &mut self,
        _iter: u32,
        _changed: usize,
        _active: usize,
        _scanned: usize,
        _labels: &[VertexId],
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test helper: records every callback.
    pub(crate) struct Recorder {
        pub calls: Vec<(u32, usize, usize, usize, Vec<VertexId>)>,
    }

    impl IterObserver for Recorder {
        fn on_iteration(
            &mut self,
            iter: u32,
            changed: usize,
            active: usize,
            scanned: usize,
            labels: &[VertexId],
        ) {
            self.calls
                .push((iter, changed, active, scanned, labels.to_vec()));
        }
    }

    #[test]
    fn null_observer_is_disabled() {
        assert!(!NullObserver.is_enabled());
    }

    #[test]
    fn recorder_default_is_enabled() {
        let r = Recorder { calls: Vec::new() };
        assert!(r.is_enabled());
    }
}
