//! Degree-bucketed, cache-blocked multi-core fast path for [`crate::lpa_native`].
//!
//! The legacy native path computes each vertex's pick with a per-vertex
//! open-addressing hashtable carved out of two `2|E|` buffers — faithful
//! to the paper's GPU kernel, but memory-hungry and hash-bound on a CPU.
//! This module replaces the hot loop with the layout a host actually
//! wants (DESIGN.md §10):
//!
//! * **Cache blocks** — each iteration's (shuffled) candidate list is cut
//!   into blocks of bounded adjacency volume
//!   ([`nulpa_graph::blocks::candidate_blocks`]), so the CSR words a block
//!   touches stay L2-resident while its vertices are scanned.
//! * **Degree buckets** — within a block, candidates are split into
//!   low/mid/high-degree buckets ([`bucket_partition`]) and threads claim
//!   work per bucket in bucket-matched chunk sizes (large chunks of cheap
//!   vertices, hubs one at a time), so a single hub can never serialize a
//!   chunk of small vertices behind it.
//! * **Flat counts** — label weights accumulate into a dense per-thread
//!   `Vec` indexed by label, reset by generation stamp instead of
//!   clearing (`ScratchPad`). Weight ties are broken exactly like the
//!   legacy table's `hashtableMaxKey` (first maximal slot in probe-built
//!   slot order); the slot layout is only simulated when a tie actually
//!   occurs, so the dense argmax stays hash-free on weighted graphs.
//!
//! **Determinism and trajectory.** The committed trajectory is, by
//! construction, *exactly* the fully sequential asynchronous sweep over
//! the shuffled candidate list — the same schedule the reference backend
//! runs. Threads only ever compute *speculative* picks against the labels
//! frozen at their block's start; the coordinating thread then commits
//! the block sequentially in candidate order, and any candidate whose
//! pick may be stale — one with a neighbour that moved earlier in the
//! same block — is recomputed on the spot against the live labels. A
//! speculative pick is used only when it provably equals the serial one,
//! so labels, ΔN trajectories, and frontier contents are bit-identical at
//! any `--threads N`, while the shuffled order keeps same-block
//! neighbours rare enough that almost all picks are served from the
//! parallel phase.

use crate::config::BucketThresholds;
use crate::hostprof::{HostProfData, RunProf, SpanKind, ThreadProf};
use nulpa_graph::{blocks::candidate_blocks, Csr, VertexId};
use nulpa_hashtab::{
    capacity_for_degree, probe_budget, secondary_prime, HashValue, ProbeSeq, ProbeStrategy,
};
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Work-claim chunk sizes per bucket: low-degree vertices are claimed in
/// large runs (cheap, abundant), mid-degree in short runs, hubs one at a
/// time so one heavyweight vertex never hides a chunk of light ones.
const CHUNK_SIZES: [usize; 3] = [256, 16, 1];

/// Sentinel in the pick array: "no label change for this candidate".
const NO_MOVE: u32 = u32::MAX;

/// Floor for the number of commit blocks per iteration. The probability
/// that a candidate needs the serial repair path grows with the fraction
/// of the graph inside its block, so small graphs are cut into at least
/// this many blocks instead of one L2-sized block.
const MIN_BLOCKS: usize = 64;

/// Floor for the per-block adjacency budget, in stored edges.
const MIN_BLOCK_EDGES: usize = 64;

/// Split an ordered candidate list into low/mid/high-degree index
/// buckets. Returns index lists into `cands`: `degree <= low_max` →
/// bucket 0, `degree <= mid_max` → bucket 1, else bucket 2. The three
/// lists are a disjoint cover of `0..cands.len()` and each preserves
/// candidate order.
pub fn bucket_partition(g: &Csr, cands: &[VertexId], t: BucketThresholds) -> [Vec<usize>; 3] {
    let mut buckets: [Vec<usize>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, &v) in cands.iter().enumerate() {
        let d = g.degree(v) as u32;
        let b = if d <= t.low_max {
            0
        } else if d <= t.mid_max {
            1
        } else {
            2
        };
        buckets[b].push(i);
    }
    buckets
}

/// Per-thread dense label-count scratch with generation-stamped reset:
/// a slot is live only when its stamp equals the current generation, so
/// "clearing" between vertices is one counter bump instead of an O(n)
/// fill. `touched` records the distinct labels seen for the current
/// vertex so the argmax scan is O(distinct), not O(n).
struct ScratchPad<V> {
    counts: Vec<V>,
    stamp: Vec<u32>,
    gen: u32,
    touched: Vec<u32>,
    /// Slot-occupancy simulation for the tie-break path (`slot_keys[s]`
    /// is live iff `slot_stamp[s] == gen`); grown on demand to the
    /// largest table capacity seen.
    slot_keys: Vec<u32>,
    slot_stamp: Vec<u32>,
}

impl<V: HashValue> ScratchPad<V> {
    fn new(n: usize) -> Self {
        ScratchPad {
            counts: vec![V::zero(); n],
            stamp: vec![0; n],
            gen: 0,
            touched: Vec::new(),
            slot_keys: Vec::new(),
            slot_stamp: Vec::new(),
        }
    }

    /// Start accumulating for a new vertex. On the (rare) generation
    /// wrap the stamps are bulk-reset so a stale slot can never alias
    /// the new generation.
    fn begin(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.slot_stamp.fill(0);
            self.gen = 1;
        }
        self.touched.clear();
    }
}

/// Reusable state for the fast path, created once per `lpa_native` run.
pub(crate) struct FastState<V> {
    threads: usize,
    thresholds: BucketThresholds,
    /// Probe strategy of the legacy per-vertex tables — replayed by the
    /// tie-break so both paths pick identical labels.
    probe: ProbeStrategy,
    /// Upper bound on the per-block adjacency budget (L2 sizing).
    block_edges: usize,
    /// Per-candidate speculative pick (label to adopt, or [`NO_MOVE`]),
    /// indexed like the iteration's candidate list. Written by whichever
    /// thread computed the candidate, read by the committing thread after
    /// a barrier.
    picks: Vec<AtomicU32>,
    /// One scratch pad per thread (index 0 is the coordinating thread).
    scratch: Vec<ScratchPad<V>>,
    /// `moved[v] == block_stamp` iff `v`'s label changed during the
    /// block currently being committed — the staleness test for the
    /// serial repair path.
    moved: Vec<u64>,
    block_stamp: u64,
    /// Host-profiling recorders (zero-sized no-ops unless the `hostprof`
    /// feature is on *and* the run asked for a profile): one per thread,
    /// parallel to `scratch`, plus the run-level repair ledger.
    prof: Vec<ThreadProf>,
    runprof: RunProf,
}

/// Frontier-mode bookkeeping threaded through the commit phase; mirrors
/// the legacy path exactly so worklist contents stay bit-identical to
/// the dense sweep.
pub(crate) struct FrontierCtx<'a> {
    pub queued: &'a [AtomicU8],
    pub worklist: &'a mut Vec<VertexId>,
    pub movers: &'a mut Vec<VertexId>,
}

impl<V: HashValue> FastState<V> {
    pub(crate) fn new(
        n: usize,
        threads: usize,
        thresholds: BucketThresholds,
        block_edges: usize,
        probe: ProbeStrategy,
        profile: bool,
    ) -> Self {
        let threads = threads.max(1);
        let runprof = RunProf::new(profile);
        let prof = runprof.thread_recorders(threads);
        FastState {
            threads,
            thresholds,
            probe,
            block_edges: block_edges.max(MIN_BLOCK_EDGES),
            picks: Vec::new(),
            scratch: (0..threads).map(|_| ScratchPad::new(n)).collect(),
            moved: vec![0; n],
            block_stamp: 0,
            prof,
            runprof,
        }
    }

    /// Hand over the recorded host profile (`None` when profiling was
    /// off or compiled out). Call once, after the last iteration.
    pub(crate) fn take_profile(&mut self) -> Option<HostProfData> {
        self.runprof.collect(&mut self.prof)
    }

    /// Per-block adjacency budget for this active set: at most the L2
    /// cap, but small enough to cut at least [`MIN_BLOCKS`] blocks so the
    /// serial repair path stays rare even on small graphs.
    fn budget(&self, total_edges: usize) -> usize {
        (total_edges / MIN_BLOCKS).clamp(MIN_BLOCK_EDGES, self.block_edges)
    }

    /// One LPA iteration over `candidates` (already shuffled); returns
    /// ΔN. Labels and `processed` flags are mutated exactly as a fully
    /// sequential sweep in candidate order would; in frontier mode the
    /// worklist/movers in `fr` are extended in that same deterministic
    /// order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_iteration(
        &mut self,
        g: &Csr,
        iter: u32,
        candidates: &[VertexId],
        pick_less: bool,
        labels: &[AtomicU32],
        processed: &[AtomicU8],
        mut fr: Option<FrontierCtx<'_>>,
    ) -> usize {
        let total_edges: usize = candidates.iter().map(|&v| g.degree(v)).sum();
        let blocks = candidate_blocks(g, candidates, self.budget(total_edges));
        let buckets: Vec<[Vec<usize>; 3]> = blocks
            .iter()
            .map(|b| {
                let mut bk = bucket_partition(g, &candidates[b.clone()], self.thresholds);
                for list in bk.iter_mut() {
                    for i in list.iter_mut() {
                        *i += b.start;
                    }
                }
                bk
            })
            .collect();
        if self.picks.len() < candidates.len() {
            self.picks
                .resize_with(candidates.len(), || AtomicU32::new(NO_MOVE));
        }

        let mut changed = 0usize;
        let mut repaired = 0u64;
        let mut repair_blocks = 0u32;
        let mut commit_ns = 0u64;
        if self.threads == 1 {
            let (lead, _) = self.scratch.split_at_mut(1);
            let lead = &mut lead[0];
            let tp = &mut self.prof[0];
            for (bi, block) in blocks.iter().enumerate() {
                tp.begin_span();
                for (k, idxs) in buckets[bi].iter().enumerate() {
                    for &i in idxs {
                        let pick =
                            compute_pick(g, candidates[i], pick_less, self.probe, labels, lead);
                        self.picks[i].store(pick.unwrap_or(NO_MOVE), Ordering::Relaxed);
                    }
                    // Single-threaded runs drain each bucket in one go —
                    // attribute it as one chunk.
                    if tp.enabled() && !idxs.is_empty() {
                        let edges = idxs
                            .iter()
                            .map(|&i| g.degree(candidates[i]) as u64)
                            .sum::<u64>();
                        tp.count_chunk(k, idxs.len() as u64, edges);
                    }
                }
                tp.end_span(SpanKind::Compute, iter, bi as u32);
                self.block_stamp += 1;
                tp.begin_span();
                let (c, rep) = commit_block(
                    g,
                    candidates,
                    block.clone(),
                    &self.picks,
                    pick_less,
                    self.probe,
                    labels,
                    processed,
                    lead,
                    &mut self.moved,
                    self.block_stamp,
                    &mut fr,
                );
                changed += c;
                repaired += rep;
                repair_blocks += (rep > 0) as u32;
                commit_ns += tp.end_span(SpanKind::Commit, iter, bi as u32);
            }
        } else {
            let t = self.threads;
            let probe = self.probe;
            let cursors: Vec<[AtomicUsize; 3]> =
                blocks.iter().map(|_| Default::default()).collect();
            let barrier = Barrier::new(t);
            let picks = &self.picks[..];
            let blocks = &blocks[..];
            let buckets = &buckets[..];
            let cursors = &cursors[..];
            let barrier = &barrier;
            let moved = &mut self.moved;
            let block_stamp = &mut self.block_stamp;
            let (lead, rest) = self.scratch.split_at_mut(1);
            let lead = &mut lead[0];
            let (plead, prest) = self.prof.split_at_mut(1);
            let plead = &mut plead[0];
            std::thread::scope(|s| {
                for (scratch, tp) in rest.iter_mut().zip(prest.iter_mut()) {
                    s.spawn(move || {
                        for bi in 0..blocks.len() {
                            barrier.wait();
                            tp.begin_span();
                            compute_block(
                                g,
                                candidates,
                                &buckets[bi],
                                &cursors[bi],
                                picks,
                                pick_less,
                                probe,
                                labels,
                                scratch,
                                tp,
                            );
                            tp.end_span(SpanKind::Compute, iter, bi as u32);
                            barrier.wait();
                        }
                    });
                }
                for (bi, block) in blocks.iter().enumerate() {
                    barrier.wait();
                    plead.begin_span();
                    compute_block(
                        g,
                        candidates,
                        &buckets[bi],
                        &cursors[bi],
                        picks,
                        pick_less,
                        probe,
                        labels,
                        lead,
                        plead,
                    );
                    plead.end_span(SpanKind::Compute, iter, bi as u32);
                    // Workers park at the next block's start barrier
                    // while the lead commits, so no thread reads labels
                    // concurrently with the sequential commit below.
                    barrier.wait();
                    *block_stamp += 1;
                    plead.begin_span();
                    let (c, rep) = commit_block(
                        g,
                        candidates,
                        block.clone(),
                        picks,
                        pick_less,
                        probe,
                        labels,
                        processed,
                        lead,
                        moved,
                        *block_stamp,
                        &mut fr,
                    );
                    changed += c;
                    repaired += rep;
                    repair_blocks += (rep > 0) as u32;
                    commit_ns += plead.end_span(SpanKind::Commit, iter, bi as u32);
                }
            });
        }
        self.runprof.record_iter(
            iter,
            blocks.len() as u32,
            candidates.len() as u64,
            repaired,
            repair_blocks,
            changed as u64,
            commit_ns,
        );
        changed
    }
}

/// Claim-and-compute loop for one block: threads pull per-bucket chunks
/// off shared cursors until the block is drained. Every candidate index
/// is computed by exactly one thread; the stored pick is independent of
/// which thread that is (labels are frozen for the whole block).
#[allow(clippy::too_many_arguments)]
fn compute_block<V: HashValue>(
    g: &Csr,
    candidates: &[VertexId],
    buckets: &[Vec<usize>; 3],
    cursors: &[AtomicUsize; 3],
    picks: &[AtomicU32],
    pick_less: bool,
    probe: ProbeStrategy,
    labels: &[AtomicU32],
    scratch: &mut ScratchPad<V>,
    tp: &mut ThreadProf,
) {
    for (k, idxs) in buckets.iter().enumerate() {
        let chunk = CHUNK_SIZES[k];
        loop {
            let start = tp.claim(&cursors[k], k, chunk, idxs.len());
            if start >= idxs.len() {
                break;
            }
            let end = (start + chunk).min(idxs.len());
            for &i in &idxs[start..end] {
                let pick = compute_pick(g, candidates[i], pick_less, probe, labels, scratch);
                picks[i].store(pick.unwrap_or(NO_MOVE), Ordering::Relaxed);
            }
            if tp.enabled() {
                let edges = idxs[start..end]
                    .iter()
                    .map(|&i| g.degree(candidates[i]) as u64)
                    .sum::<u64>();
                tp.count_chunk(k, (end - start) as u64, edges);
            }
        }
    }
}

/// Compute one vertex's pick against the current labels: accumulate
/// neighbour label weights into the dense scratch, then take the
/// heaviest label. A unique maximum needs no tie-break and is returned
/// straight off the `touched` scan; on a weight tie the winner is
/// resolved by [`slot_order_winner`], reproducing the legacy table path
/// bit-for-bit. Either way the pick is a pure function of the label
/// state, so it cannot depend on bucket or chunk scheduling.
fn compute_pick<V: HashValue>(
    g: &Csr,
    v: VertexId,
    pick_less: bool,
    probe: ProbeStrategy,
    labels: &[AtomicU32],
    scratch: &mut ScratchPad<V>,
) -> Option<VertexId> {
    scratch.begin();
    for (j, w) in g.neighbors(v) {
        if j == v {
            continue;
        }
        let c = labels[j as usize].load(Ordering::Relaxed);
        let ci = c as usize;
        if scratch.stamp[ci] != scratch.gen {
            scratch.stamp[ci] = scratch.gen;
            scratch.counts[ci] = V::zero();
            scratch.touched.push(c);
        }
        scratch.counts[ci] = scratch.counts[ci].add(V::from_weight(w));
    }
    let mut best: Option<(VertexId, V)> = None;
    let mut tied = false;
    for &c in &scratch.touched {
        let w = scratch.counts[c as usize];
        match &best {
            Some((_, bw)) if w > *bw => {
                best = Some((c, w));
                tied = false;
            }
            Some((_, bw)) if w == *bw => tied = true,
            None => best = Some((c, w)),
            _ => {}
        }
    }
    let (mut c_star, _) = best?;
    if tied {
        c_star = slot_order_winner(g, v, probe, scratch)
            .expect("a weight tie implies a non-empty table");
    }
    let cur = labels[v as usize].load(Ordering::Relaxed);
    (c_star != cur && (!pick_less || c_star < cur)).then_some(c_star)
}

/// Tie-break replay of the legacy per-vertex hashtable: rebuild the
/// table's slot assignment (same capacity `p₁ = nextPow2(d) − 1`, probe
/// sequences, probe budget and linear fallback as
/// `TableMut::accumulate`) and rerun `hashtableMaxKey`'s
/// strictly-greater slot scan over the dense counts — so the *first
/// maximal slot's* key wins, exactly as on the legacy path.
///
/// Two replays are skipped because they cannot change the outcome:
/// weights (per label both paths add the same values in the same CSR
/// order, so `counts[label]` already equals the table cell
/// bit-for-bit), and duplicate insertions — a repeated key re-walks its
/// original probe path over slots that are still occupied, so it always
/// lands on its existing slot and never claims a new one. Slot
/// assignment is therefore a function of the *distinct* labels in
/// first-occurrence CSR order, which is exactly `scratch.touched`.
fn slot_order_winner<V: HashValue>(
    g: &Csr,
    v: VertexId,
    probe: ProbeStrategy,
    scratch: &mut ScratchPad<V>,
) -> Option<VertexId> {
    let p1 = capacity_for_degree(g.degree(v));
    if p1 == 0 {
        return None;
    }
    let p2 = secondary_prime(p1);
    if scratch.slot_keys.len() < p1 {
        scratch.slot_keys.resize(p1, 0);
        scratch.slot_stamp.resize(p1, 0);
    }
    let gen = scratch.gen;
    let budget = probe_budget(p1);
    for &key in &scratch.touched {
        let mut seq = ProbeSeq::new(probe, key, p1, p2);
        let mut placed = false;
        let mut last = 0usize;
        for _ in 0..budget {
            let s = seq.slot();
            last = s;
            if scratch.slot_stamp[s] != gen {
                scratch.slot_stamp[s] = gen;
                scratch.slot_keys[s] = key;
                placed = true;
                break;
            }
            if scratch.slot_keys[s] == key {
                placed = true;
                break;
            }
            seq.advance();
        }
        if !placed {
            // linear fallback from the last probed slot, as in accumulate
            for off in 1..=p1 {
                let s = (last + off) % p1;
                if scratch.slot_stamp[s] != gen {
                    scratch.slot_stamp[s] = gen;
                    scratch.slot_keys[s] = key;
                    break;
                }
                if scratch.slot_keys[s] == key {
                    break;
                }
            }
        }
    }
    let mut best: Option<(VertexId, V)> = None;
    for s in 0..p1 {
        if scratch.slot_stamp[s] != gen {
            continue;
        }
        let c = scratch.slot_keys[s];
        let w = scratch.counts[c as usize];
        match &best {
            None => best = Some((c, w)),
            Some((_, bw)) => {
                if w > *bw {
                    best = Some((c, w));
                }
            }
        }
    }
    best.map(|(c, _)| c)
}

/// Sequentially commit one block in candidate order (lead thread only),
/// reproducing the fully sequential asynchronous sweep exactly: each
/// candidate is marked processed, its speculative pick is used unless a
/// neighbour moved earlier in this block (in which case the pick is
/// recomputed against the live labels), and an adopted move stores the
/// label, clears neighbour `processed` flags, and — in frontier mode —
/// CAS-claims worklist pushes, just like the legacy path.
///
/// Returns `(ΔN, picks recomputed)`. The repair count depends only on
/// the block partition and commit order — both deterministic — so it is
/// identical at any thread count.
#[allow(clippy::too_many_arguments)]
fn commit_block<V: HashValue>(
    g: &Csr,
    candidates: &[VertexId],
    block: std::ops::Range<usize>,
    picks: &[AtomicU32],
    pick_less: bool,
    probe: ProbeStrategy,
    labels: &[AtomicU32],
    processed: &[AtomicU8],
    scratch: &mut ScratchPad<V>,
    moved: &mut [u64],
    block_stamp: u64,
    fr: &mut Option<FrontierCtx<'_>>,
) -> (usize, u64) {
    let mut changed = 0usize;
    let mut repaired = 0u64;
    for i in block {
        let v = candidates[i];
        processed[v as usize].store(1, Ordering::Relaxed);
        let stale = g
            .neighbor_ids(v)
            .iter()
            .any(|&j| moved[j as usize] == block_stamp);
        let pick = if stale {
            repaired += 1;
            compute_pick(g, v, pick_less, probe, labels, scratch).unwrap_or(NO_MOVE)
        } else {
            picks[i].load(Ordering::Relaxed)
        };
        if pick == NO_MOVE {
            continue;
        }
        labels[v as usize].store(pick, Ordering::Relaxed);
        moved[v as usize] = block_stamp;
        changed += 1;
        match fr {
            Some(ctx) => {
                ctx.movers.push(v);
                for &j in g.neighbor_ids(v) {
                    processed[j as usize].store(0, Ordering::Relaxed);
                    if ctx.queued[j as usize].swap(1, Ordering::Relaxed) == 0 {
                        ctx.worklist.push(j);
                    }
                }
            }
            None => {
                for &j in g.neighbor_ids(v) {
                    processed[j as usize].store(0, Ordering::Relaxed);
                }
            }
        }
    }
    (changed, repaired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::{erdos_renyi, star};

    #[test]
    fn bucket_partition_is_disjoint_cover() {
        let g = erdos_renyi(150, 500, 3);
        let cands: Vec<VertexId> = (0..150).step_by(2).collect();
        let bk = bucket_partition(
            &g,
            &cands,
            BucketThresholds {
                low_max: 2,
                mid_max: 6,
            },
        );
        let mut seen = vec![false; cands.len()];
        for list in &bk {
            for &i in list {
                assert!(!seen[i], "index {i} in two buckets");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some candidate unbucketed");
    }

    #[test]
    fn bucket_partition_respects_thresholds() {
        let g = star(40); // hub degree 39, leaves degree 1
        let cands: Vec<VertexId> = (0..40).collect();
        let t = BucketThresholds {
            low_max: 1,
            mid_max: 10,
        };
        let bk = bucket_partition(&g, &cands, t);
        assert_eq!(bk[0].len(), 39, "leaves are low-degree");
        assert!(bk[1].is_empty());
        assert_eq!(bk[2], vec![0], "hub lands in the high bucket");
    }

    #[test]
    fn scratch_generation_wrap_resets_stamps() {
        let mut s = ScratchPad::<f32>::new(4);
        s.gen = u32::MAX - 1;
        s.begin(); // -> u32::MAX
        s.stamp[2] = s.gen;
        s.counts[2] = 7.0;
        s.begin(); // wraps: stamps bulk-cleared, gen = 1
        assert_eq!(s.gen, 1);
        assert!(
            s.stamp.iter().all(|&st| st == 0),
            "stale stamp survived wrap"
        );
    }

    #[test]
    fn scratch_reuse_does_not_leak_counts() {
        let g = nulpa_graph::GraphBuilder::new(4)
            .add_undirected_edge(0, 1, 1.0)
            .add_undirected_edge(0, 2, 1.0)
            .add_undirected_edge(1, 2, 1.0)
            .build();
        let labels: Vec<AtomicU32> = (0..4).map(AtomicU32::new).collect();
        let mut s = ScratchPad::<f32>::new(4);
        let p = ProbeStrategy::QuadraticDouble;
        let a = compute_pick(&g, 0, false, p, &labels, &mut s);
        let b = compute_pick(&g, 0, false, p, &labels, &mut s);
        assert_eq!(a, b, "second use of the scratch must see fresh counts");
    }

    #[test]
    fn weight_tie_resolves_to_legacy_slot_order_winner() {
        // Vertex 0 sees labels 1 and 2 at equal weight. The legacy path
        // builds a per-vertex table and takes the first maximal slot;
        // the fast path must land on the same label the table would.
        let g = nulpa_graph::GraphBuilder::new(3)
            .add_undirected_edge(0, 1, 1.0)
            .add_undirected_edge(0, 2, 1.0)
            .build();
        let labels: Vec<AtomicU32> = (0..3).map(AtomicU32::new).collect();
        for probe in [
            ProbeStrategy::Linear,
            ProbeStrategy::Quadratic,
            ProbeStrategy::Double,
            ProbeStrategy::QuadraticDouble,
        ] {
            let mut s = ScratchPad::<f32>::new(3);
            let pick = compute_pick(&g, 0, false, probe, &labels, &mut s);
            // replay the legacy table to get the expected winner
            let p1 = capacity_for_degree(g.degree(0));
            let p2 = secondary_prime(p1);
            let mut keys = vec![nulpa_hashtab::EMPTY_KEY; p1];
            let mut vals = vec![0.0f32; p1];
            let mut t = nulpa_hashtab::TableMut::<f32>::new(&mut keys, &mut vals, p2);
            for (j, w) in g.neighbors(0) {
                t.accumulate(probe, labels[j as usize].load(Ordering::Relaxed), w);
            }
            let expect = t.max_key().map(|(k, _)| k);
            assert_eq!(pick, expect, "probe {probe:?} diverged from legacy table");
        }
    }
}
