//! Property-based tests for the core crate's extensions: the PuLP
//! partitioner and Dynamic Frontier LPA.

use nulpa_core::{
    apply_batch, frontier, lpa_dynamic, lpa_native, pulp_partition, EdgeBatch, LpaConfig,
    PulpConfig,
};
use nulpa_graph::GraphBuilder;
use nulpa_metrics::{check_labels, imbalance};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = nulpa_graph::Csr> {
    (4..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 0.2f32..4.0), 0..160).prop_map(
            move |edges| {
                GraphBuilder::new(n)
                    .add_undirected_edges(edges.into_iter().filter(|(u, v, _)| u != v))
                    .build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pulp_always_balanced_and_valid(g in arb_graph(60), k in 1usize..5) {
        prop_assume!(k <= g.num_vertices());
        let r = pulp_partition(
            &g,
            &PulpConfig {
                num_parts: k,
                ..Default::default()
            },
        );
        prop_assert_eq!(r.parts.len(), g.num_vertices());
        prop_assert!(r.parts.iter().all(|&p| (p as usize) < k));
        // contiguous init is near-perfectly balanced; moves respect the cap,
        // so the ceil'd cap is the only slack
        let cap = ((g.num_vertices() as f64 / k as f64) * 1.05).ceil();
        let max_size = (imbalance(&r.parts, k) * g.num_vertices() as f64 / k as f64).round();
        prop_assert!(max_size <= cap + 0.5, "max {} cap {}", max_size, cap);
    }

    #[test]
    fn apply_batch_preserves_symmetry(
        g in arb_graph(40),
        ins in proptest::collection::vec((0u32..40, 0u32..40, 0.5f32..2.0), 0..20),
        del_seed in 0usize..10,
    ) {
        let n = g.num_vertices() as u32;
        let batch = EdgeBatch {
            insertions: ins
                .into_iter()
                .filter(|&(u, v, _)| u < n && v < n && u != v)
                .collect(),
            deletions: (0..del_seed)
                .filter_map(|i| {
                    let u = (i as u32 * 7) % n;
                    g.neighbor_ids(u).first().map(|&v| (u, v))
                })
                .collect(),
        };
        let g2 = apply_batch(&g, &batch);
        prop_assert!(g2.validate().is_ok());
        prop_assert!(g2.is_symmetric());
        // all insertions present (unless also deleted in the same batch)
        for &(u, v, _) in &batch.insertions {
            let deleted = batch.deletions.iter().any(|&(a, b)| {
                (a, b) == (u, v) || (a, b) == (v, u)
            });
            if !deleted {
                prop_assert!(g2.has_edge(u, v), "missing ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn dynamic_always_valid_and_frontier_sound(
        g in arb_graph(50),
        ins in proptest::collection::vec((0u32..50, 0u32..50), 0..15),
    ) {
        let n = g.num_vertices() as u32;
        let cfg = LpaConfig::default();
        let base = lpa_native(&g, &cfg);
        let batch = EdgeBatch {
            insertions: ins
                .into_iter()
                .filter(|&(u, v)| u < n && v < n && u != v)
                .map(|(u, v)| (u, v, 1.0))
                .collect(),
            deletions: vec![],
        };
        // frontier only ever contains batch endpoints
        let f = frontier(&batch, &base.labels);
        for &v in &f {
            prop_assert!(batch
                .insertions
                .iter()
                .any(|&(a, b, _)| a == v || b == v));
        }
        let (g_new, r) = lpa_dynamic(&g, &base.labels, &batch, &cfg);
        prop_assert!(check_labels(&g_new, &r.labels).is_ok());
    }

    #[test]
    fn empty_batch_is_identity(g in arb_graph(40)) {
        let cfg = LpaConfig::default();
        let base = lpa_native(&g, &cfg);
        let (g2, r) = lpa_dynamic(&g, &base.labels, &EdgeBatch::default(), &cfg);
        prop_assert_eq!(g2, g);
        prop_assert_eq!(r.total_changes(), 0);
        prop_assert_eq!(r.labels, base.labels);
    }
}
