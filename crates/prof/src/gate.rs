//! Perf-gate comparison: current profile report vs. a committed baseline.
//!
//! The simulator is deterministic, so attributed cycle totals are exactly
//! reproducible across machines and thread counts; the gate's tolerance
//! only exists to let intentional small cost-model adjustments through
//! without a baseline refresh. Anything beyond it fails CI until the
//! baseline is regenerated deliberately (`profile_baseline --write`).

use nulpa_obs::json::{parse, Json};
use nulpa_simt::Comp;

/// Outcome of a baseline comparison.
#[derive(Clone, Debug, Default)]
pub struct GateReport {
    /// Individual metric comparisons performed.
    pub checked: usize,
    /// Regressions beyond tolerance, human-readable, one per metric.
    pub regressions: Vec<String>,
    /// Improvements beyond tolerance (informational; a drift this large
    /// deserves a baseline refresh too).
    pub improvements: Vec<String>,
}

impl GateReport {
    /// True when no regression was found.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Metrics compared per `(graph, backend)` totals object.
fn gated_metrics() -> Vec<&'static str> {
    let mut m = vec![
        "sim_cycles",
        "lane_cycles",
        "idle_cycles",
        "imbalance_cycles",
        "stall_cycles",
    ];
    m.extend(Comp::all().iter().map(|c| c.label()));
    m
}

fn totals_metric(profile: &Json, name: &str) -> Option<u64> {
    let totals = profile.get("totals")?;
    if let Some(v) = totals.get(name).and_then(|v| v.as_u64()) {
        return Some(v);
    }
    totals.get("components")?.get(name)?.as_u64()
}

fn profile_key(p: &Json) -> Option<(String, String)> {
    Some((
        p.get("graph")?.as_str()?.to_string(),
        p.get("backend")?.as_str()?.to_string(),
    ))
}

/// Compare two profile-report JSON documents (see
/// [`crate::json::report_to_json`]). `tolerance_percent` is the allowed
/// growth of any gated metric before it counts as a regression (the CI
/// gate uses 5). Integer arithmetic throughout: `cur × 100 > base × (100
/// + tol)` fails.
pub fn compare_profiles(
    baseline: &str,
    current: &str,
    tolerance_percent: u64,
) -> Result<GateReport, String> {
    let base = parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let cur = parse(current).map_err(|e| format!("current: {e}"))?;
    let base_profiles = base
        .get("profiles")
        .and_then(|p| p.as_arr())
        .ok_or("baseline: missing `profiles` array")?;
    let cur_profiles = cur
        .get("profiles")
        .and_then(|p| p.as_arr())
        .ok_or("current: missing `profiles` array")?;

    let mut report = GateReport::default();
    for bp in base_profiles {
        let Some((graph, backend)) = profile_key(bp) else {
            return Err("baseline: profile without graph/backend".into());
        };
        let Some(cp) = cur_profiles
            .iter()
            .find(|p| profile_key(p).as_ref() == Some(&(graph.clone(), backend.clone())))
        else {
            report
                .regressions
                .push(format!("{graph}/{backend}: missing from current run"));
            continue;
        };
        if cp.get("conserved").and_then(|v| v.as_f64()) == Some(0.0) {
            report
                .regressions
                .push(format!("{graph}/{backend}: conservation check failed"));
        }
        for metric in gated_metrics() {
            let Some(b) = totals_metric(bp, metric) else {
                continue; // metric absent from baseline: nothing to gate
            };
            let Some(c) = totals_metric(cp, metric) else {
                report.regressions.push(format!(
                    "{graph}/{backend}: {metric} missing from current run"
                ));
                continue;
            };
            report.checked += 1;
            if c * 100 > b * (100 + tolerance_percent) {
                report.regressions.push(format!(
                    "{graph}/{backend}: {metric} regressed {b} -> {c} (+{:.1}%, tolerance {tolerance_percent}%)",
                    100.0 * (c as f64 - b as f64) / b.max(1) as f64
                ));
            } else if c * (100 + tolerance_percent) < b * 100 {
                report.improvements.push(format!(
                    "{graph}/{backend}: {metric} improved {b} -> {c} ({:.1}%)",
                    100.0 * (c as f64 - b as f64) / b.max(1) as f64
                ));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(sim: u64, alu: u64) -> String {
        format!(
            "{{\"meta\":{{}},\"profiles\":[{{\"graph\":\"g\",\"backend\":\"b\",\
             \"conserved\":true,\"totals\":{{\"sim_cycles\":{sim},\
             \"components\":{{\"alu\":{alu}}}}}}}]}}"
        )
    }

    #[test]
    fn identical_runs_pass() {
        let r = compare_profiles(&doc(1000, 400), &doc(1000, 400), 5).unwrap();
        assert!(r.passed());
        assert!(r.checked >= 2);
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let r = compare_profiles(&doc(1000, 400), &doc(1040, 410), 5).unwrap();
        assert!(r.passed(), "{:?}", r.regressions);
    }

    #[test]
    fn inflated_run_fails() {
        let r = compare_profiles(&doc(1000, 400), &doc(1100, 400), 5).unwrap();
        assert!(!r.passed());
        assert!(
            r.regressions[0].contains("sim_cycles"),
            "{:?}",
            r.regressions
        );
    }

    #[test]
    fn inflated_component_fails_even_with_flat_total() {
        let r = compare_profiles(&doc(1000, 400), &doc(1000, 500), 5).unwrap();
        assert!(!r.passed());
        assert!(r.regressions[0].contains("alu"));
    }

    #[test]
    fn missing_profile_fails() {
        let empty = "{\"meta\":{},\"profiles\":[]}";
        let r = compare_profiles(&doc(1000, 400), empty, 5).unwrap();
        assert!(!r.passed());
        assert!(r.regressions[0].contains("missing"));
    }

    #[test]
    fn large_improvement_is_reported_not_failed() {
        let r = compare_profiles(&doc(1000, 400), &doc(500, 200), 5).unwrap();
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(compare_profiles("{", &doc(1, 1), 5).is_err());
    }
}
