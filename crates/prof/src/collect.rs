//! The collecting trace sink: turns the wave scheduler's span stream and
//! metrics records into per-launch records for aggregation.

use nulpa_obs::{track, Hist, TraceSink, Value};
use std::collections::BTreeMap;

/// One wave of one kernel launch, as emitted by the scheduler's `"wave"`
/// metrics record.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaveRec {
    /// Wave start (simulated cycles, kernel-absolute).
    pub t0: u64,
    /// Wave duration.
    pub dur: u64,
    /// Items (threads or blocks) resident in the wave.
    pub items: u64,
    /// Lane slots folded (threads; blocks × block size for block waves).
    pub slots: u64,
    /// Critical path: slowest warp/block of the wave.
    pub critical: u64,
    /// Duration beyond the critical path (throughput/occupancy stall).
    pub stall: u64,
    /// Lane-busy cycles folded this wave.
    pub busy: u64,
    /// Lockstep-idle cycles folded this wave.
    pub idle: u64,
}

/// One kernel launch: identity, span interval, wave list and the
/// kernel-level attribution metrics.
#[derive(Clone, Debug, Default)]
pub struct LaunchRec {
    /// Kernel name (`kernel:thread`, `kernel:block`, ...).
    pub name: String,
    /// Iteration the launch ran in (0-based).
    pub iter: u64,
    /// Launch start (simulated cycles).
    pub t0: u64,
    /// Launch end.
    pub t1: u64,
    /// Total items launched.
    pub items: u64,
    /// Wave capacity of the launch (resident threads or blocks).
    pub wave_capacity: u64,
    /// Per-wave records, in wave order.
    pub waves: Vec<WaveRec>,
    /// Kernel-level metrics (cycle totals, components) keyed by metric
    /// name; see the scheduler's `"kernel"` metrics record.
    pub metrics: BTreeMap<String, u64>,
    /// Probe-length histogram flushed by the launch (empty if none).
    pub probe_hist: Hist,
    /// Per-warp lockstep-cost histogram flushed by the launch.
    pub warp_cost_hist: Hist,
}

impl LaunchRec {
    /// Kernel metric by name, 0 when absent.
    pub fn metric(&self, key: &str) -> u64 {
        self.metrics.get(key).copied().unwrap_or(0)
    }
}

/// Trace sink that collects kernel launches and their profiling metrics.
///
/// Tracks the host `iteration` spans to attribute each launch to an
/// iteration; ignores everything else it does not recognise (sinks must
/// never fail on odd input).
#[derive(Debug, Default)]
pub struct ProfileSink {
    /// Completed launches, in launch order.
    pub launches: Vec<LaunchRec>,
    pub(crate) open: Option<LaunchRec>,
    pub(crate) cur_iter: u64,
}

impl ProfileSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

fn arg_u64(args: &[(&str, Value)], key: &str) -> u64 {
    args.iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        })
        .unwrap_or(0)
}

impl TraceSink for ProfileSink {
    fn span_begin(&mut self, track_id: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        match track_id {
            track::HOST if name == "iteration" => {
                self.cur_iter = arg_u64(args, "iter");
            }
            track::KERNEL => {
                self.open = Some(LaunchRec {
                    name: name.to_string(),
                    iter: self.cur_iter,
                    t0: ts,
                    t1: ts,
                    items: arg_u64(args, "items"),
                    wave_capacity: arg_u64(args, "wave_capacity"),
                    ..Default::default()
                });
            }
            _ => {}
        }
    }

    fn span_end(&mut self, track_id: u32, name: &str, ts: u64, _args: &[(&str, Value)]) {
        if track_id == track::KERNEL {
            if let Some(mut l) = self.open.take() {
                if l.name == name {
                    l.t1 = ts;
                    self.launches.push(l);
                } else {
                    // unbalanced spans: keep the open record, drop nothing
                    self.open = Some(l);
                }
            }
        }
    }

    fn counter(&mut self, _name: &str, _ts: u64, _value: f64) {}

    fn hist_sample(&mut self, _name: &str, _value: u64) {}

    fn histogram(&mut self, name: &str, hist: &Hist) {
        // Histograms are flushed right after the kernel span closes.
        if let Some(l) = self.launches.last_mut() {
            match name {
                "probe_len" => l.probe_hist.merge(hist),
                "warp_cost" => l.warp_cost_hist.merge(hist),
                _ => {}
            }
        }
    }

    fn metrics(&mut self, name: &str, ts: u64, values: &[(&str, u64)]) {
        let get = |key: &str| {
            values
                .iter()
                .find(|(k, _)| *k == key)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        match name {
            "wave" => {
                if let Some(l) = self.open.as_mut() {
                    l.waves.push(WaveRec {
                        t0: ts,
                        dur: get("dur"),
                        items: get("items"),
                        slots: get("slots"),
                        critical: get("critical"),
                        stall: get("stall"),
                        busy: get("busy"),
                        idle: get("idle"),
                    });
                }
            }
            "kernel" => {
                // Emitted after the kernel span closes: attach to the
                // launch that just retired.
                if let Some(l) = self.launches.last_mut() {
                    if l.metrics.is_empty() {
                        l.metrics = values.iter().map(|&(k, v)| (k.to_string(), v)).collect();
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_launches_with_waves_and_metrics() {
        let mut s = ProfileSink::new();
        s.span_begin(track::HOST, "iteration", 0, &[("iter", 3u64.into())]);
        s.span_begin(
            track::KERNEL,
            "kernel:thread",
            10,
            &[("items", 5u64.into()), ("wave_capacity", 64u64.into())],
        );
        s.metrics("wave", 10, &[("dur", 7), ("items", 5), ("slots", 5)]);
        s.span_end(track::KERNEL, "kernel:thread", 17, &[]);
        s.metrics("kernel", 17, &[("sim_cycles", 7), ("alu", 4)]);
        assert_eq!(s.launches.len(), 1);
        let l = &s.launches[0];
        assert_eq!(l.iter, 3);
        assert_eq!((l.t0, l.t1), (10, 17));
        assert_eq!(l.items, 5);
        assert_eq!(l.waves.len(), 1);
        assert_eq!(l.waves[0].dur, 7);
        assert_eq!(l.metric("alu"), 4);
        assert_eq!(l.metric("missing"), 0);
    }

    #[test]
    fn ignores_unrelated_events() {
        let mut s = ProfileSink::new();
        s.span_begin(track::HOST, "lpa_gpu", 0, &[]);
        s.counter("dN", 1, 2.0);
        s.hist_sample("x", 3);
        s.metrics("other", 0, &[("a", 1)]);
        s.span_end(track::HOST, "lpa_gpu", 9, &[]);
        assert!(s.launches.is_empty());
    }
}
