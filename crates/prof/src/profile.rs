//! Aggregation of collected launches into a per-kernel / per-iteration
//! profile, plus the conservation checks that pin the attribution to the
//! untagged `KernelStats` totals.

use crate::collect::{LaunchRec, ProfileSink};
use nulpa_simt::{Comp, CompCycles, KernelStats};

/// Cycle totals aggregated over a set of launches (one kernel name, one
/// iteration, or the whole run).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelAgg {
    /// Kernel name (or `"total"` / an iteration label).
    pub name: String,
    /// Launches folded in.
    pub launches: u64,
    /// Simulated wall-clock cycles (durations add: launches are serial).
    pub sim_cycles: u64,
    /// Lane-busy cycles.
    pub lane_cycles: u64,
    /// Lockstep-idle (divergence) cycles.
    pub idle_cycles: u64,
    /// Load-imbalance cycles (wave critical path minus warp finish).
    pub imbalance_cycles: u64,
    /// Issue-throughput stall cycles (duration minus critical path).
    pub stall_cycles: u64,
    /// Waves launched.
    pub waves: u64,
    /// Lane slots folded.
    pub threads: u64,
    /// Hash probes performed.
    pub probes: u64,
    /// Per-component attribution of `lane_cycles`.
    pub comp: CompCycles,
}

impl KernelAgg {
    fn absorb(&mut self, l: &LaunchRec) {
        self.launches += 1;
        self.sim_cycles += l.metric("sim_cycles");
        self.lane_cycles += l.metric("lane_cycles");
        self.idle_cycles += l.metric("idle_cycles");
        self.imbalance_cycles += l.metric("imbalance_cycles");
        self.stall_cycles += l.metric("stall_cycles");
        self.waves += l.metric("waves");
        self.threads += l.metric("threads");
        self.probes += l.metric("probes");
        for c in Comp::all() {
            self.comp.add(c, l.metric(c.label()));
        }
    }

    /// Occupied lane-slot cycles: `lane + idle + imbalance`, the ledger
    /// total `Σ critical × slots` over the aggregated waves.
    pub fn slot_cycles(&self) -> u64 {
        self.lane_cycles + self.idle_cycles + self.imbalance_cycles
    }

    /// Useful-work fraction of occupied lane slots, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let slots = self.slot_cycles();
        if slots == 0 {
            0.0
        } else {
            self.lane_cycles as f64 / slots as f64
        }
    }

    /// Off-chip memory cycles: global + probe traffic + atomics.
    pub fn mem_cycles(&self) -> u64 {
        // Frontier compaction is dominated by its processed-flag reads,
        // so its bundled cycles sit on the memory side of the roofline.
        self.comp.get(Comp::GlobalNear)
            + self.comp.get(Comp::GlobalFar)
            + self.comp.get(Comp::ProbeNear)
            + self.comp.get(Comp::ProbeFar)
            + self.comp.get(Comp::Atomic)
            + self.comp.get(Comp::FrontierCompact)
    }

    /// On-chip compute cycles: ALU + shared memory.
    pub fn compute_cycles(&self) -> u64 {
        self.comp.get(Comp::Alu) + self.comp.get(Comp::Shared)
    }

    /// Compute-to-memory cycle ratio (arithmetic intensity analogue;
    /// `f64::INFINITY` for a kernel with no memory traffic).
    pub fn intensity(&self) -> f64 {
        let mem = self.mem_cycles();
        if mem == 0 {
            if self.compute_cycles() == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.compute_cycles() as f64 / mem as f64
        }
    }

    /// Roofline bound classification from the cycle balance.
    pub fn bound(&self) -> &'static str {
        if self.mem_cycles() >= self.compute_cycles() {
            "memory"
        } else {
            "compute"
        }
    }
}

/// Totals for one LPA iteration.
#[derive(Clone, Debug, Default)]
pub struct IterAgg {
    /// Iteration index (0-based).
    pub iter: u64,
    /// Aggregated totals over the iteration's launches.
    pub agg: KernelAgg,
}

/// A complete profile of one `(graph, backend)` run.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    /// Graph label.
    pub graph: String,
    /// Backend (profiling configuration) label.
    pub backend: String,
    /// SMs of the simulated device (for the occupancy timeline).
    pub sm_count: u64,
    /// LPA iterations executed.
    pub iterations: u64,
    /// Whether the run converged.
    pub converged: bool,
    /// Per-kernel totals, hottest (most simulated cycles) first.
    pub kernels: Vec<KernelAgg>,
    /// Per-iteration totals, in iteration order.
    pub iters: Vec<IterAgg>,
    /// Whole-run totals.
    pub totals: KernelAgg,
    /// Raw launches, in launch order (feeds the occupancy timeline).
    pub launches: Vec<LaunchRec>,
}

impl Profile {
    /// Aggregate a collected sink into a profile.
    pub fn build(
        graph: &str,
        backend: &str,
        sm_count: usize,
        sink: ProfileSink,
        iterations: u64,
        converged: bool,
    ) -> Profile {
        let mut kernels: Vec<KernelAgg> = Vec::new();
        let mut iters: Vec<IterAgg> = Vec::new();
        let mut totals = KernelAgg {
            name: "total".to_string(),
            ..Default::default()
        };
        for l in &sink.launches {
            totals.absorb(l);
            match kernels.iter_mut().find(|k| k.name == l.name) {
                Some(k) => k.absorb(l),
                None => {
                    let mut k = KernelAgg {
                        name: l.name.clone(),
                        ..Default::default()
                    };
                    k.absorb(l);
                    kernels.push(k);
                }
            }
            match iters.iter_mut().find(|it| it.iter == l.iter) {
                Some(it) => it.agg.absorb(l),
                None => {
                    let mut it = IterAgg {
                        iter: l.iter,
                        agg: KernelAgg {
                            name: format!("iter {}", l.iter),
                            ..Default::default()
                        },
                    };
                    it.agg.absorb(l);
                    iters.push(it);
                }
            }
        }
        kernels.sort_by(|a, b| b.sim_cycles.cmp(&a.sim_cycles).then(a.name.cmp(&b.name)));
        iters.sort_by_key(|it| it.iter);
        Profile {
            graph: graph.to_string(),
            backend: backend.to_string(),
            sm_count: sm_count as u64,
            iterations,
            converged,
            kernels,
            iters,
            totals,
            launches: sink.launches,
        }
    }

    /// Verify the conservation laws against the untagged aggregate
    /// `KernelStats` the run returned, bit-for-bit:
    ///
    /// 1. every per-kernel component sum equals that kernel's lane cycles;
    /// 2. per kernel, the wave records close both ledgers
    ///    (`Σ critical×slots = lane + idle + imbalance`,
    ///    `Σ dur = sim_cycles`, `Σ stall = stall`, `Σ slots = threads`);
    /// 3. the run totals (cycles, losses, counts, every component) equal
    ///    the `KernelStats` the backend accumulated without the profiler's
    ///    help.
    pub fn verify(&self, expected: &KernelStats) -> Result<(), String> {
        for k in &self.kernels {
            if k.comp.total() != k.lane_cycles {
                return Err(format!(
                    "{}: component sum {} != lane_cycles {}",
                    k.name,
                    k.comp.total(),
                    k.lane_cycles
                ));
            }
        }
        // Wave-level ledgers, per launch.
        for l in &self.launches {
            let slot_cycles: u64 = l.waves.iter().map(|w| w.critical * w.slots).sum();
            let expect_slots =
                l.metric("lane_cycles") + l.metric("idle_cycles") + l.metric("imbalance_cycles");
            if slot_cycles != expect_slots {
                return Err(format!(
                    "{} (iter {}): wave slot-cycles {} != lane+idle+imbalance {}",
                    l.name, l.iter, slot_cycles, expect_slots
                ));
            }
            let dur: u64 = l.waves.iter().map(|w| w.dur).sum();
            if dur != l.metric("sim_cycles") {
                return Err(format!(
                    "{} (iter {}): wave durations {} != sim_cycles {}",
                    l.name,
                    l.iter,
                    dur,
                    l.metric("sim_cycles")
                ));
            }
            let stall: u64 = l.waves.iter().map(|w| w.stall).sum();
            if stall != l.metric("stall_cycles") {
                return Err(format!(
                    "{} (iter {}): wave stalls {} != stall_cycles {}",
                    l.name,
                    l.iter,
                    stall,
                    l.metric("stall_cycles")
                ));
            }
            let slots: u64 = l.waves.iter().map(|w| w.slots).sum();
            if slots != l.metric("threads") {
                return Err(format!(
                    "{} (iter {}): wave slots {} != threads {}",
                    l.name,
                    l.iter,
                    slots,
                    l.metric("threads")
                ));
            }
        }
        // Run totals against the untagged stats.
        let t = &self.totals;
        let checks: [(&str, u64, u64); 8] = [
            ("sim_cycles", t.sim_cycles, expected.sim_cycles),
            ("lane_cycles", t.lane_cycles, expected.lane_cycles),
            ("idle_cycles", t.idle_cycles, expected.idle_cycles),
            (
                "imbalance_cycles",
                t.imbalance_cycles,
                expected.imbalance_cycles,
            ),
            ("stall_cycles", t.stall_cycles, expected.stall_cycles),
            ("waves", t.waves, expected.waves),
            ("threads", t.threads, expected.threads),
            ("probes", t.probes, expected.probes),
        ];
        for (name, got, want) in checks {
            if got != want {
                return Err(format!("totals.{name}: profiled {got} != stats {want}"));
            }
        }
        if t.comp != expected.comp {
            return Err(format!(
                "totals.comp: profiled {:?} != stats {:?}",
                t.comp, expected.comp
            ));
        }
        if t.comp.total() != expected.lane_cycles {
            return Err(format!(
                "totals: component sum {} != lane_cycles {}",
                t.comp.total(),
                expected.lane_cycles
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn launch(name: &str, iter: u64, metrics: &[(&str, u64)]) -> LaunchRec {
        LaunchRec {
            name: name.to_string(),
            iter,
            metrics: metrics
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>(),
            ..Default::default()
        }
    }

    #[test]
    fn build_groups_by_kernel_and_iteration() {
        let sink = ProfileSink {
            launches: vec![
                launch("kernel:thread", 0, &[("sim_cycles", 10), ("alu", 3)]),
                launch("kernel:block", 0, &[("sim_cycles", 30)]),
                launch("kernel:thread", 1, &[("sim_cycles", 5)]),
            ],
            ..Default::default()
        };
        let p = Profile::build("g", "b", 108, sink, 2, true);
        assert_eq!(p.kernels.len(), 2);
        // hottest first
        assert_eq!(p.kernels[0].name, "kernel:block");
        assert_eq!(p.kernels[1].sim_cycles, 15);
        assert_eq!(p.kernels[1].launches, 2);
        assert_eq!(p.iters.len(), 2);
        assert_eq!(p.iters[0].agg.sim_cycles, 40);
        assert_eq!(p.totals.sim_cycles, 45);
        assert_eq!(p.totals.comp.get(Comp::Alu), 3);
    }

    #[test]
    fn verify_catches_leaked_cycles() {
        let sink = ProfileSink {
            launches: vec![launch(
                "kernel:thread",
                0,
                &[("lane_cycles", 10), ("alu", 9)], // 1 cycle unattributed
            )],
            ..Default::default()
        };
        let p = Profile::build("g", "b", 1, sink, 1, true);
        let err = p.verify(&KernelStats::new()).unwrap_err();
        assert!(err.contains("component sum"), "{err}");
    }

    #[test]
    fn utilization_and_bound() {
        let mut k = KernelAgg {
            lane_cycles: 50,
            idle_cycles: 30,
            imbalance_cycles: 20,
            ..Default::default()
        };
        k.comp.add(Comp::Alu, 10);
        k.comp.add(Comp::GlobalFar, 40);
        assert!((k.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(k.bound(), "memory");
        assert!((k.intensity() - 0.25).abs() < 1e-12);
    }
}
