//! JSON renderers for profiles: the full single-profile document behind
//! `nulpa profile --json`, and the multi-profile report document used for
//! the committed perf baseline (`results/prof_baseline.json`).

use crate::profile::{KernelAgg, Profile};
use crate::run::GraphProfile;
use nulpa_obs::json::{escape, fmt_f64};
use nulpa_simt::Comp;
use std::fmt::Write as _;

fn agg_json(k: &KernelAgg) -> String {
    let mut comp = String::from("{");
    for (i, c) in Comp::all().iter().enumerate() {
        if i > 0 {
            comp.push(',');
        }
        let _ = write!(comp, "{}:{}", escape(c.label()), k.comp.get(*c));
    }
    comp.push('}');
    format!(
        "{{\"name\":{},\"launches\":{},\"sim_cycles\":{},\"lane_cycles\":{},\
         \"idle_cycles\":{},\"imbalance_cycles\":{},\"stall_cycles\":{},\
         \"waves\":{},\"threads\":{},\"probes\":{},\"utilization\":{},\
         \"intensity\":{},\"bound\":{},\"components\":{}}}",
        escape(&k.name),
        k.launches,
        k.sim_cycles,
        k.lane_cycles,
        k.idle_cycles,
        k.imbalance_cycles,
        k.stall_cycles,
        k.waves,
        k.threads,
        k.probes,
        fmt_f64(k.utilization()),
        if k.intensity().is_finite() {
            fmt_f64(k.intensity())
        } else {
            "null".to_string()
        },
        escape(k.bound()),
        comp,
    )
}

/// Render one profile as a self-contained JSON object, including the
/// per-wave occupancy timeline.
pub fn profile_to_json(p: &Profile) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"graph\":{},\"backend\":{},\"sm_count\":{},\"iterations\":{},\"converged\":{}",
        escape(&p.graph),
        escape(&p.backend),
        p.sm_count,
        p.iterations,
        p.converged
    );
    let _ = write!(out, ",\"totals\":{}", agg_json(&p.totals));
    out.push_str(",\"kernels\":[");
    for (i, k) in p.kernels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&agg_json(k));
    }
    out.push_str("],\"iterations_detail\":[");
    for (i, it) in p.iters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"iter\":{},\"agg\":{}}}",
            it.iter,
            agg_json(&it.agg)
        );
    }
    out.push_str("],\"timeline\":[");
    let mut first = true;
    for l in &p.launches {
        for (w, wave) in l.waves.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"kernel\":{},\"iter\":{},\"wave\":{},\"t0\":{},\"dur\":{},\
                 \"items\":{},\"capacity\":{},\"slots\":{},\"critical\":{},\"stall\":{}}}",
                escape(&l.name),
                l.iter,
                w,
                wave.t0,
                wave.dur,
                wave.items,
                l.wave_capacity,
                wave.slots,
                wave.critical,
                wave.stall,
            );
        }
    }
    out.push_str("]}");
    out
}

/// Render a multi-profile report: run metadata plus one entry per
/// `(graph, backend)` with kernel and total attributions — the schema the
/// perf gate compares. `meta` is rendered as a flat string map.
pub fn report_to_json(meta: &[(String, String)], profiles: &[GraphProfile]) -> String {
    let mut out = String::from("{\"meta\":{");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", escape(k), escape(v));
    }
    out.push_str("},\"profiles\":[");
    for (i, gp) in profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let p = &gp.profile;
        let _ = write!(
            out,
            "{{\"graph\":{},\"backend\":{},\"iterations\":{},\"converged\":{},\
             \"conserved\":{},\"totals\":{},\"kernels\":[",
            escape(&p.graph),
            escape(&p.backend),
            p.iterations,
            p.converged,
            gp.conservation.is_ok(),
            agg_json(&p.totals),
        );
        for (j, k) in p.kernels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&agg_json(k));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{backends, profile_graph};
    use nulpa_graph::gen::two_cliques_light_bridge;

    #[test]
    fn profile_json_parses_back() {
        let g = two_cliques_light_bridge(4);
        let gp = profile_graph("tc", &g, &backends()[0]);
        let text = profile_to_json(&gp.profile);
        let doc = nulpa_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("graph").and_then(|v| v.as_str()), Some("tc"));
        let totals = doc.get("totals").expect("totals");
        assert!(totals.get("sim_cycles").and_then(|v| v.as_u64()).unwrap() > 0);
        let comp = totals.get("components").expect("components");
        assert!(comp.get("alu").and_then(|v| v.as_u64()).is_some());
        assert!(!doc.get("timeline").unwrap().as_arr().unwrap().is_empty());
    }

    #[test]
    fn report_json_parses_back() {
        let g = two_cliques_light_bridge(4);
        let gp = profile_graph("tc", &g, &backends()[0]);
        let meta = vec![("git_rev".to_string(), "abc123".to_string())];
        let text = report_to_json(&meta, &[gp]);
        let doc = nulpa_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("meta")
                .and_then(|m| m.get("git_rev"))
                .and_then(|v| v.as_str()),
            Some("abc123")
        );
        assert_eq!(doc.get("profiles").unwrap().as_arr().unwrap().len(), 1);
    }
}
