//! Text renderer for [`Profile`]s: attribution table, component table,
//! roofline summary and per-SM occupancy timeline.

use crate::profile::{KernelAgg, Profile};
use nulpa_simt::Comp;
use std::fmt::Write as _;

/// Maximum timeline rows rendered before eliding the middle.
const TIMELINE_ROWS: usize = 32;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn agg_row(out: &mut String, k: &KernelAgg, total_sim: u64) {
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>6.1}% {:>12} {:>12} {:>12} {:>12}",
        k.name,
        k.launches,
        k.sim_cycles,
        pct(k.sim_cycles, total_sim),
        k.lane_cycles,
        k.idle_cycles,
        k.imbalance_cycles,
        k.stall_cycles,
    );
}

/// Render the full text report for one profile.
pub fn render(p: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== profile: graph={} backend={} ==",
        p.graph, p.backend
    );
    let _ = writeln!(
        out,
        "iterations {}{}  kernels {}  waves {}  sim_cycles {}",
        p.iterations,
        if p.converged { " (converged)" } else { "" },
        p.kernels.len(),
        p.totals.waves,
        p.totals.sim_cycles,
    );

    // -- cycle attribution ------------------------------------------------
    let _ = writeln!(out, "\ncycle attribution (cycles; sim% of run wall-clock)");
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "kernel", "launches", "sim_cycles", "sim%", "lane", "idle", "imbalance", "stall"
    );
    for k in &p.kernels {
        agg_row(&mut out, k, p.totals.sim_cycles);
    }
    agg_row(&mut out, &p.totals, p.totals.sim_cycles);

    // -- component breakdown ----------------------------------------------
    let _ = writeln!(out, "\ncomponents (% of the kernel's lane-busy cycles)");
    let mut header = format!("{:<20}", "kernel");
    for c in Comp::all() {
        let _ = write!(header, " {:>12}", c.label());
    }
    let _ = writeln!(out, "{header}");
    for k in p.kernels.iter().chain(std::iter::once(&p.totals)) {
        let _ = write!(out, "{:<20}", k.name);
        for c in Comp::all() {
            let _ = write!(
                out,
                " {:>7} {:>3.0}%",
                k.comp.get(c),
                pct(k.comp.get(c), k.lane_cycles)
            );
        }
        let _ = writeln!(out);
    }

    // -- roofline summary -------------------------------------------------
    let _ = writeln!(
        out,
        "\nroofline (useful = lane-busy / occupied lane-slots; intensity = compute/memory cycles)"
    );
    let _ = writeln!(
        out,
        "{:<20} {:>12} {:>12} {:>7} {:>10} {:>8} {:>7}",
        "kernel", "useful", "charged", "util", "intensity", "bound", "stall%"
    );
    for k in p.kernels.iter().chain(std::iter::once(&p.totals)) {
        let _ = writeln!(
            out,
            "{:<20} {:>12} {:>12} {:>6.1}% {:>10.3} {:>8} {:>6.1}%",
            k.name,
            k.lane_cycles,
            k.slot_cycles(),
            100.0 * k.utilization(),
            k.intensity(),
            k.bound(),
            pct(k.stall_cycles, k.sim_cycles),
        );
    }

    // -- per-iteration ----------------------------------------------------
    if p.iters.len() > 1 {
        let _ = writeln!(out, "\nper-iteration");
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "iteration", "launches", "sim_cycles", "sim%", "lane", "idle", "imbalance", "stall"
        );
        for it in &p.iters {
            agg_row(&mut out, &it.agg, p.totals.sim_cycles);
        }
    }

    // -- occupancy timeline -----------------------------------------------
    let _ = writeln!(
        out,
        "\noccupancy timeline (one row per wave; items resident / wave capacity, SMs active / {})",
        p.sm_count
    );
    let rows: Vec<String> = p
        .launches
        .iter()
        .flat_map(|l| {
            l.waves.iter().enumerate().map(move |(w, wave)| {
                let occ = if l.wave_capacity == 0 {
                    0.0
                } else {
                    wave.items as f64 / l.wave_capacity as f64
                };
                let per_sm = (l.wave_capacity / p.sm_count.max(1)).max(1);
                let sms = wave.items.div_ceil(per_sm).min(p.sm_count);
                let filled = (occ * 12.0).round() as usize;
                let bar: String = "#".repeat(filled.min(12)) + &"-".repeat(12 - filled.min(12));
                format!(
                    "[{:>10} +{:>8}] {:<20} w{:<3} |{bar}| {:>5.1}% {:>8}/{:<8} {:>3} SMs",
                    wave.t0,
                    wave.dur,
                    l.name,
                    w,
                    100.0 * occ,
                    wave.items,
                    l.wave_capacity,
                    sms,
                )
            })
        })
        .collect();
    if rows.len() <= TIMELINE_ROWS {
        for r in &rows {
            let _ = writeln!(out, "{r}");
        }
    } else {
        let head = TIMELINE_ROWS / 2;
        let tail = TIMELINE_ROWS - head;
        for r in &rows[..head] {
            let _ = writeln!(out, "{r}");
        }
        let _ = writeln!(
            out,
            "  ... ({} waves elided) ...",
            rows.len() - TIMELINE_ROWS
        );
        for r in &rows[rows.len() - tail..] {
            let _ = writeln!(out, "{r}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::{backends, profile_graph};
    use nulpa_graph::gen::two_cliques_light_bridge;

    #[test]
    fn render_covers_all_sections() {
        let g = two_cliques_light_bridge(5);
        let spec = &backends()[1]; // tiny: multiple waves
        let gp = profile_graph("two-cliques", &g, spec);
        let text = render(&gp.profile);
        for needle in [
            "cycle attribution",
            "components",
            "roofline",
            "occupancy timeline",
            "kernel:thread",
            "total",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
