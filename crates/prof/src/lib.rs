//! # nulpa-prof
//!
//! Kernel-level cycle-attribution profiler for the SIMT simulator — the
//! reproduction's analogue of Nsight Compute. The simulator already
//! *charges* every cycle it reports (see `nulpa-simt`); this crate answers
//! *where the cycles went*:
//!
//! * **Component attribution** — with the `prof` feature, every charge a
//!   [`nulpa_simt::LaneMeter`] makes is tagged at charge time with a
//!   [`nulpa_simt::Comp`] id (ALU, global near/far, atomic, probe
//!   near/far, shared, barrier). The per-component totals partition the
//!   lane cycles exactly — no leaked or double-counted charges — which
//!   [`Profile::verify`] checks bit-for-bit against the untagged
//!   `KernelStats`.
//! * **Loss ledger** — divergence (`idle`), load imbalance (warps done
//!   before the wave's slowest warp/block) and issue-throughput stall
//!   (wave duration beyond the critical path) close two exact ledgers:
//!   `lane + idle + imbalance = Σ critical×slots` and
//!   `sim_cycles = Σ critical + stall`.
//! * **Occupancy timeline** — per wave: simulated time interval, items
//!   resident vs. wave capacity, SMs active.
//! * **Roofline summary** — per kernel: useful work vs. charged
//!   lane-slots, ALU vs. memory cycle balance, bound classification.
//!
//! [`ProfileSink`] collects the scheduler's metrics records through the
//! ordinary `nulpa-obs` trace-sink interface; [`Profile`] aggregates them
//! per kernel / per iteration; [`render`] and [`json`] produce the
//! text-table and machine-readable forms behind `nulpa profile`;
//! [`gate`] compares two profile JSON files for the CI perf gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collect;
pub mod gate;
pub mod json;
pub mod profile;
pub mod render;
pub mod run;

pub use collect::{LaunchRec, ProfileSink, WaveRec};
pub use gate::{compare_profiles, GateReport};
pub use profile::{IterAgg, KernelAgg, Profile};
pub use run::{backends, profile_graph, BackendSpec, GraphProfile};
