//! Profiling driver: runs the simulated-GPU backend under a
//! [`ProfileSink`] for a matrix of profiling configurations ("backends")
//! and returns verified [`Profile`]s.

use crate::collect::ProfileSink;
use crate::profile::Profile;
use nulpa_core::{lpa_gpu_traced, LpaConfig, ValueType};
use nulpa_graph::Csr;
use nulpa_simt::DeviceConfig;

/// One profiling configuration: a label plus the LPA config it runs.
///
/// All backends drive the simulated-GPU path (`lpa_gpu_traced`) — the
/// native and sequential backends do not meter cycles, so there is
/// nothing to attribute there.
#[derive(Clone, Debug)]
pub struct BackendSpec {
    /// Stable label (used in reports, JSON and the perf gate).
    pub name: &'static str,
    /// Configuration the backend runs.
    pub config: LpaConfig,
}

/// The default backend matrix: the paper's A100 preset, the tiny
/// multi-wave device, the shared-memory-tables ablation, the 64-bit
/// datatype ablation, and the frontier (active-set) scheduling mode on
/// both devices. The frontier rows are what the perf gate compares
/// against their dense counterparts: on the throughput-bound `tiny`
/// device the compacted launches cut total simulated cycles by >25% on
/// the caveman trio graph.
pub fn backends() -> Vec<BackendSpec> {
    vec![
        BackendSpec {
            name: "a100",
            config: LpaConfig::default(),
        },
        BackendSpec {
            name: "tiny",
            config: LpaConfig::default().with_device(DeviceConfig::tiny()),
        },
        BackendSpec {
            name: "a100-shared",
            config: LpaConfig::default().with_shared_tables(true),
        },
        BackendSpec {
            name: "a100-f64",
            config: LpaConfig::default().with_value_type(ValueType::F64),
        },
        BackendSpec {
            name: "a100-frontier",
            config: LpaConfig::default().with_frontier(true),
        },
        BackendSpec {
            name: "tiny-frontier",
            config: LpaConfig::default()
                .with_device(DeviceConfig::tiny())
                .with_frontier(true),
        },
    ]
}

/// A verified profile plus the run outcome it came from.
#[derive(Clone, Debug)]
pub struct GraphProfile {
    /// The aggregated profile.
    pub profile: Profile,
    /// Communities found (distinct labels), for the report header.
    pub communities: usize,
    /// Conservation-check outcome (`Err` = attribution leaked cycles).
    pub conservation: Result<(), String>,
}

/// Run one `(graph, backend)` profile: execute the simulated backend with
/// a collecting sink, aggregate, and verify conservation against the
/// run's untagged `KernelStats`.
pub fn profile_graph(graph_name: &str, g: &Csr, spec: &BackendSpec) -> GraphProfile {
    let mut sink = ProfileSink::new();
    let result = lpa_gpu_traced(g, &spec.config, &mut sink);
    let profile = Profile::build(
        graph_name,
        spec.name,
        spec.config.device.sm_count,
        sink,
        result.iterations as u64,
        result.converged,
    );
    let conservation = profile.verify(&result.stats);
    let mut labels: Vec<u32> = result.labels.clone();
    labels.sort_unstable();
    labels.dedup();
    GraphProfile {
        profile,
        communities: labels.len(),
        conservation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_graph::gen::two_cliques_light_bridge;

    #[test]
    fn profile_run_conserves_cycles() {
        let g = two_cliques_light_bridge(5);
        for spec in backends() {
            let gp = profile_graph("two-cliques", &g, &spec);
            gp.conservation
                .as_ref()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(gp.profile.totals.sim_cycles > 0);
            assert!(!gp.profile.kernels.is_empty());
            assert!(gp.communities >= 2);
        }
    }
}
