//! Lock-free metrics registry: counters, gauges, and log2 histograms.
//!
//! Handles are `Arc`-backed atomics handed out once per name;
//! registration takes a short `RwLock` write, after which every update is
//! a single relaxed atomic operation — instrumented hot loops never block
//! on the registry. Snapshots read through the same lock and produce
//! plain maps for the exporters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i` holds
/// values with `floor(log2(v)) == i - 1`, i.e. `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to `v` if larger (high-water-mark tracking).
    #[inline]
    pub fn fetch_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram state: log2 buckets plus count/sum/max.
#[derive(Debug)]
pub struct HistState {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistState {
    fn default() -> Self {
        HistState {
            buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the log2 bucket holding `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// A log2 histogram of `u64` samples.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistState>);

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &*self.0;
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        let s = &*self.0;
        HistSnapshot {
            buckets: s.buckets.each_ref().map(|b| b.load(Ordering::Relaxed)),
            count: s.count.load(Ordering::Relaxed),
            sum: s.sum.load(Ordering::Relaxed),
            max: s.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistSnapshot {
    /// Mean sample, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The registry: name → handle maps behind short registration locks.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    hists: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// New empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry poisoned").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.gauges.read().expect("registry poisoned").get(name) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.hists.read().expect("registry poisoned").get(name) {
            return h.clone();
        }
        self.hists
            .write()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Copy every metric out into plain maps.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            hists: self
                .hists
                .read()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Plain-data copy of a [`Registry`] at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// The process-global registry every [`crate::PhaseSpan`] records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let r = Registry::new();
        let c = r.counter("a");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("a").get(), 5);
        assert_eq!(r.snapshot().counters["a"], 5);
    }

    #[test]
    fn same_name_same_handle() {
        let r = Registry::new();
        r.counter("x").add(2);
        r.counter("x").add(3);
        assert_eq!(r.counter("x").get(), 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let r = Registry::new();
        let g = r.gauge("g");
        g.set(10);
        g.fetch_max(7);
        assert_eq!(g.get(), 10);
        g.fetch_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in [0u64, 1, 1, 3, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 13);
        assert_eq!(s.max, 8);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 2); // 1
        assert_eq!(s.buckets[2], 1); // 2..4
        assert_eq!(s.buckets[4], 1); // 8..16
        assert!((s.mean() - 2.6).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn global_registry_is_singleton() {
        let name = "test.global.singleton";
        global().counter(name).add(1);
        assert!(global().snapshot().counters[name] >= 1);
    }
}
