//! RAII wall-clock phase spans.
//!
//! A [`PhaseSpan`] times one named host phase (`load`, `build`,
//! `iterate`, `flush`, `merge`, …) and, on close, records into the
//! [global registry](crate::registry::global):
//!
//! * `phase.<name>.wall_ns` (counter) — cumulative wall time,
//! * `phase.<name>.calls` (counter),
//! * `phase.<name>.alloc_bytes` / `phase.<name>.allocs` (counters) —
//!   allocation deltas while the span was open (zero when the counting
//!   allocator is not installed),
//! * `phase.<name>.ns` (histogram) — per-call durations.
//!
//! [`PhaseSpan::finish`] additionally returns the structured
//! [`PhaseSample`] for per-run reports; plain drop records only.

use crate::alloc::{alloc_snapshot, AllocSnapshot};
use crate::ledger::PhaseSample;
use crate::registry::global;
use std::time::Instant;

/// An open phase span; closes on drop or [`Self::finish`].
#[derive(Debug)]
pub struct PhaseSpan {
    name: String,
    t0: Instant,
    alloc0: AllocSnapshot,
    closed: bool,
}

impl PhaseSpan {
    /// Open a span named `name`.
    pub fn new(name: &str) -> Self {
        PhaseSpan {
            name: name.to_string(),
            t0: Instant::now(),
            alloc0: alloc_snapshot(),
            closed: false,
        }
    }

    fn sample(&self) -> PhaseSample {
        let a1 = alloc_snapshot();
        PhaseSample {
            name: self.name.clone(),
            wall_ns: self.t0.elapsed().as_nanos() as u64,
            alloc_bytes: a1
                .total_allocated_bytes
                .saturating_sub(self.alloc0.total_allocated_bytes),
            allocs: a1.alloc_count.saturating_sub(self.alloc0.alloc_count),
        }
    }

    fn record(s: &PhaseSample) {
        let r = global();
        r.counter(&format!("phase.{}.wall_ns", s.name))
            .add(s.wall_ns);
        r.counter(&format!("phase.{}.calls", s.name)).inc();
        r.counter(&format!("phase.{}.alloc_bytes", s.name))
            .add(s.alloc_bytes);
        r.counter(&format!("phase.{}.allocs", s.name)).add(s.allocs);
        r.histogram(&format!("phase.{}.ns", s.name))
            .record(s.wall_ns);
    }

    /// Close the span, record it, and return the structured sample.
    pub fn finish(mut self) -> PhaseSample {
        self.closed = true;
        let s = self.sample();
        Self::record(&s);
        s
    }
}

impl Drop for PhaseSpan {
    fn drop(&mut self) {
        if !self.closed {
            Self::record(&self.sample());
        }
    }
}

/// Run `f` under a phase span and return its sample alongside the result.
pub fn timed_phase<T>(name: &str, f: impl FnOnce() -> T) -> (PhaseSample, T) {
    let span = PhaseSpan::new(name);
    let out = f();
    (span.finish(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_returns_sample_and_records_globally() {
        let (s, v) = timed_phase("test.span.finish", || 40 + 2);
        assert_eq!(v, 42);
        assert_eq!(s.name, "test.span.finish");
        let snap = global().snapshot();
        assert_eq!(snap.counters["phase.test.span.finish.calls"], 1);
        assert!(snap.counters["phase.test.span.finish.wall_ns"] >= s.wall_ns.min(1));
        assert_eq!(snap.hists["phase.test.span.finish.ns"].count, 1);
    }

    #[test]
    fn drop_records_too() {
        {
            let _span = PhaseSpan::new("test.span.drop");
        }
        let snap = global().snapshot();
        assert_eq!(snap.counters["phase.test.span.drop.calls"], 1);
    }

    #[test]
    fn nested_spans_record_independently() {
        let outer = PhaseSpan::new("test.span.outer");
        let inner = PhaseSpan::new("test.span.inner");
        inner.finish();
        outer.finish();
        let snap = global().snapshot();
        assert_eq!(snap.counters["phase.test.span.outer.calls"], 1);
        assert_eq!(snap.counters["phase.test.span.inner.calls"], 1);
    }
}
