//! `nulpa-telemetry` — host-side telemetry for the ν-LPA stack.
//!
//! The simulator-side observability layers (`nulpa-obs` traces,
//! `nulpa-sancheck` hazards, `nulpa-prof` simulated cycles) answer "what
//! did the modelled device do"; this crate answers "what did the *host*
//! do": wall-clock phase timing, heap footprint, per-iteration
//! convergence quality, and where the native fast path's multi-core
//! time actually goes. Five pieces:
//!
//! * [`registry`] — a process-global registry of counters, gauges, and
//!   log2 histograms. Registration takes a short lock; every update after
//!   that is a single relaxed atomic, so instrumented hot loops stay
//!   lock-free.
//! * [`alloc`] — a counting [`GlobalAlloc`](std::alloc::GlobalAlloc) shim
//!   (installed per-binary with [`install_counting_alloc!`]) reporting
//!   current/peak heap bytes and allocation counts, plus `VmHWM` peak RSS
//!   from `/proc`.
//! * [`span`] — RAII wall-clock phase spans (`load`/`build`/`iterate`/
//!   `flush`/`merge`/…) that record duration and per-phase allocation
//!   deltas into the registry.
//! * [`convergence`] — a [`ConvergenceRecorder`] implementing
//!   [`nulpa_core::IterObserver`]: per-iteration ΔN, active-vertex
//!   fraction, community count/entropy, and an incrementally maintained
//!   modularity trajectory (Eq. 1 sums updated per label move, re-scored
//!   with [`nulpa_metrics::modularity_from_sums`]).
//! * [`hostprof`] — the host-parallel execution observatory over
//!   `nulpa_core`'s fast-path profiler: per-thread utilization tables,
//!   per-bucket work attribution, repair-rate trajectories, Chrome-trace
//!   export of thread timelines, and the `results/hostprof_baseline.json`
//!   regression gate (`nulpa profile --host`).
//!
//! [`export`] renders registry snapshots as Prometheus text exposition or
//! JSONL; [`ledger`] appends provenance-stamped run records to the
//! append-only `results/history.jsonl` that `scripts/quality_gate.sh`
//! gates against.
//!
//! Telemetry is strictly opt-in at run time: nothing observes an LPA run
//! until a [`ConvergenceRecorder`] is attached or a [`PhaseSpan`] opened,
//! so untelemetered runs — including the golden-trace tests — are
//! byte-identical with the feature compiled in.

#![deny(unsafe_code)]
#![warn(missing_docs)]

// The crate's sole unsafe-code site: the counting global allocator
// (`GlobalAlloc` is an unsafe trait; the shim delegates to `System` and
// only adds relaxed atomic accounting). Allowlisted in scripts/ci.sh.
#[allow(unsafe_code)]
pub mod alloc;
pub mod convergence;
pub mod export;
pub mod hostprof;
pub mod ledger;
pub mod registry;
pub mod span;

pub use alloc::{alloc_snapshot, heap_stats, peak_rss_bytes, CountingAlloc, HeapStats};
pub use convergence::{ConvergenceRecorder, IterationSample};
pub use export::{render_jsonl, render_prometheus, write_snapshot};
pub use hostprof::{HostRunReport, ThreadReport};
pub use ledger::{append_history, PhaseSample, RunRecord};
pub use registry::{global, Counter, Gauge, HistSnapshot, Histogram, MetricsSnapshot, Registry};
pub use span::{timed_phase, PhaseSpan};
