//! Host-parallel execution observatory: aggregation, rendering, and the
//! regression gate over [`nulpa_core::HostProfData`].
//!
//! `nulpa-core`'s `hostprof` module collects the raw per-thread
//! timelines, per-bucket work counters, and per-iteration repair
//! statistics of a fast-path run; this module is the reporting side:
//!
//! * [`summarize`] folds one run's raw data into a [`HostRunReport`] —
//!   per-thread busy time/utilization/span percentiles, per-bucket
//!   totals, imbalance (max/mean busy), and the repair rate;
//! * [`render_report`] formats reports as the text tables behind
//!   `nulpa profile --host`, [`report_json`] as the `--json` document;
//! * [`write_chrome_trace`] exports the raw span timelines as a
//!   Chrome/Perfetto trace with one track per worker thread;
//! * [`baseline_json`] / [`check_against_baseline`] implement the
//!   `results/hostprof_baseline.json` regression gate: repair rate and
//!   iteration count are deterministic and thread-count-invariant (the
//!   commit schedule is a pure function of the candidate order), so
//!   they gate tightly; imbalance is wall-clock and only gates above a
//!   busy-time noise floor;
//! * [`record_registry`] mirrors the headline numbers into the global
//!   metrics [`Registry`] so Prometheus/JSONL snapshots carry them.
//!
//! Everything here consumes plain data — it compiles and tests
//! identically whether or not the `hostprof` cargo feature (which gates
//! only the *recorder* inside `nulpa-core`) is enabled.

use crate::registry::{global, Registry};
use nulpa_core::{BucketCounters, HostProfData, IterRepairStats, SpanKind, BUCKET_NAMES};
use nulpa_obs::export::ChromeTraceSink;
use nulpa_obs::json::{escape, fmt_f64, parse};
use nulpa_obs::sink::{TraceSink, Value};
use nulpa_obs::{Hist, Percentiles};
use std::io::Write;

/// Repair-rate gate: absolute slack added to the baseline.
pub const REPAIR_RATE_ABS: f64 = 0.01;
/// Repair-rate gate: relative slack added to the baseline.
pub const REPAIR_RATE_FRAC: f64 = 0.10;
/// Imbalance gate: runs whose mean per-thread busy time is below this
/// floor (milliseconds) are too short to gate — scheduler noise swamps
/// the signal on small graphs and single-core hosts.
pub const IMBALANCE_BUSY_FLOOR_MS: f64 = 50.0;
/// Imbalance gate: relative slack on the baseline.
pub const IMBALANCE_FRAC: f64 = 0.25;
/// Imbalance gate: absolute slack on the baseline.
pub const IMBALANCE_ABS: f64 = 0.5;

/// One thread's row in the utilization table.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadReport {
    /// Thread index (0 is the lead/commit thread).
    pub tid: usize,
    /// Total time inside spans, milliseconds.
    pub busy_ms: f64,
    /// `busy / wall` — fraction of the run this thread spent working.
    pub utilization: f64,
    /// Spans recorded.
    pub spans: usize,
    /// Span-duration percentiles, nanoseconds.
    pub span_ns: Percentiles,
}

/// Aggregated view of one profiled `lpa_native` run.
#[derive(Clone, Debug, PartialEq)]
pub struct HostRunReport {
    /// Graph label the run was profiled on.
    pub graph: String,
    /// Resolved thread count.
    pub threads: usize,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
    /// Iterations committed.
    pub iterations: usize,
    /// Max/mean per-thread busy time (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Fraction of speculative picks the sequential commit recomputed.
    pub repair_rate: f64,
    /// Mean per-thread busy time, milliseconds.
    pub busy_ms_mean: f64,
    /// Total cursor-CAS retries (contention proxy; wall-clock noisy).
    pub cas_retries: u64,
    /// Per-thread utilization rows.
    pub per_thread: Vec<ThreadReport>,
    /// Per-bucket work totals, indexed like [`BUCKET_NAMES`].
    pub buckets: [BucketCounters; 3],
    /// Per-iteration repair statistics (deterministic schedule fields).
    pub iters: Vec<IterRepairStats>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Fold one run's raw profile into a report.
pub fn summarize(graph: &str, data: &HostProfData) -> HostRunReport {
    let wall_ns = data.wall_ns.max(1);
    let per_thread = data
        .per_thread
        .iter()
        .enumerate()
        .map(|(tid, t)| {
            let mut h = Hist::new();
            for s in &t.spans {
                h.record(s.dur_ns);
            }
            ThreadReport {
                tid,
                busy_ms: ms(t.busy_ns),
                utilization: t.busy_ns as f64 / wall_ns as f64,
                spans: t.spans.len(),
                span_ns: h.percentiles(),
            }
        })
        .collect();
    HostRunReport {
        graph: graph.to_string(),
        threads: data.threads,
        wall_ms: ms(data.wall_ns),
        iterations: data.iters.len(),
        imbalance: data.imbalance(),
        repair_rate: data.repair_rate(),
        busy_ms_mean: data.busy_ns_mean() / 1e6,
        cas_retries: data.cas_retries(),
        per_thread,
        buckets: data.bucket_totals(),
        iters: data.iters.clone(),
    }
}

/// Render reports as the `nulpa profile --host` text tables.
pub fn render_report(reports: &[HostRunReport]) -> String {
    let mut out = String::new();
    for r in reports {
        let (repaired, cands): (u64, u64) = r
            .iters
            .iter()
            .fold((0, 0), |(a, b), i| (a + i.repaired, b + i.candidates));
        out.push_str(&format!(
            "host profile: {}  threads={}  wall {:.2} ms  iters {}\n",
            r.graph, r.threads, r.wall_ms, r.iterations
        ));
        out.push_str(&format!(
            "  imbalance {:.2}x   repair rate {:.2}% ({repaired}/{cands})   cursor CAS retries {}\n",
            r.imbalance,
            r.repair_rate * 100.0,
            r.cas_retries
        ));
        out.push_str("  thread      busy_ms   util%   spans   p50_us   p95_us   max_us\n");
        for t in &r.per_thread {
            let label = if t.tid == 0 {
                "0 (lead)".to_string()
            } else {
                t.tid.to_string()
            };
            out.push_str(&format!(
                "  {label:<10}{:>9.2}{:>8.1}{:>8}{:>9}{:>9}{:>9}\n",
                t.busy_ms,
                t.utilization * 100.0,
                t.spans,
                t.span_ns.p50 / 1_000,
                t.span_ns.p95 / 1_000,
                t.span_ns.max / 1_000,
            ));
        }
        out.push_str("  bucket   vertices      edges   chunks   cas_retries\n");
        for (name, b) in BUCKET_NAMES.iter().zip(r.buckets.iter()) {
            out.push_str(&format!(
                "  {name:<7}{:>11}{:>11}{:>9}{:>14}\n",
                b.vertices, b.edges, b.chunks, b.cas_retries
            ));
        }
        out.push_str("  repair trajectory (iter: repaired/candidates, blocks hit/total):\n");
        for chunk in r.iters.chunks(4) {
            out.push_str("   ");
            for i in chunk {
                out.push_str(&format!(
                    " {}: {}/{} {}/{}",
                    i.iter, i.repaired, i.candidates, i.repair_blocks, i.blocks
                ));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

fn report_obj(r: &HostRunReport) -> String {
    let threads: Vec<String> = r
        .per_thread
        .iter()
        .map(|t| {
            format!(
                "{{\"tid\":{},\"busy_ms\":{},\"utilization\":{},\"spans\":{},\
                 \"p50_ns\":{},\"p95_ns\":{},\"max_ns\":{}}}",
                t.tid,
                fmt_f64(t.busy_ms),
                fmt_f64(t.utilization),
                t.spans,
                t.span_ns.p50,
                t.span_ns.p95,
                t.span_ns.max
            )
        })
        .collect();
    let buckets: Vec<String> = BUCKET_NAMES
        .iter()
        .zip(r.buckets.iter())
        .map(|(name, b)| {
            format!(
                "{{\"name\":{},\"vertices\":{},\"edges\":{},\"chunks\":{},\"cas_retries\":{}}}",
                escape(name),
                b.vertices,
                b.edges,
                b.chunks,
                b.cas_retries
            )
        })
        .collect();
    let iters: Vec<String> = r
        .iters
        .iter()
        .map(|i| {
            format!(
                "{{\"iter\":{},\"blocks\":{},\"candidates\":{},\"repaired\":{},\
                 \"repair_blocks\":{},\"committed\":{},\"commit_ms\":{}}}",
                i.iter,
                i.blocks,
                i.candidates,
                i.repaired,
                i.repair_blocks,
                i.committed,
                fmt_f64(i.commit_ns as f64 / 1e6)
            )
        })
        .collect();
    format!(
        "{{\"graph\":{},\"threads\":{},\"wall_ms\":{},\"iterations\":{},\
         \"imbalance\":{},\"repair_rate\":{},\"busy_ms_mean\":{},\"cas_retries\":{},\
         \"per_thread\":[{}],\"buckets\":[{}],\"iters\":[{}]}}",
        escape(&r.graph),
        r.threads,
        fmt_f64(r.wall_ms),
        r.iterations,
        fmt_f64(r.imbalance),
        fmt_f64(r.repair_rate),
        fmt_f64(r.busy_ms_mean),
        r.cas_retries,
        threads.join(","),
        buckets.join(","),
        iters.join(",")
    )
}

/// Full JSON document for `nulpa profile --host --json`; `meta` is the
/// caller's provenance object (pass `"{}"` for none).
pub fn report_json(meta_json: &str, reports: &[HostRunReport]) -> String {
    let runs: Vec<String> = reports.iter().map(report_obj).collect();
    format!(
        "{{\"schema\":\"hostprof-report-v1\",\"meta\":{meta_json},\"runs\":[{}]}}\n",
        runs.join(",")
    )
}

/// Compact baseline document for the regression gate: one entry per
/// (graph, threads) row carrying only the gated and context fields.
pub fn baseline_json(reports: &[HostRunReport]) -> String {
    let entries: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                "  {{\"graph\":{},\"threads\":{},\"iterations\":{},\"repair_rate\":{},\
                 \"imbalance\":{},\"busy_ms_mean\":{},\"cas_retries\":{}}}",
                escape(&r.graph),
                r.threads,
                r.iterations,
                fmt_f64(r.repair_rate),
                fmt_f64(r.imbalance),
                fmt_f64(r.busy_ms_mean),
                r.cas_retries
            )
        })
        .collect();
    format!(
        "{{\"schema\":\"hostprof-baseline-v1\",\"entries\":[\n{}\n]}}\n",
        entries.join(",\n")
    )
}

/// Gate current reports against a baseline document produced by
/// [`baseline_json`]. Returns the number of matched entries, or the list
/// of human-readable failures. Matching no entries at all is a failure —
/// a renamed graph must not silently disable the gate.
pub fn check_against_baseline(
    baseline: &str,
    reports: &[HostRunReport],
) -> Result<usize, Vec<String>> {
    let doc = match parse(baseline) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("baseline is not valid JSON: {e}")]),
    };
    let entries = match doc.get("entries").and_then(|e| e.as_arr()) {
        Some(e) => e,
        None => return Err(vec!["baseline has no \"entries\" array".to_string()]),
    };
    let mut failures = Vec::new();
    let mut matched = 0usize;
    for r in reports {
        let entry = entries.iter().find(|e| {
            e.get("graph").and_then(|g| g.as_str()) == Some(r.graph.as_str())
                && e.get("threads").and_then(|t| t.as_u64()) == Some(r.threads as u64)
        });
        let Some(entry) = entry else { continue };
        matched += 1;
        let key = format!("{} threads={}", r.graph, r.threads);
        if let Some(base_iters) = entry.get("iterations").and_then(|v| v.as_u64()) {
            // Iteration count is deterministic at any thread count: a
            // mismatch means the commit schedule itself changed.
            if r.iterations as u64 != base_iters {
                failures.push(format!(
                    "{key}: iterations {} != baseline {} (schedule changed; \
                     regenerate the baseline if intentional)",
                    r.iterations, base_iters
                ));
            }
        }
        if let Some(base_rate) = entry.get("repair_rate").and_then(|v| v.as_f64()) {
            let limit = base_rate + REPAIR_RATE_ABS.max(REPAIR_RATE_FRAC * base_rate);
            if r.repair_rate > limit {
                failures.push(format!(
                    "{key}: repair rate {:.4} exceeds baseline {:.4} + slack (limit {:.4})",
                    r.repair_rate, base_rate, limit
                ));
            }
        }
        if let Some(base_imb) = entry.get("imbalance").and_then(|v| v.as_f64()) {
            // Imbalance is wall-clock: only gate when this run did enough
            // work for the max/mean ratio to mean anything.
            if r.busy_ms_mean > IMBALANCE_BUSY_FLOOR_MS {
                let limit = base_imb * (1.0 + IMBALANCE_FRAC) + IMBALANCE_ABS;
                if r.imbalance > limit {
                    failures.push(format!(
                        "{key}: imbalance {:.2} exceeds baseline {:.2} + slack (limit {:.2})",
                        r.imbalance, base_imb, limit
                    ));
                }
            }
        }
    }
    if matched == 0 {
        failures.push("no baseline entries matched any profiled run".to_string());
    }
    if failures.is_empty() {
        Ok(matched)
    } else {
        Err(failures)
    }
}

/// Export one run's raw span timelines as a Chrome/Perfetto trace with
/// one track per worker thread (timestamps in microseconds since the
/// run began). Span durations are also aggregated into `compute_ns` /
/// `commit_ns` histograms flushed at the end of the trace.
pub fn write_chrome_trace<W: Write>(
    out: W,
    graph: &str,
    data: &HostProfData,
) -> Result<W, std::io::Error> {
    let names: Vec<String> = (0..data.per_thread.len())
        .map(|t| {
            if t == 0 {
                "thread 0 (lead)".to_string()
            } else {
                format!("thread {t}")
            }
        })
        .collect();
    let tracks: Vec<(u32, &str)> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (i as u32, n.as_str()))
        .collect();
    let mut sink =
        ChromeTraceSink::with_tracks(out, &format!("nu-lpa host profile: {graph}"), &tracks);
    for (tid, t) in data.per_thread.iter().enumerate() {
        for s in &t.spans {
            let (name, hist) = match s.kind {
                SpanKind::Compute => ("compute", "compute_ns"),
                SpanKind::Commit => ("commit", "commit_ns"),
            };
            sink.span_begin(
                tid as u32,
                name,
                s.start_ns / 1_000,
                &[
                    ("iter", Value::from(s.iter as u64)),
                    ("block", Value::from(s.block as u64)),
                ],
            );
            sink.span_end(tid as u32, name, (s.start_ns + s.dur_ns) / 1_000, &[]);
            sink.hist_sample(hist, s.dur_ns);
        }
    }
    sink.into_inner()
}

/// Mirror a report's headline numbers into `registry` (see
/// [`record_registry`] for the global variant).
pub fn record_into(registry: &Registry, r: &HostRunReport) {
    registry.counter("hostprof.runs").inc();
    registry.counter("hostprof.cas_retries").add(r.cas_retries);
    for (name, b) in BUCKET_NAMES.iter().zip(r.buckets.iter()) {
        registry
            .counter(&format!("hostprof.bucket.{name}.vertices"))
            .add(b.vertices);
        registry
            .counter(&format!("hostprof.bucket.{name}.edges"))
            .add(b.edges);
        registry
            .counter(&format!("hostprof.bucket.{name}.chunks"))
            .add(b.chunks);
    }
    registry
        .gauge("hostprof.last.imbalance_milli")
        .set((r.imbalance * 1e3) as i64);
    registry
        .gauge("hostprof.last.repair_rate_ppm")
        .set((r.repair_rate * 1e6) as i64);
    let busy = registry.histogram("hostprof.thread_busy_ms");
    for t in &r.per_thread {
        busy.record(t.busy_ms as u64);
    }
}

/// [`record_into`] the process-global registry.
pub fn record_registry(r: &HostRunReport) {
    record_into(global(), r);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_core::{SpanRec, ThreadProfData};

    fn sample_data() -> HostProfData {
        let spans0 = vec![
            SpanRec {
                iter: 0,
                block: 0,
                kind: SpanKind::Compute,
                start_ns: 0,
                dur_ns: 2_000,
            },
            SpanRec {
                iter: 0,
                block: 0,
                kind: SpanKind::Commit,
                start_ns: 2_500,
                dur_ns: 1_000,
            },
        ];
        let spans1 = vec![SpanRec {
            iter: 0,
            block: 0,
            kind: SpanKind::Compute,
            start_ns: 100,
            dur_ns: 1_500,
        }];
        let mut t0 = ThreadProfData {
            spans: spans0,
            busy_ns: 3_000,
            ..Default::default()
        };
        t0.buckets[0] = BucketCounters {
            vertices: 60,
            edges: 120,
            chunks: 3,
            cas_retries: 2,
        };
        let mut t1 = ThreadProfData {
            spans: spans1,
            busy_ns: 1_500,
            ..Default::default()
        };
        t1.buckets[2] = BucketCounters {
            vertices: 40,
            edges: 400,
            chunks: 1,
            cas_retries: 0,
        };
        HostProfData {
            threads: 2,
            wall_ns: 4_000,
            per_thread: vec![t0, t1],
            iters: vec![IterRepairStats {
                iter: 0,
                blocks: 1,
                candidates: 100,
                repaired: 4,
                repair_blocks: 1,
                committed: 42,
                commit_ns: 1_000,
            }],
        }
    }

    #[test]
    fn summarize_computes_utilization_and_rates() {
        let r = summarize("g", &sample_data());
        assert_eq!(r.threads, 2);
        assert_eq!(r.iterations, 1);
        assert!((r.per_thread[0].utilization - 0.75).abs() < 1e-12);
        assert!((r.per_thread[1].utilization - 0.375).abs() < 1e-12);
        // imbalance = max 3000 / mean 2250
        assert!((r.imbalance - 3_000.0 / 2_250.0).abs() < 1e-12);
        assert!((r.repair_rate - 0.04).abs() < 1e-12);
        assert_eq!(r.cas_retries, 2);
        assert_eq!(r.buckets[0].vertices, 60);
        assert_eq!(r.buckets[2].edges, 400);
        assert_eq!(r.per_thread[0].spans, 2);
    }

    #[test]
    fn text_report_names_every_section() {
        let text = render_report(&[summarize("toy-graph", &sample_data())]);
        for needle in [
            "host profile: toy-graph",
            "threads=2",
            "imbalance",
            "repair rate",
            "0 (lead)",
            "bucket",
            "low",
            "high",
            "repair trajectory",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn report_json_parses_and_carries_runs() {
        let r = summarize("g", &sample_data());
        let doc = parse(&report_json("{}", &[r.clone(), r])).unwrap();
        let runs = doc.get("runs").unwrap().as_arr().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("graph").unwrap().as_str(), Some("g"));
        assert_eq!(runs[0].get("threads").unwrap().as_u64(), Some(2));
        let threads = runs[0].get("per_thread").unwrap().as_arr().unwrap();
        assert_eq!(threads.len(), 2);
        let buckets = runs[0].get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].get("name").unwrap().as_str(), Some("low"));
    }

    #[test]
    fn baseline_roundtrip_passes_gate() {
        let reports = vec![summarize("g", &sample_data())];
        let baseline = baseline_json(&reports);
        assert_eq!(check_against_baseline(&baseline, &reports), Ok(1));
    }

    #[test]
    fn gate_fails_on_repair_rate_regression() {
        let mut reports = vec![summarize("g", &sample_data())];
        let baseline = baseline_json(&reports);
        // current run repairs far more than the recorded baseline
        reports[0].repair_rate = 0.5;
        let failures = check_against_baseline(&baseline, &reports).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("repair rate")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_fails_on_iteration_schedule_change() {
        let mut reports = vec![summarize("g", &sample_data())];
        let baseline = baseline_json(&reports);
        reports[0].iterations = 7;
        let failures = check_against_baseline(&baseline, &reports).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("iterations")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_ignores_imbalance_below_noise_floor_but_not_above() {
        let mut reports = vec![summarize("g", &sample_data())];
        let baseline = baseline_json(&reports);
        // tiny busy time: imbalance spike is ignored
        reports[0].imbalance = 100.0;
        assert!(check_against_baseline(&baseline, &reports).is_ok());
        // heavy run: the same spike fails
        reports[0].busy_ms_mean = IMBALANCE_BUSY_FLOOR_MS * 2.0;
        let failures = check_against_baseline(&baseline, &reports).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("imbalance")),
            "{failures:?}"
        );
    }

    #[test]
    fn gate_rejects_when_nothing_matches() {
        let reports = vec![summarize("g", &sample_data())];
        let baseline = baseline_json(&reports);
        let renamed = vec![HostRunReport {
            graph: "other".to_string(),
            ..reports[0].clone()
        }];
        let failures = check_against_baseline(&baseline, &renamed).unwrap_err();
        assert!(failures[0].contains("no baseline entries matched"));
        // malformed baselines fail loudly too
        assert!(check_against_baseline("not json", &reports).is_err());
        assert!(check_against_baseline("{}", &reports).is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_one_track_per_thread() {
        let data = sample_data();
        let buf = write_chrome_trace(Vec::new(), "g", &data).unwrap();
        let doc = parse(&String::from_utf8(buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args").unwrap().get("name").unwrap().as_str())
            .collect();
        assert!(names.contains(&"thread 0 (lead)"));
        assert!(names.contains(&"thread 1"));
        let begins = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("E"))
            .count();
        assert_eq!(begins, 3);
        assert_eq!(begins, ends);
    }

    #[test]
    fn registry_recording_accumulates() {
        let reg = Registry::new();
        let r = summarize("g", &sample_data());
        record_into(&reg, &r);
        record_into(&reg, &r);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hostprof.runs"], 2);
        assert_eq!(snap.counters["hostprof.cas_retries"], 4);
        assert_eq!(snap.counters["hostprof.bucket.low.vertices"], 120);
        assert_eq!(snap.gauges["hostprof.last.repair_rate_ppm"], 40_000);
        assert_eq!(snap.hists["hostprof.thread_busy_ms"].count, 4);
    }
}
