//! Per-iteration convergence telemetry for the LPA backends.
//!
//! [`ConvergenceRecorder`] implements [`nulpa_core::IterObserver`] and is
//! attached through the backends' `_observed` entry points. After every
//! committed iteration it records an [`IterationSample`]: ΔN, the
//! active-vertex fraction (Traag & Šubelj's key frontier-scheduling
//! signal — the fraction of vertices still being processed), the
//! community count and label entropy, and the modularity of the current
//! labeling.
//!
//! Modularity is maintained *incrementally*: the recorder keeps the
//! Eq. 1 per-community sums (`σ_c` intra-community directed weight, `Σ_c`
//! incident directed weight) and community sizes, and updates them per
//! label move in `O(deg(v))` by diffing the observed labels against the
//! previous iteration's — re-scoring with
//! [`nulpa_metrics::modularity_from_sums`]. A full recomputation per
//! iteration would be `O(|E|)` per iteration and dominate small runs; the
//! incremental path costs only the changed vertices' adjacency, matching
//! the backends' own pruning philosophy. The equivalence test asserts the
//! trajectory matches `nulpa_metrics::modularity` recomputed from scratch
//! to within f64 noise.

use nulpa_core::IterObserver;
use nulpa_graph::{Csr, VertexId};
use nulpa_metrics::modularity_from_sums;

/// One iteration's convergence measurements.
#[derive(Clone, Debug, PartialEq)]
pub struct IterationSample {
    /// 0-based iteration index.
    pub iter: u32,
    /// Vertices whose label changed (net of Cross-Check reverts).
    pub delta_n: usize,
    /// Candidate vertices processed (the pruned work set).
    pub active: usize,
    /// `active / |V|` — the frontier-scheduling signal.
    pub active_fraction: f64,
    /// Vertices the iteration inspected to build the work set: |V| for a
    /// dense sweep, the worklist length under `LpaConfig::frontier`. The
    /// frontier win is this column collapsing while `delta_n` tracks the
    /// dense run exactly.
    pub scanned: usize,
    /// Distinct communities after the iteration.
    pub communities: usize,
    /// Shannon entropy (bits) of the community-size distribution.
    pub entropy_bits: f64,
    /// Modularity `Q` (Eq. 1) of the labeling after the iteration.
    pub modularity: f64,
}

/// Incrementally maintained convergence trajectory; see module docs.
#[derive(Debug)]
pub struct ConvergenceRecorder<'g> {
    g: &'g Csr,
    two_m: f64,
    /// Labels as of the last observed iteration (starts at identity —
    /// every backend initialises `C[v] = v`).
    prev: Vec<VertexId>,
    sizes: Vec<u32>,
    sigma_in: Vec<f64>,
    sigma_tot: Vec<f64>,
    communities: usize,
    /// `Σ_c s_c·log2(s_c)` over community sizes, maintained per move so
    /// entropy is O(1) per iteration: `H = log2(n) − SLS/n`.
    size_log_sum: f64,
    /// The recorded trajectory.
    pub samples: Vec<IterationSample>,
}

fn s_log2_s(s: u32) -> f64 {
    if s <= 1 {
        0.0
    } else {
        let s = s as f64;
        s * s.log2()
    }
}

impl<'g> ConvergenceRecorder<'g> {
    /// New recorder for a run on `g` starting from the identity labeling.
    pub fn new(g: &'g Csr) -> Self {
        let n = g.num_vertices();
        let mut sigma_in = vec![0.0; n];
        let mut sigma_tot = vec![0.0; n];
        for v in 0..n as VertexId {
            sigma_tot[v as usize] = g.weighted_degree(v);
            // Under identity labels the only intra-community edges are
            // self loops.
            for (u, w) in g.neighbors(v) {
                if u == v {
                    sigma_in[v as usize] += w as f64;
                }
            }
        }
        ConvergenceRecorder {
            g,
            two_m: g.total_weight(),
            prev: (0..n as VertexId).collect(),
            sizes: vec![1; n],
            sigma_in,
            sigma_tot,
            communities: n,
            size_log_sum: 0.0,
            samples: Vec::new(),
        }
    }

    /// Apply one label move `v: d → c` against the current `prev` state,
    /// updating the Eq. 1 sums exactly.
    fn apply_move(&mut self, v: VertexId, c: VertexId) {
        let d = self.prev[v as usize];
        debug_assert_ne!(d, c);
        let k_v = self.g.weighted_degree(v);
        self.sigma_tot[d as usize] -= k_v;
        self.sigma_tot[c as usize] += k_v;
        for (u, w) in self.g.neighbors(v) {
            let w = w as f64;
            if u == v {
                // A self loop appears once in v's adjacency and stays
                // intra-community on both sides of the move.
                self.sigma_in[d as usize] -= w;
                self.sigma_in[c as usize] += w;
                continue;
            }
            // The symmetric edge (u, v) contributes the same weight from
            // u's adjacency, hence the factor 2.
            let lu = self.prev[u as usize];
            if lu == d {
                self.sigma_in[d as usize] -= 2.0 * w;
            }
            if lu == c {
                self.sigma_in[c as usize] += 2.0 * w;
            }
        }
        self.size_log_sum -= s_log2_s(self.sizes[d as usize]) + s_log2_s(self.sizes[c as usize]);
        self.sizes[d as usize] -= 1;
        self.sizes[c as usize] += 1;
        self.size_log_sum += s_log2_s(self.sizes[d as usize]) + s_log2_s(self.sizes[c as usize]);
        if self.sizes[d as usize] == 0 {
            self.communities -= 1;
        }
        if self.sizes[c as usize] == 1 {
            self.communities += 1;
        }
        self.prev[v as usize] = c;
    }

    /// Modularity of the currently tracked labeling.
    pub fn current_modularity(&self) -> f64 {
        modularity_from_sums(&self.sigma_in, &self.sigma_tot, self.two_m)
    }

    /// Entropy (bits) of the currently tracked community sizes.
    pub fn current_entropy_bits(&self) -> f64 {
        let n = self.prev.len();
        if n == 0 {
            return 0.0;
        }
        ((n as f64).log2() - self.size_log_sum / n as f64).max(0.0)
    }

    /// Final modularity — the last sample's, or the identity labeling's
    /// when the run had zero iterations.
    pub fn final_modularity(&self) -> f64 {
        self.samples
            .last()
            .map(|s| s.modularity)
            .unwrap_or_else(|| self.current_modularity())
    }
}

impl IterObserver for ConvergenceRecorder<'_> {
    fn on_iteration(
        &mut self,
        iter: u32,
        changed: usize,
        active: usize,
        scanned: usize,
        labels: &[VertexId],
    ) {
        assert_eq!(labels.len(), self.prev.len(), "label length mismatch");
        for (v, &label) in labels.iter().enumerate() {
            if label != self.prev[v] {
                self.apply_move(v as VertexId, label);
            }
        }
        let n = self.prev.len();
        self.samples.push(IterationSample {
            iter,
            delta_n: changed,
            active,
            active_fraction: active as f64 / n.max(1) as f64,
            scanned,
            communities: self.communities,
            entropy_bits: self.current_entropy_bits(),
            modularity: self.current_modularity(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_core::{lpa_seq_observed, LpaConfig};
    use nulpa_graph::gen::{caveman_weighted, erdos_renyi, two_cliques_light_bridge};
    use nulpa_graph::GraphBuilder;
    use nulpa_metrics::{community_count, modularity};
    use nulpa_obs::NullSink as ObsNullSink;

    /// Independent check: apply the recorder to hand-rolled label
    /// sequences and compare against from-scratch recomputation.
    #[test]
    fn incremental_matches_recompute_on_synthetic_moves() {
        let g = erdos_renyi(120, 360, 17);
        let n = g.num_vertices();
        let mut rec = ConvergenceRecorder::new(&g);
        // three synthetic "iterations" of label merges
        let mut labels: Vec<VertexId> = (0..n as VertexId).collect();
        for (round, modulus) in [(0u32, 16u32), (1, 4), (2, 2)] {
            for l in labels.iter_mut() {
                *l %= modulus;
            }
            rec.on_iteration(round, n, n, n, &labels);
            let expect = modularity(&g, &labels);
            let got = rec.samples.last().unwrap().modularity;
            assert!(
                (got - expect).abs() < 1e-9,
                "round {round}: incremental {got} vs recomputed {expect}"
            );
            assert_eq!(
                rec.samples.last().unwrap().communities,
                community_count(&labels)
            );
        }
    }

    #[test]
    fn tracks_real_seq_run() {
        for g in [
            two_cliques_light_bridge(6),
            caveman_weighted(4, 8, 0.5),
            erdos_renyi(200, 600, 42),
        ] {
            let mut rec = ConvergenceRecorder::new(&g);
            let r = lpa_seq_observed(&g, &LpaConfig::default(), &mut ObsNullSink, &mut rec);
            assert_eq!(rec.samples.len(), r.iterations as usize);
            // ΔN trajectory matches the backend's own record
            let dn: Vec<usize> = rec.samples.iter().map(|s| s.delta_n).collect();
            assert_eq!(dn, r.changed_per_iter);
            // final incremental Q equals from-scratch Q on final labels
            let q = modularity(&g, &r.labels);
            assert!(
                (rec.final_modularity() - q).abs() < 1e-9,
                "incremental {} vs recomputed {q}",
                rec.final_modularity()
            );
            assert_eq!(
                rec.samples.last().unwrap().communities,
                community_count(&r.labels)
            );
        }
    }

    #[test]
    fn entropy_bounds_and_monotonicity_of_fractions() {
        let g = caveman_weighted(6, 8, 0.5);
        let mut rec = ConvergenceRecorder::new(&g);
        lpa_seq_observed(&g, &LpaConfig::default(), &mut ObsNullSink, &mut rec);
        let n = g.num_vertices() as f64;
        for s in &rec.samples {
            assert!(s.entropy_bits >= 0.0 && s.entropy_bits <= n.log2() + 1e-9);
            assert!(s.active_fraction >= 0.0 && s.active_fraction <= 1.0);
        }
        // converged caveman run: last iteration is near-stable
        assert!(rec.samples.last().unwrap().delta_n <= rec.samples[0].delta_n);
    }

    #[test]
    fn self_loops_handled_exactly() {
        let g = GraphBuilder::new(4)
            .keep_self_loops(true)
            .add_edge(0, 0, 3.0)
            .add_undirected_edge(0, 1, 1.0)
            .add_undirected_edge(2, 3, 2.0)
            .build();
        let mut rec = ConvergenceRecorder::new(&g);
        let labels = vec![0, 0, 2, 2];
        rec.on_iteration(0, 2, 4, 4, &labels);
        let expect = modularity(&g, &labels);
        let got = rec.samples[0].modularity;
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn zero_iteration_run_reports_identity_quality() {
        let g = nulpa_graph::Csr::empty(5);
        let rec = ConvergenceRecorder::new(&g);
        assert_eq!(rec.final_modularity(), 0.0);
        assert_eq!(rec.communities, 5);
    }
}
