//! Counting global allocator and process memory statistics.
//!
//! [`CountingAlloc`] wraps the system allocator and keeps four relaxed
//! atomics: current live bytes, peak live bytes, total bytes ever
//! allocated, and allocation count. A binary opts in with
//! [`crate::install_counting_alloc!`]; library code then reads
//! [`heap_stats`], which returns `None` in binaries that did not install
//! the shim (reports say "unavailable" instead of lying with zeros).
//!
//! [`peak_rss_bytes`] reads the OS-reported peak resident set (`VmHWM`
//! in `/proc/self/status`) as a cross-check: RSS includes code, stacks,
//! and allocator slack that the heap counters do not.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static CURRENT: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);
static TOTAL: AtomicU64 = AtomicU64::new(0);
static COUNT: AtomicU64 = AtomicU64::new(0);

#[inline]
fn record_alloc(size: usize) {
    let live = CURRENT.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK.fetch_max(live, Ordering::Relaxed);
    TOTAL.fetch_add(size as u64, Ordering::Relaxed);
    COUNT.fetch_add(1, Ordering::Relaxed);
}

#[inline]
fn record_dealloc(size: usize) {
    CURRENT.fetch_sub(size as u64, Ordering::Relaxed);
}

/// A [`GlobalAlloc`] shim over [`System`] that meters every allocation
/// with relaxed atomics (a few nanoseconds per call — the neutrality
/// test bounds total overhead).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for memory management; the only
// addition is relaxed atomic accounting, which allocates nothing and
// cannot fail or reenter the allocator.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            record_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        record_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            record_dealloc(layout.size());
            record_alloc(new_size);
        }
        p
    }
}

/// Install [`CountingAlloc`] as the binary's global allocator. Invoke
/// once at the top of `main.rs`:
///
/// ```ignore
/// nulpa_telemetry::install_counting_alloc!();
/// ```
#[macro_export]
macro_rules! install_counting_alloc {
    () => {
        #[global_allocator]
        static NULPA_COUNTING_ALLOC: $crate::alloc::CountingAlloc = $crate::alloc::CountingAlloc;
    };
}

/// Heap accounting read from the counting allocator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapStats {
    /// Live heap bytes right now.
    pub current_bytes: u64,
    /// High-water mark of live heap bytes.
    pub peak_bytes: u64,
    /// Total bytes ever allocated (monotonic).
    pub total_allocated_bytes: u64,
    /// Total allocation calls (monotonic).
    pub alloc_count: u64,
}

/// Current heap statistics, or `None` when the counting allocator is not
/// installed in this binary (detected by the total-allocation counter
/// still being zero — any Rust process allocates before user code runs).
pub fn heap_stats() -> Option<HeapStats> {
    let total = TOTAL.load(Ordering::Relaxed);
    if total == 0 {
        return None;
    }
    Some(HeapStats {
        current_bytes: CURRENT.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
        total_allocated_bytes: total,
        alloc_count: COUNT.load(Ordering::Relaxed),
    })
}

/// Snapshot of the monotonic allocation counters, for per-phase deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total bytes ever allocated at snapshot time.
    pub total_allocated_bytes: u64,
    /// Total allocation calls at snapshot time.
    pub alloc_count: u64,
}

/// Take an [`AllocSnapshot`] (zeros when the allocator is not installed —
/// deltas then stay zero, which exporters render as "unavailable").
pub fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        total_allocated_bytes: TOTAL.load(Ordering::Relaxed),
        alloc_count: COUNT.load(Ordering::Relaxed),
    }
}

/// OS-reported peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`); `None` on platforms without procfs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vmhwm(&status)
}

/// Parse the `VmHWM:  12345 kB` line out of `/proc/self/status` text.
fn parse_vmhwm(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_vmhwm_extracts_kb() {
        let status = "Name:\tnulpa\nVmPeak:\t  999 kB\nVmHWM:\t   2048 kB\nThreads:\t1\n";
        assert_eq!(parse_vmhwm(status), Some(2048 * 1024));
        assert_eq!(parse_vmhwm("Name:\tnulpa\n"), None);
    }

    #[test]
    fn peak_rss_available_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("procfs available");
            assert!(rss > 0);
        }
    }

    #[test]
    fn record_paths_monotone() {
        // Drive the accounting fns directly (the test binary does not
        // install the shim, so heap_stats() may be None here).
        record_alloc(100);
        record_alloc(50);
        record_dealloc(50);
        let stats = heap_stats().expect("counters non-zero after record_alloc");
        assert!(stats.total_allocated_bytes >= 150);
        assert!(stats.peak_bytes >= stats.current_bytes);
        assert!(stats.alloc_count >= 2);
    }
}
