//! The append-only run ledger: `results/history.jsonl`.
//!
//! Every telemetered run appends one [`RunRecord`] line — provenance
//! meta (git revision, threads, device), the graph and backend, host
//! wall-clock and phase breakdown, heap/RSS footprint, and the
//! convergence outcome (iterations, communities, final modularity, and
//! the full per-iteration trajectory). Run-over-run history is what the
//! quality gate and every future perf PR is judged against: a
//! point-in-time `results/*.json` report can say "this run was fast",
//! only the ledger can say "this run was faster than last week's".

use crate::convergence::IterationSample;
use nulpa_obs::json::{escape, fmt_f64};
use nulpa_obs::meta::meta_json;
use std::io::Write;

/// One closed phase span (see [`crate::span::PhaseSpan`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSample {
    /// Phase name (`load`, `build`, `iterate`, `flush`, `merge`, …).
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub wall_ns: u64,
    /// Bytes allocated while the span was open (0 without the counting
    /// allocator installed).
    pub alloc_bytes: u64,
    /// Allocation calls while the span was open.
    pub allocs: u64,
}

impl PhaseSample {
    /// Serialise as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"wall_ns\":{},\"alloc_bytes\":{},\"allocs\":{}}}",
            escape(&self.name),
            self.wall_ns,
            self.alloc_bytes,
            self.allocs
        )
    }
}

/// One run's ledger entry.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// Provenance (`git_rev`, `threads`, `device`, `hw_threads`, …) from
    /// [`nulpa_obs::meta::run_meta`] plus host-environment keys.
    pub meta: Vec<(String, String)>,
    /// Graph name or path.
    pub graph: String,
    /// Backend name (`seq`, `nu-lpa`, `nu-lpa-sim`).
    pub backend: String,
    /// Vertices.
    pub n: usize,
    /// Directed edges.
    pub m: usize,
    /// Total wall-clock of the measured run, milliseconds.
    pub wall_ms: f64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseSample>,
    /// Peak live heap bytes (counting allocator), if installed.
    pub peak_heap_bytes: Option<u64>,
    /// OS peak RSS bytes (`VmHWM`), if available.
    pub peak_rss_bytes: Option<u64>,
    /// Iterations performed.
    pub iterations: u32,
    /// Whether the tolerance test fired before the cap.
    pub converged: bool,
    /// Final community count.
    pub communities: usize,
    /// Final modularity `Q`.
    pub modularity: f64,
    /// Per-iteration convergence trajectory.
    pub trajectory: Vec<IterationSample>,
}

fn opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

impl RunRecord {
    /// Serialise as a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"meta\":");
        out.push_str(&meta_json(&self.meta));
        out.push_str(&format!(
            ",\"graph\":{},\"backend\":{},\"n\":{},\"m\":{},\"wall_ms\":{}",
            escape(&self.graph),
            escape(&self.backend),
            self.n,
            self.m,
            fmt_f64(self.wall_ms)
        ));
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&p.to_json());
        }
        out.push_str(&format!(
            "],\"peak_heap_bytes\":{},\"peak_rss_bytes\":{}",
            opt_u64(self.peak_heap_bytes),
            opt_u64(self.peak_rss_bytes)
        ));
        out.push_str(&format!(
            ",\"iterations\":{},\"converged\":{},\"communities\":{},\"modularity\":{}",
            self.iterations,
            self.converged,
            self.communities,
            fmt_f64(self.modularity)
        ));
        out.push_str(",\"trajectory\":[");
        for (i, s) in self.trajectory.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"iter\":{},\"dN\":{},\"active\":{},\"active_fraction\":{},\
                 \"scanned\":{},\"communities\":{},\"entropy_bits\":{},\"modularity\":{}}}",
                s.iter,
                s.delta_n,
                s.active,
                fmt_f64(s.active_fraction),
                s.scanned,
                s.communities,
                fmt_f64(s.entropy_bits),
                fmt_f64(s.modularity)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Append records to the JSONL ledger at `path` (created, along with its
/// parent directory, if missing). Returns the number of lines written.
pub fn append_history(path: &str, records: &[RunRecord]) -> Result<usize, String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("{path}: {e}"))?;
    for r in records {
        writeln!(f, "{}", r.to_json()).map_err(|e| format!("{path}: {e}"))?;
    }
    Ok(records.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nulpa_obs::json::parse;

    fn record() -> RunRecord {
        RunRecord {
            meta: vec![("git_rev".into(), "abc123".into())],
            graph: "two-cliques-s6".into(),
            backend: "seq".into(),
            n: 12,
            m: 62,
            wall_ms: 1.25,
            phases: vec![PhaseSample {
                name: "iterate".into(),
                wall_ns: 1_000_000,
                alloc_bytes: 4096,
                allocs: 10,
            }],
            peak_heap_bytes: Some(1 << 20),
            peak_rss_bytes: None,
            iterations: 3,
            converged: true,
            communities: 2,
            modularity: 0.4286,
            trajectory: vec![IterationSample {
                iter: 0,
                delta_n: 10,
                active: 12,
                active_fraction: 1.0,
                scanned: 12,
                communities: 2,
                entropy_bits: 1.0,
                modularity: 0.4286,
            }],
        }
    }

    #[test]
    fn record_serialises_to_parseable_json() {
        let text = record().to_json();
        let v = parse(&text).expect("ledger line must parse");
        assert_eq!(v.get("backend").unwrap().as_str(), Some("seq"));
        assert_eq!(v.get("iterations").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("peak_heap_bytes").unwrap().as_u64(), Some(1 << 20));
        assert_eq!(v.get("peak_rss_bytes"), Some(&nulpa_obs::json::Json::Null));
        let traj = v.get("trajectory").unwrap().as_arr().unwrap();
        assert_eq!(traj.len(), 1);
        assert_eq!(traj[0].get("dN").unwrap().as_u64(), Some(10));
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("iterate"));
    }

    #[test]
    fn append_is_append_only() {
        let dir = std::env::temp_dir().join("nulpa-telemetry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history_append.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_history(path, &[record()]).unwrap();
        append_history(path, &[record(), record()]).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            parse(line).expect("every ledger line parses");
        }
    }
}
