//! Registry exporters: Prometheus text exposition and JSONL.
//!
//! The Prometheus format follows the text exposition conventions (one
//! `# TYPE` line per family, `_bucket{le="…"}`/`_sum`/`_count` for
//! histograms with cumulative buckets); metric names are sanitised to
//! `[a-zA-Z0-9_:]` and prefixed `nulpa_`. JSONL emits one object per
//! metric, consumable by the same hand-rolled parser the rest of the
//! workspace uses.

use crate::registry::{MetricsSnapshot, HIST_BUCKETS};
use nulpa_obs::json::{escape, fmt_f64};

/// Sanitise a registry key into a Prometheus metric name.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("nulpa_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Upper bound of log2 bucket `i` as a Prometheus `le` label.
fn bucket_le(i: usize) -> String {
    if i == 0 {
        "0".into()
    } else if i >= 64 {
        "+Inf".into()
    } else {
        // bucket i holds [2^(i-1), 2^i)
        ((1u128 << i) - 1).to_string()
    }
}

/// Render a snapshot as Prometheus text exposition.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.hists {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for i in 0..HIST_BUCKETS {
            cumulative += h.buckets[i];
            // skip interior empty buckets to keep the exposition short,
            // but always emit +Inf
            if h.buckets[i] > 0 || i == HIST_BUCKETS - 1 {
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_le(i)
                ));
            }
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    out
}

/// Render a snapshot as JSONL: one `{"kind", "name", ...}` object per
/// metric, histograms carrying `[lo, count]` rows for non-empty buckets.
pub fn render_jsonl(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"name\":{},\"value\":{value}}}\n",
            escape(name)
        ));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&format!(
            "{{\"kind\":\"gauge\",\"name\":{},\"value\":{value}}}\n",
            escape(name)
        ));
    }
    for (name, h) in &snap.hists {
        out.push_str(&format!(
            "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            escape(name),
            h.count,
            h.sum,
            h.max,
            fmt_f64(h.mean()),
        ));
        let mut first = true;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let lo = if i == 0 { 0u128 } else { 1u128 << (i - 1) };
            out.push_str(&format!("[{lo},{c}]"));
        }
        out.push_str("]}\n");
    }
    out
}

/// Write a snapshot to `path`: `.prom` gets Prometheus text exposition,
/// anything else JSONL. Creates the parent directory as needed.
pub fn write_snapshot(path: &str, snap: &MetricsSnapshot) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    let text = if path.ends_with(".prom") {
        render_prometheus(snap)
    } else {
        render_jsonl(snap)
    };
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("phase.load.wall_ns").add(1500);
        r.gauge("heap.current_bytes").set(4096);
        let h = r.histogram("phase.iterate.ns");
        h.record(0);
        h.record(3);
        h.record(1000);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE nulpa_phase_load_wall_ns counter"));
        assert!(text.contains("nulpa_phase_load_wall_ns 1500"));
        assert!(text.contains("# TYPE nulpa_heap_current_bytes gauge"));
        assert!(text.contains("# TYPE nulpa_phase_iterate_ns histogram"));
        assert!(text.contains("nulpa_phase_iterate_ns_count 3"));
        assert!(text.contains("nulpa_phase_iterate_ns_sum 1003"));
        assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
        // cumulative buckets are non-decreasing
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone buckets: {text}");
            last = v;
        }
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let text = render_jsonl(&sample_registry().snapshot());
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let v = nulpa_obs::json::parse(line).expect("jsonl line parses");
            assert!(v.get("kind").is_some());
        }
    }

    #[test]
    fn prom_name_sanitises() {
        assert_eq!(prom_name("phase.load.ns"), "nulpa_phase_load_ns");
        assert_eq!(prom_name("a-b c"), "nulpa_a_b_c");
    }

    #[test]
    fn write_snapshot_picks_format_by_extension() {
        let dir = std::env::temp_dir().join("nulpa-telemetry-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let reg = sample_registry();
        let prom = dir.join("m.prom");
        let jsonl = dir.join("m.jsonl");
        write_snapshot(prom.to_str().unwrap(), &reg.snapshot()).unwrap();
        write_snapshot(jsonl.to_str().unwrap(), &reg.snapshot()).unwrap();
        assert!(std::fs::read_to_string(prom).unwrap().contains("# TYPE"));
        assert!(std::fs::read_to_string(jsonl)
            .unwrap()
            .contains("\"kind\":\"counter\""));
    }
}
