//! Concurrency properties of the metrics registry: with N real OS
//! threads each performing M increments, totals must sum *exactly* —
//! a lost update anywhere in the lock-free paths would show up as a
//! shortfall. Run under varying thread/iteration mixes via proptest.

use nulpa_telemetry::Registry;
use proptest::prelude::*;
use std::sync::Arc;

/// Hammer one counter from `threads` threads, `per_thread` increments
/// each, returning the final value.
fn hammer_counter(threads: usize, per_thread: u64, step: u64) -> u64 {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let c = reg.counter("hammered");
                for _ in 0..per_thread {
                    c.add(step);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    reg.counter("hammered").get()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counter_sums_exactly(threads in 1..8usize, per_thread in 1..2000u64, step in 1..5u64) {
        let total = hammer_counter(threads, per_thread, step);
        prop_assert_eq!(total, threads as u64 * per_thread * step);
    }
}

#[test]
fn concurrent_histogram_count_and_sum_exact() {
    let reg = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 5000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let h = reg.histogram("latency");
                for i in 0..per_thread {
                    h.record(t as u64 * per_thread + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let snap = reg.histogram("latency").snapshot();
    let n = threads as u64 * per_thread;
    assert_eq!(snap.count, n);
    assert_eq!(snap.sum, n * (n - 1) / 2); // 0 + 1 + … + (n-1)
    assert_eq!(snap.max, n - 1);
    assert_eq!(snap.buckets.iter().sum::<u64>(), n);
}

#[test]
fn concurrent_registration_yields_one_handle_per_name() {
    // Threads racing to register the same names must all land on the
    // same underlying atomics.
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                for i in 0..64 {
                    reg.counter(&format!("racy.{}", i % 4)).inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counters.len(), 4);
    assert_eq!(snap.counters.values().sum::<u64>(), 8 * 64);
}

#[test]
fn concurrent_gauge_fetch_max_is_global_max() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let reg = Arc::clone(&reg);
            std::thread::spawn(move || {
                let g = reg.gauge("peak");
                for i in 0..1000i64 {
                    g.fetch_max(t as i64 * 1000 + i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(reg.gauge("peak").get(), 5999);
}
