//! Fixed-size log2-bucketed histogram.
//!
//! [`Hist`] is `Copy` and allocation-free so it can live inside
//! `KernelStats` (which the simulator copies around and compares with
//! `==`): 32 power-of-two buckets cover the full `u64` range of
//! probe lengths and warp costs. Bucket 0 holds the value 0; bucket
//! `k ≥ 1` holds values in `[2^(k-1), 2^k)`, with everything at or above
//! `2^30` collapsed into the last bucket.

/// Number of buckets.
pub const HIST_BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Sample count per bucket (see module docs for bucket boundaries).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

/// `p50`/`p95`/`max` summary of a [`Hist`], from [`Hist::percentiles`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median estimate (bucket upper bound, capped at `max`).
    pub p50: u64,
    /// 95th-percentile estimate (bucket upper bound, capped at `max`).
    pub p95: u64,
    /// Exact largest recorded sample.
    pub max: u64,
}

/// Bucket index for a value: 0 for 0, else `1 + floor(log2(v))`, clamped.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive-exclusive value bounds `[lo, hi)` of bucket `idx`
/// (`hi == u64::MAX` for the overflow bucket).
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    match idx {
        0 => (0, 1),
        i if i >= HIST_BUCKETS - 1 => (1u64 << (HIST_BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), 1u64 << i),
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th sample, capped at `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return hi.saturating_sub(1).min(self.max).max(lo);
            }
        }
        self.max
    }

    /// The `p50`/`p95`/`max` summary used by tabular reports (host
    /// profiler thread tables, bench timing rows). Quantiles carry the
    /// same bucket-resolution caveat as [`Hist::quantile`]; `max` is the
    /// exact largest sample. All zero when empty.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50: self.quantile(0.5),
            p95: self.quantile(0.95),
            max: self.max,
        }
    }

    /// Non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 29, (1 << 30) + 5, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(
                v >= lo && (v < hi || hi == u64::MAX),
                "v={v} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = Hist::new();
        for v in [0u64, 1, 1, 5, 9] {
            a.record(v);
        }
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 16);
        assert_eq!(a.max, 9);
        assert_eq!(a.buckets[0], 1); // 0
        assert_eq!(a.buckets[1], 2); // 1, 1
        assert_eq!(a.buckets[3], 1); // 5
        assert_eq!(a.buckets[4], 1); // 9

        let mut b = Hist::new();
        b.record(100);
        b.merge(&a);
        assert_eq!(b.count, 6);
        assert_eq!(b.sum, 116);
        assert_eq!(b.max, 100);
        assert!((b.mean() - 116.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(q99 <= h.max);
        assert_eq!(Hist::new().quantile(0.5), 0);
    }

    #[test]
    fn empty_hist_is_all_zeroes() {
        let h = Hist::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max, 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0);
        }
        assert_eq!(h.nonzero_buckets().count(), 0);
        // merging an empty histogram is the identity
        let mut a = Hist::new();
        a.record(5);
        let before = a;
        a.merge(&h);
        assert_eq!(a, before);
    }

    #[test]
    fn single_sample_every_quantile_is_that_sample_bucket() {
        for v in [0u64, 1, 7, 1024] {
            let mut h = Hist::new();
            h.record(v);
            assert!(!h.is_empty());
            assert_eq!(h.mean(), v as f64);
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                let got = h.quantile(q);
                let (lo, _) = bucket_bounds(bucket_index(v));
                // capped at max and floored at the bucket's lower bound
                assert!(got >= lo && got <= h.max.max(lo), "v={v} q={q} got={got}");
            }
            assert_eq!(h.quantile(1.0), h.quantile(0.0));
        }
    }

    #[test]
    fn saturating_top_bucket_percentiles_stay_finite() {
        let mut h = Hist::new();
        // all mass in the overflow bucket: values >= 2^30
        for v in [1u64 << 30, (1 << 40) + 3, 1 << 50] {
            h.record(v);
        }
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 3);
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 1 << 50);
        // percentile estimates must cap at the recorded max, not the
        // overflow bucket's u64::MAX upper bound
        assert_eq!(h.quantile(0.5), 1 << 50);
        assert_eq!(h.quantile(0.99), 1 << 50);
        let mut capped = Hist::new();
        capped.record(1 << 35);
        assert_eq!(capped.quantile(0.99), 1 << 35);
    }

    #[test]
    fn percentiles_empty_hist_is_all_zero() {
        assert_eq!(Hist::new().percentiles(), Percentiles::default());
    }

    #[test]
    fn percentiles_single_sample() {
        let mut h = Hist::new();
        h.record(7);
        let p = h.percentiles();
        // every quantile of a one-sample histogram is that sample's
        // bucket estimate, capped at the exact max
        assert_eq!(p.max, 7);
        assert_eq!(p.p50, 7);
        assert_eq!(p.p95, 7);

        let mut z = Hist::new();
        z.record(0);
        assert_eq!(z.percentiles(), Percentiles::default());
    }

    #[test]
    fn percentiles_saturating_top_bucket_cap_at_max() {
        let mut h = Hist::new();
        for v in [1u64 << 30, (1 << 40) + 3, 1 << 50] {
            h.record(v);
        }
        let p = h.percentiles();
        // the overflow bucket's upper bound is u64::MAX; estimates must
        // cap at the recorded max instead
        assert_eq!(p.p50, 1 << 50);
        assert_eq!(p.p95, 1 << 50);
        assert_eq!(p.max, 1 << 50);
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = Hist::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        let p = h.percentiles();
        assert!(p.p50 <= p.p95);
        assert!(p.p95 <= p.max);
        assert_eq!(p.max, 9_999);
    }

    #[test]
    fn quantile_out_of_range_is_clamped() {
        let mut h = Hist::new();
        h.record(4);
        h.record(8);
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
    }

    #[test]
    fn copy_and_eq() {
        let mut a = Hist::new();
        a.record(3);
        let b = a;
        assert_eq!(a, b);
        let mut c = b;
        c.record(3);
        assert_ne!(a, c);
    }
}
