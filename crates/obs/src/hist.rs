//! Fixed-size log2-bucketed histogram.
//!
//! [`Hist`] is `Copy` and allocation-free so it can live inside
//! `KernelStats` (which the simulator copies around and compares with
//! `==`): 32 power-of-two buckets cover the full `u64` range of
//! probe lengths and warp costs. Bucket 0 holds the value 0; bucket
//! `k ≥ 1` holds values in `[2^(k-1), 2^k)`, with everything at or above
//! `2^30` collapsed into the last bucket.

/// Number of buckets.
pub const HIST_BUCKETS: usize = 32;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Sample count per bucket (see module docs for bucket boundaries).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded.
    pub max: u64,
}

/// Bucket index for a value: 0 for 0, else `1 + floor(log2(v))`, clamped.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive-exclusive value bounds `[lo, hi)` of bucket `idx`
/// (`hi == u64::MAX` for the overflow bucket).
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    match idx {
        0 => (0, 1),
        i if i >= HIST_BUCKETS - 1 => (1u64 << (HIST_BUCKETS - 2), u64::MAX),
        i => (1u64 << (i - 1), 1u64 << i),
    }
}

impl Hist {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the q-th sample, capped at `max`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return hi.saturating_sub(1).min(self.max).max(lo);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, c)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 29, (1 << 30) + 5, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(
                v >= lo && (v < hi || hi == u64::MAX),
                "v={v} lo={lo} hi={hi}"
            );
        }
    }

    #[test]
    fn record_and_merge() {
        let mut a = Hist::new();
        for v in [0u64, 1, 1, 5, 9] {
            a.record(v);
        }
        assert_eq!(a.count, 5);
        assert_eq!(a.sum, 16);
        assert_eq!(a.max, 9);
        assert_eq!(a.buckets[0], 1); // 0
        assert_eq!(a.buckets[1], 2); // 1, 1
        assert_eq!(a.buckets[3], 1); // 5
        assert_eq!(a.buckets[4], 1); // 9

        let mut b = Hist::new();
        b.record(100);
        b.merge(&a);
        assert_eq!(b.count, 6);
        assert_eq!(b.sum, 116);
        assert_eq!(b.max, 100);
        assert!((b.mean() - 116.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Hist::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(q99 <= h.max);
        assert_eq!(Hist::new().quantile(0.5), 0);
    }

    #[test]
    fn copy_and_eq() {
        let mut a = Hist::new();
        a.record(3);
        let b = a;
        assert_eq!(a, b);
        let mut c = b;
        c.record(3);
        assert_ne!(a, c);
    }
}
