//! `nulpa-obs` — structured tracing for the ν-LPA simulator stack.
//!
//! The crate defines the [`TraceSink`] trait that instrumented code
//! (the SIMT wave scheduler, the per-vertex hashtables, the LPA drivers)
//! emits into: spans keyed by simulated cycles, counters, and log2
//! histograms ([`Hist`]). The statically no-op [`NullSink`] is the
//! default so untraced runs pay nothing; [`RecordingSink`] backs tests;
//! [`JsonlSink`] and [`ChromeTraceSink`] are the two file exporters
//! (line-delimited JSON, and Chrome trace-event JSON viewable in
//! Perfetto with 1 simulated cycle rendered as 1 µs).
//!
//! Everything is hand-rolled — the build environment is offline, so the
//! crate has no dependencies ([`json`] holds the tiny JSON writer and
//! recursive-descent parser; [`summary`] reads trace files back for the
//! `nulpa trace` subcommand).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod hist;
pub mod json;
pub mod meta;
pub mod sink;
pub mod summary;

pub use export::{ChromeTraceSink, JsonlSink};
pub use hist::{bucket_bounds, bucket_index, Hist, Percentiles, HIST_BUCKETS};
pub use sink::{track, MetricsEvent, NullSink, RecordingSink, TraceEvent, TraceSink, Value};
pub use summary::{summarize, TraceSummary};
