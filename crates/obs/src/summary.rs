//! Reading trace files back: the `nulpa trace <file>` subcommand.
//!
//! Accepts both formats this crate writes — Chrome trace-event JSON and
//! JSONL — and produces per-span aggregate statistics, final counter
//! values, and the stored histograms.

use crate::json::{parse, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate over all spans sharing a name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanAgg {
    /// Completed begin/end pairs.
    pub count: u64,
    /// Total duration in trace time units.
    pub total_dur: u64,
    /// Longest single span.
    pub max_dur: u64,
}

/// Histogram restored from a trace file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistAgg {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median estimate.
    pub p50: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// `[lo, hi, count)` bucket rows.
    pub buckets: Vec<(u64, u64, u64)>,
}

/// Everything the summary prints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Span aggregates by name.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Last value seen per counter series.
    pub counters: BTreeMap<String, f64>,
    /// Histograms by name.
    pub hists: BTreeMap<String, HistAgg>,
    /// Events that could not be paired or parsed.
    pub skipped: u64,
    /// Largest timestamp seen.
    pub end_ts: u64,
}

fn note_begin(stacks: &mut BTreeMap<(u64, String), Vec<u64>>, track: u64, name: &str, ts: u64) {
    stacks
        .entry((track, name.to_string()))
        .or_default()
        .push(ts);
}

fn note_end(
    summary: &mut TraceSummary,
    stacks: &mut BTreeMap<(u64, String), Vec<u64>>,
    track: u64,
    name: &str,
    ts: u64,
) {
    let open = stacks.entry((track, name.to_string())).or_default().pop();
    match open {
        Some(begin_ts) => {
            let agg = summary.spans.entry(name.to_string()).or_default();
            let dur = ts.saturating_sub(begin_ts);
            agg.count += 1;
            agg.total_dur += dur;
            agg.max_dur = agg.max_dur.max(dur);
        }
        None => summary.skipped += 1,
    }
}

fn note_hist(summary: &mut TraceSummary, name: &str, obj: &Json) {
    let mut h = HistAgg {
        count: obj.get("count").and_then(Json::as_u64).unwrap_or(0),
        sum: obj.get("sum").and_then(Json::as_u64).unwrap_or(0),
        max: obj.get("max").and_then(Json::as_u64).unwrap_or(0),
        mean: obj.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
        p50: obj.get("p50").and_then(Json::as_u64).unwrap_or(0),
        p99: obj.get("p99").and_then(Json::as_u64).unwrap_or(0),
        buckets: Vec::new(),
    };
    if let Some(rows) = obj.get("buckets").and_then(Json::as_arr) {
        for row in rows {
            if let Some([lo, hi, c]) = row.as_arr().and_then(|r| {
                Some([
                    r.first()?.as_u64()?,
                    r.get(1)?.as_u64()?,
                    r.get(2)?.as_u64()?,
                ])
            }) {
                h.buckets.push((lo, hi, c));
            }
        }
    }
    summary.hists.insert(name.to_string(), h);
}

/// Summarise a parsed event list (Chrome `traceEvents` or JSONL lines).
fn summarize_events(events: &[Json]) -> TraceSummary {
    let mut summary = TraceSummary::default();
    // Open-span stacks keyed by (track, name); names pair LIFO per track.
    let mut stacks: BTreeMap<(u64, String), Vec<u64>> = BTreeMap::new();
    for ev in events {
        let ts = ev.get("ts").and_then(Json::as_u64).unwrap_or(0);
        summary.end_ts = summary.end_ts.max(ts);
        // Chrome form: "ph"; JSONL form: "ev".
        let kind = ev
            .get("ph")
            .and_then(Json::as_str)
            .or_else(|| ev.get("ev").and_then(Json::as_str));
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        let track = ev
            .get("tid")
            .and_then(Json::as_u64)
            .or_else(|| ev.get("track").and_then(Json::as_u64))
            .unwrap_or(0);
        match kind {
            Some("B") | Some("begin") => note_begin(&mut stacks, track, name, ts),
            Some("E") | Some("end") => note_end(&mut summary, &mut stacks, track, name, ts),
            Some("C") => {
                if let Some(v) = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                {
                    summary.counters.insert(name.to_string(), v);
                } else {
                    summary.skipped += 1;
                }
            }
            Some("counter") => {
                if let Some(v) = ev.get("value").and_then(Json::as_f64) {
                    summary.counters.insert(name.to_string(), v);
                } else {
                    summary.skipped += 1;
                }
            }
            Some("hist") => note_hist(&mut summary, name, ev),
            Some("i") => {
                // Chrome instant event carrying a histogram: args is
                // {"<histname>": {...fields...}}.
                if let (Some(stripped), Some(args)) = (name.strip_prefix("hist:"), ev.get("args")) {
                    if let Some(fields) = args.get(stripped) {
                        note_hist(&mut summary, stripped, fields);
                    } else {
                        summary.skipped += 1;
                    }
                }
            }
            Some("M") => {}
            _ => summary.skipped += 1,
        }
    }
    summary.skipped += stacks.values().map(|s| s.len() as u64).sum::<u64>();
    summary
}

/// Summarise trace file contents (auto-detects Chrome JSON vs JSONL).
pub fn summarize(text: &str) -> Result<TraceSummary, String> {
    let trimmed = text.trim_start();
    if trimmed.starts_with('{') && trimmed.contains("traceEvents") {
        let doc = parse(text.trim())?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("missing traceEvents array")?;
        return Ok(summarize_events(events));
    }
    // JSONL: one object per non-empty line
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        events.push(parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(summarize_events(&events))
}

/// The `k` hottest spans by total duration (ties broken by name).
/// Kernel spans (names starting with `"kernel"`) are preferred: when any
/// exist, only they are ranked — `nulpa trace --top` asks for the hottest
/// *kernels*, and host-side umbrella spans like `lpa_gpu` would otherwise
/// always outrank them. Traces without kernel spans rank everything.
pub fn top_spans(summary: &TraceSummary, k: usize) -> Vec<(String, SpanAgg)> {
    let kernels: Vec<(String, SpanAgg)> = summary
        .spans
        .iter()
        .filter(|(name, _)| name.starts_with("kernel"))
        .map(|(name, agg)| (name.clone(), agg.clone()))
        .collect();
    let mut rows = if kernels.is_empty() {
        summary
            .spans
            .iter()
            .map(|(name, agg)| (name.clone(), agg.clone()))
            .collect()
    } else {
        kernels
    };
    rows.sort_by(|a, b| b.1.total_dur.cmp(&a.1.total_dur).then(a.0.cmp(&b.0)));
    rows.truncate(k);
    rows
}

/// Render the `--top K` hottest-kernels listing.
pub fn render_top(summary: &TraceSummary, k: usize) -> String {
    let rows = top_spans(summary, k);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "top {} kernels by total charged cycles (trace end: {} ticks)",
        rows.len(),
        summary.end_ts
    );
    let _ = writeln!(
        out,
        "  {:<4} {:<28} {:>8} {:>14} {:>14} {:>14} {:>7}",
        "#", "name", "count", "total", "mean", "max", "share"
    );
    let whole: u64 = rows.iter().map(|(_, s)| s.total_dur).sum();
    for (i, (name, s)) in rows.iter().enumerate() {
        let mean = if s.count == 0 {
            0.0
        } else {
            s.total_dur as f64 / s.count as f64
        };
        let share = if whole == 0 {
            0.0
        } else {
            100.0 * s.total_dur as f64 / whole as f64
        };
        let _ = writeln!(
            out,
            "  {:<4} {:<28} {:>8} {:>14} {:>14.1} {:>14} {:>6.1}%",
            i + 1,
            name,
            s.count,
            s.total_dur,
            mean,
            s.max_dur,
            share
        );
    }
    out
}

/// Render the summary as a single JSON object (`nulpa trace --json`).
pub fn summary_to_json(summary: &TraceSummary) -> String {
    use crate::json::{escape, fmt_f64};
    let mut out = String::from("{\"spans\":{");
    for (i, (name, s)) in summary.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{{\"count\":{},\"total\":{},\"max\":{}}}",
            escape(name),
            s.count,
            s.total_dur,
            s.max_dur
        ));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in summary.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", escape(name), fmt_f64(*v)));
    }
    out.push_str("},\"hists\":{");
    for (i, (name, h)) in summary.hists.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
            escape(name),
            h.count,
            h.sum,
            h.max,
            fmt_f64(h.mean),
            h.p50,
            h.p99
        ));
        for (j, &(lo, hi, c)) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{hi},{c}]"));
        }
        out.push_str("]}");
    }
    out.push_str(&format!(
        "}},\"skipped\":{},\"end_ts\":{}}}",
        summary.skipped, summary.end_ts
    ));
    out
}

/// Render the summary as the table the CLI prints.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace end: {} ticks (simulated cycles or us)",
        summary.end_ts
    );
    if !summary.spans.is_empty() {
        let _ = writeln!(out, "\nspans:");
        let _ = writeln!(
            out,
            "  {:<28} {:>8} {:>14} {:>14} {:>14}",
            "name", "count", "total", "mean", "max"
        );
        for (name, s) in &summary.spans {
            let mean = if s.count == 0 {
                0.0
            } else {
                s.total_dur as f64 / s.count as f64
            };
            let _ = writeln!(
                out,
                "  {:<28} {:>8} {:>14} {:>14.1} {:>14}",
                name, s.count, s.total_dur, mean, s.max_dur
            );
        }
    }
    if !summary.counters.is_empty() {
        let _ = writeln!(out, "\ncounters (final value):");
        for (name, v) in &summary.counters {
            let _ = writeln!(out, "  {name:<28} {v}");
        }
    }
    if !summary.hists.is_empty() {
        let _ = writeln!(out, "\nhistograms:");
        for (name, h) in &summary.hists {
            let _ = writeln!(
                out,
                "  {:<28} count={} mean={:.2} p50={} p99={} max={}",
                name, h.count, h.mean, h.p50, h.p99, h.max
            );
            for &(lo, hi, c) in &h.buckets {
                let bar_len = if h.count == 0 {
                    0
                } else {
                    ((c as f64 / h.count as f64) * 40.0).round() as usize
                };
                let _ = writeln!(
                    out,
                    "    [{:>10}, {:>10}) {:>10}  {}",
                    lo,
                    hi,
                    c,
                    "#".repeat(bar_len.max(usize::from(c > 0)))
                );
            }
        }
    }
    if summary.skipped > 0 {
        let _ = writeln!(
            out,
            "\n({} unpaired/unknown events skipped)",
            summary.skipped
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{ChromeTraceSink, JsonlSink};
    use crate::sink::{track, TraceSink};

    fn drive(sink: &mut dyn TraceSink) {
        sink.span_begin(track::HOST, "iteration", 0, &[]);
        sink.span_begin(track::KERNEL, "kernel:thread", 5, &[]);
        sink.span_end(track::KERNEL, "kernel:thread", 45, &[]);
        sink.counter("dN", 50, 7.0);
        sink.span_end(track::HOST, "iteration", 50, &[]);
        sink.span_begin(track::HOST, "iteration", 50, &[]);
        sink.span_end(track::HOST, "iteration", 80, &[]);
        sink.hist_sample("probe_len", 1);
        sink.hist_sample("probe_len", 6);
        sink.finish();
    }

    #[test]
    fn summarizes_chrome_and_jsonl_identically() {
        let mut chrome = ChromeTraceSink::new(Vec::new());
        drive(&mut chrome);
        let chrome_text = String::from_utf8(chrome.into_inner().unwrap()).unwrap();

        let mut jsonl = JsonlSink::new(Vec::new());
        drive(&mut jsonl);
        let jsonl_text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();

        let a = summarize(&chrome_text).unwrap();
        let b = summarize(&jsonl_text).unwrap();
        assert_eq!(a, b);

        assert_eq!(a.spans["iteration"].count, 2);
        assert_eq!(a.spans["iteration"].total_dur, 80);
        assert_eq!(a.spans["iteration"].max_dur, 50);
        assert_eq!(a.spans["kernel:thread"].count, 1);
        assert_eq!(a.counters["dN"], 7.0);
        assert_eq!(a.hists["probe_len"].count, 2);
        assert_eq!(a.skipped, 0);
        assert_eq!(a.end_ts, 80);

        let rendered = render(&a);
        assert!(rendered.contains("iteration"));
        assert!(rendered.contains("probe_len"));
    }

    #[test]
    fn top_spans_prefers_kernels_and_ranks_by_total() {
        let mut s = TraceSummary::default();
        for (name, total) in [
            ("lpa_gpu", 1000),
            ("kernel:thread", 300),
            ("kernel:block", 500),
            ("kernel:cross_check", 50),
        ] {
            s.spans.insert(
                name.to_string(),
                SpanAgg {
                    count: 2,
                    total_dur: total,
                    max_dur: total,
                },
            );
        }
        let top = top_spans(&s, 2);
        // host umbrella span excluded; hottest kernel first
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "kernel:block");
        assert_eq!(top[1].0, "kernel:thread");
        let rendered = render_top(&s, 2);
        assert!(rendered.contains("kernel:block"));
        assert!(!rendered.contains("cross_check"));

        // traces without kernel spans fall back to ranking everything
        let mut host_only = TraceSummary::default();
        host_only.spans.insert(
            "iteration".into(),
            SpanAgg {
                count: 1,
                total_dur: 7,
                max_dur: 7,
            },
        );
        assert_eq!(top_spans(&host_only, 3)[0].0, "iteration");
    }

    #[test]
    fn summary_json_round_trips() {
        let mut jsonl = JsonlSink::new(Vec::new());
        drive(&mut jsonl);
        let text = String::from_utf8(jsonl.into_inner().unwrap()).unwrap();
        let s = summarize(&text).unwrap();
        let json = summary_to_json(&s);
        let doc = crate::json::parse(&json).expect("summary JSON parses");
        let spans = doc.get("spans").unwrap();
        assert_eq!(
            spans
                .get("iteration")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(
            doc.get("counters").unwrap().get("dN").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(doc.get("end_ts").unwrap().as_u64(), Some(80));
        let h = doc.get("hists").unwrap().get("probe_len").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn unbalanced_spans_are_counted_not_fatal() {
        let text = concat!(
            "{\"ev\":\"begin\",\"track\":0,\"name\":\"x\",\"ts\":0,\"args\":{}}\n",
            "{\"ev\":\"end\",\"track\":0,\"name\":\"y\",\"ts\":5,\"args\":{}}\n",
        );
        let s = summarize(text).unwrap();
        assert_eq!(s.spans.len(), 0);
        assert_eq!(s.skipped, 2); // one unmatched end + one dangling begin
    }
}
