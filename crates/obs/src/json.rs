//! Hand-rolled JSON writing and parsing.
//!
//! The build environment is offline, so no `serde`: the exporters write
//! JSON through [`escape_into`]/[`fmt_f64`], and the `trace` summary
//! subcommand reads trace files back through the small recursive-descent
//! [`parse`]r. The parser accepts exactly the JSON this crate emits (plus
//! ordinary whitespace) — standard objects, arrays, strings with the
//! common escapes, numbers, booleans and null.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Escape `s` as a standalone JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(s, &mut out);
    out
}

/// Format an `f64` as a JSON number. JSON has no NaN/Infinity, so
/// non-finite values become `null`.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // integral values print without a fractional tail
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        debug_assert!(s.parse::<f64>().is_ok());
        s
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`; exact for the u53 range we emit).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Value as f64 when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Value as u64 when a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v == v.trunc() => Some(*v as u64),
            _ => None,
        }
    }

    /// Value as str when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Value as array slice when an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at offset {} (found {:?})",
            c as char,
            pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {s:?} at offset {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), r#""\u0001""#);
        assert_eq!(escape("héllo"), "\"héllo\"");
    }

    #[test]
    fn f64_formatting() {
        assert_eq!(fmt_f64(3.0), "3");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(-7.0), "-7");
    }

    #[test]
    fn roundtrip_object() {
        let text = r#"{"name":"k\"1","ts":12,"args":{"x":0.5,"ok":true,"n":null},"a":[1,2,3]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("k\"1"));
        assert_eq!(v.get("ts").unwrap().as_u64(), Some(12));
        assert_eq!(v.get("args").unwrap().get("x").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("args").unwrap().get("ok"), Some(&Json::Bool(true)));
        assert_eq!(v.get("args").unwrap().get("n"), Some(&Json::Null));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn parses_escapes_back() {
        let v = parse(&escape("line\nnext\ttab \"q\" \\ \u{3}")).unwrap();
        assert_eq!(v.as_str(), Some("line\nnext\ttab \"q\" \\ \u{3}"));
    }
}
