//! File exporters: JSONL event streams and Chrome trace-event files.
//!
//! Both are hand-rolled (the build environment is offline; no serde).
//!
//! # JSONL schema
//!
//! One JSON object per line, in emission order:
//!
//! ```text
//! {"ev":"begin","track":0,"name":"iteration","ts":120,"args":{"iter":0}}
//! {"ev":"end","track":0,"name":"iteration","ts":3456,"args":{"changed":12}}
//! {"ev":"counter","name":"dN","ts":3456,"value":12}
//! {"ev":"hist","name":"probe_len","count":96,"sum":120,"max":4,"mean":1.25,
//!  "p50":1,"p99":4,"buckets":[[0,1,10],[1,2,60],[2,4,20],[4,8,6]]}
//! ```
//!
//! `ts` is simulated cycles (wall-clock microseconds for the native
//! backends). `hist` lines are aggregates flushed by `finish`; `buckets`
//! entries are `[lo, hi, count]` with values in `[lo, hi)`.
//!
//! # Chrome trace-event schema
//!
//! The classic `{"traceEvents":[...]}` JSON accepted by Perfetto and
//! `chrome://tracing`, using `B`/`E` duration events, `C` counters and
//! `M` metadata, with one microsecond of trace time per simulated cycle
//! and tracks mapped to thread ids. Aggregated histograms are appended as
//! one instant (`i`) event each, carrying the buckets in `args`.

use crate::hist::Hist;
use crate::json::{escape, fmt_f64};
use crate::sink::{TraceSink, Value};
use std::collections::BTreeMap;
use std::io::Write;

fn args_json(args: &[(&str, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&escape(k));
        out.push(':');
        out.push_str(&v.to_json());
    }
    out.push('}');
    out
}

fn hist_fields(name: &str, h: &Hist) -> String {
    let mut buckets = String::from("[");
    for (i, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        buckets.push_str(&format!("[{lo},{hi},{c}]"));
    }
    buckets.push(']');
    format!(
        "{}:{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":{}}}",
        escape(name),
        h.count,
        h.sum,
        h.max,
        fmt_f64(h.mean()),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets
    )
}

/// Streaming JSONL exporter (one event object per line).
pub struct JsonlSink<W: Write> {
    out: W,
    hists: BTreeMap<String, Hist>,
    error: Option<std::io::Error>,
    finished: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Write events to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            hists: BTreeMap::new(),
            error: None,
            finished: false,
        }
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    /// First I/O error encountered, if any (the sink goes quiet after).
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    /// Finalise and return the writer.
    pub fn into_inner(mut self) -> Result<W, std::io::Error> {
        self.finish();
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn span_begin(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        let line = format!(
            "{{\"ev\":\"begin\",\"track\":{track},\"name\":{},\"ts\":{ts},\"args\":{}}}",
            escape(name),
            args_json(args)
        );
        self.write_line(&line);
    }

    fn span_end(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        let line = format!(
            "{{\"ev\":\"end\",\"track\":{track},\"name\":{},\"ts\":{ts},\"args\":{}}}",
            escape(name),
            args_json(args)
        );
        self.write_line(&line);
    }

    fn counter(&mut self, name: &str, ts: u64, value: f64) {
        let line = format!(
            "{{\"ev\":\"counter\",\"name\":{},\"ts\":{ts},\"value\":{}}}",
            escape(name),
            fmt_f64(value)
        );
        self.write_line(&line);
    }

    fn hist_sample(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn histogram(&mut self, name: &str, hist: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(hist);
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let hists = std::mem::take(&mut self.hists);
        for (name, h) in &hists {
            let line = format!("{{\"ev\":\"hist\",{}}}", hist_line_body(name, h));
            self.write_line(&line);
        }
        if self.error.is_none() {
            if let Err(e) = self.out.flush() {
                self.error = Some(e);
            }
        }
    }
}

fn hist_line_body(name: &str, h: &Hist) -> String {
    let mut buckets = String::from("[");
    for (i, (lo, hi, c)) in h.nonzero_buckets().enumerate() {
        if i > 0 {
            buckets.push(',');
        }
        buckets.push_str(&format!("[{lo},{hi},{c}]"));
    }
    buckets.push(']');
    format!(
        "\"name\":{},\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":{}",
        escape(name),
        h.count,
        h.sum,
        h.max,
        fmt_f64(h.mean()),
        h.quantile(0.5),
        h.quantile(0.99),
        buckets
    )
}

/// Chrome trace-event exporter (Perfetto / `chrome://tracing`).
pub struct ChromeTraceSink<W: Write> {
    out: W,
    hists: BTreeMap<String, Hist>,
    first: bool,
    last_ts: u64,
    error: Option<std::io::Error>,
    finished: bool,
}

impl<W: Write> ChromeTraceSink<W> {
    /// Write a trace to `out`; emits the header and the simulator's
    /// standard track metadata (host / kernels / waves).
    pub fn new(out: W) -> Self {
        Self::with_tracks(
            out,
            "nu-lpa (1 simulated cycle = 1 us)",
            &[(0, "host"), (1, "kernels"), (2, "waves")],
        )
    }

    /// Write a trace to `out` with caller-chosen process and track
    /// (thread) names — the host profiler uses this to label one track
    /// per worker thread instead of the simulator's fixed three.
    pub fn with_tracks(out: W, process: &str, tracks: &[(u32, &str)]) -> Self {
        let mut sink = ChromeTraceSink {
            out,
            hists: BTreeMap::new(),
            first: true,
            last_ts: 0,
            error: None,
            finished: false,
        };
        if let Err(e) = writeln!(sink.out, "{{\"traceEvents\":[") {
            sink.error = Some(e);
        }
        sink.write_event(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            escape(process)
        ));
        for &(tid, label) in tracks {
            sink.write_event(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                escape(label)
            ));
        }
        sink
    }

    fn write_event(&mut self, json_obj: &str) {
        if self.error.is_some() {
            return;
        }
        let sep = if self.first { "" } else { ",\n" };
        self.first = false;
        if let Err(e) = write!(self.out, "{sep}{json_obj}") {
            self.error = Some(e);
        }
    }

    /// First I/O error encountered, if any.
    pub fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }

    /// Finalise (write the footer) and return the writer.
    pub fn into_inner(mut self) -> Result<W, std::io::Error> {
        self.finish();
        match self.error.take() {
            Some(e) => Err(e),
            None => Ok(self.out),
        }
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn span_begin(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        self.last_ts = self.last_ts.max(ts);
        let ev = format!(
            "{{\"name\":{},\"ph\":\"B\",\"pid\":0,\"tid\":{track},\"ts\":{ts},\"args\":{}}}",
            escape(name),
            args_json(args)
        );
        self.write_event(&ev);
    }

    fn span_end(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        self.last_ts = self.last_ts.max(ts);
        let ev = format!(
            "{{\"name\":{},\"ph\":\"E\",\"pid\":0,\"tid\":{track},\"ts\":{ts},\"args\":{}}}",
            escape(name),
            args_json(args)
        );
        self.write_event(&ev);
    }

    fn counter(&mut self, name: &str, ts: u64, value: f64) {
        self.last_ts = self.last_ts.max(ts);
        let ev = format!(
            "{{\"name\":{},\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{ts},\
             \"args\":{{\"value\":{}}}}}",
            escape(name),
            fmt_f64(value)
        );
        self.write_event(&ev);
    }

    fn hist_sample(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn histogram(&mut self, name: &str, hist: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(hist);
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let hists = std::mem::take(&mut self.hists);
        let ts = self.last_ts;
        for (name, h) in &hists {
            let ev = format!(
                "{{\"name\":{},\"ph\":\"i\",\"pid\":0,\"tid\":0,\"ts\":{ts},\"s\":\"g\",\
                 \"args\":{{{}}}}}",
                escape(&format!("hist:{name}")),
                hist_fields(name, h)
            );
            self.write_event(&ev);
        }
        if self.error.is_none() {
            if let Err(e) = write!(self.out, "\n]}}").and_then(|_| self.out.flush()) {
                self.error = Some(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::sink::track;

    fn drive(sink: &mut dyn TraceSink) {
        sink.span_begin(track::HOST, "iteration", 0, &[("iter", 0u64.into())]);
        sink.span_begin(
            track::KERNEL,
            "kernel:thread",
            10,
            &[("items", 4u64.into())],
        );
        sink.span_end(track::KERNEL, "kernel:thread", 90, &[]);
        sink.counter("dN", 100, 3.0);
        sink.span_end(track::HOST, "iteration", 100, &[("changed", 3u64.into())]);
        sink.hist_sample("probe_len", 1);
        sink.hist_sample("probe_len", 5);
        sink.finish();
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let mut sink = JsonlSink::new(Vec::new());
        drive(&mut sink);
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6); // 2 begin + 2 end + 1 counter + 1 hist
        for line in &lines {
            let v = parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert!(v.get("ev").is_some());
        }
        let hist = parse(lines[5]).unwrap();
        assert_eq!(hist.get("ev").unwrap().as_str(), Some("hist"));
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("max").unwrap().as_u64(), Some(5));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_phases() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        drive(&mut sink);
        let buf = sink.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = parse(&text).unwrap();
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 4);
        assert_eq!(phases.iter().filter(|p| **p == "B").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "E").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "C").count(), 1);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
        // B/E timestamps are cycles
        let b = events.iter().find(|e| {
            e.get("ph").unwrap().as_str() == Some("B")
                && e.get("name").unwrap().as_str() == Some("kernel:thread")
        });
        assert_eq!(b.unwrap().get("ts").unwrap().as_u64(), Some(10));
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = ChromeTraceSink::new(Vec::new());
        sink.span_begin(0, "x", 0, &[]);
        sink.span_end(0, "x", 1, &[]);
        sink.finish();
        sink.finish();
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert!(parse(&text).is_ok());
        assert_eq!(text.matches("]}").count(), 1);
    }
}
