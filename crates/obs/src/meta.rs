//! Run provenance stamped into machine-readable outputs.
//!
//! Every `results/*.json` report carries a `meta` object recording where
//! the numbers came from: the git revision of the build tree, the host
//! thread count driving the simulator, and run-specific configuration
//! (device preset, probe scheme) supplied by the caller. The simulator is
//! deterministic, so this is enough to reproduce any committed result.

use std::process::Command;

/// Short git revision of the working tree, with a `-dirty` suffix when
/// there are uncommitted changes. `"unknown"` when git is unavailable or
/// the directory is not a repository — reports must still be writable
/// from an exported tarball.
pub fn git_rev() -> String {
    let rev = Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty());
    let Some(rev) = rev else {
        return "unknown".into();
    };
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// Assemble a metadata key/value list: `git_rev` first, then the
/// caller-supplied pairs (thread count, device preset, probe scheme, ...)
/// in order.
pub fn run_meta(extra: &[(&str, String)]) -> Vec<(String, String)> {
    let mut m = vec![("git_rev".to_string(), git_rev())];
    m.extend(extra.iter().map(|(k, v)| (k.to_string(), v.clone())));
    m
}

/// Render a metadata list as a JSON object string.
pub fn meta_json(meta: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&crate::json::escape(k));
        out.push_str(": ");
        out.push_str(&crate::json::escape(v));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }

    #[test]
    fn run_meta_leads_with_git_rev() {
        let m = run_meta(&[("threads", "4".to_string())]);
        assert_eq!(m[0].0, "git_rev");
        assert_eq!(m[1], ("threads".to_string(), "4".to_string()));
    }

    #[test]
    fn meta_json_parses_back() {
        let m = run_meta(&[("device", "a100".to_string())]);
        let text = meta_json(&m);
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("device").and_then(|v| v.as_str()), Some("a100"));
        assert!(doc.get("git_rev").is_some());
    }
}
