//! The [`TraceSink`] trait and the in-memory sinks.
//!
//! Instrumented code (the SIMT scheduler, the hashtable layer, the LPA
//! drivers) emits *spans* (begin/end pairs on a track, timestamped in
//! simulated cycles), *counters* (named time series) and *histogram
//! samples* (aggregated, not timestamped). Production code paths take a
//! `&mut dyn TraceSink`; the statically no-op [`NullSink`] is the default
//! and lets the optimiser erase the instrumentation when tracing is off.
//!
//! Sinks must never influence the computation they observe: the
//! neutrality test in the workspace root asserts byte-identical labels
//! and `KernelStats` with and without a recording sink attached.

use crate::hist::Hist;
use std::collections::BTreeMap;

/// Track (timeline row) identifiers used by the emitters. Chrome/Perfetto
/// renders one row per `tid`; the constants keep iteration, kernel and
/// wave spans on separate rows.
pub mod track {
    /// Host-side algorithm phases (iterations, convergence checks).
    pub const HOST: u32 = 0;
    /// Kernel launches.
    pub const KERNEL: u32 = 1;
    /// Individual waves inside a kernel launch.
    pub const WAVE: u32 = 2;
    /// Sanitizer hazards (instant spans emitted by `nulpa-sancheck`).
    pub const HAZARD: u32 = 3;
}

/// A dynamically typed argument value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl Value {
    /// Render as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => crate::json::fmt_f64(*v),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => crate::json::escape(s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Receiver for trace events keyed by simulated cycles.
///
/// All methods take `&mut self`; emitters hold a `&mut dyn TraceSink`.
/// Implementations must not panic on odd inputs (e.g. unbalanced spans):
/// tracing is an observer, never a failure source.
pub trait TraceSink {
    /// False for the no-op sink: emitters may skip building args.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Open a span named `name` on `track` at simulated time `ts`.
    fn span_begin(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]);

    /// Close the innermost span named `name` on `track` at time `ts`.
    fn span_end(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]);

    /// Record a point on the counter time series `name`.
    fn counter(&mut self, name: &str, ts: u64, value: f64);

    /// Record one sample into the aggregated histogram `name`.
    fn hist_sample(&mut self, name: &str, value: u64);

    /// Merge a pre-aggregated histogram into the aggregate `name`.
    fn histogram(&mut self, name: &str, hist: &Hist);

    /// Record a structured metrics bundle: a named record of integer
    /// metrics observed at simulated time `ts` (e.g. the profiler's
    /// per-wave and per-kernel attribution records). Default is a no-op
    /// so existing sinks, exporters and their golden files are
    /// unaffected; collecting sinks (the profiler, [`RecordingSink`])
    /// override it.
    fn metrics(&mut self, name: &str, ts: u64, values: &[(&str, u64)]) {
        let _ = (name, ts, values);
    }

    /// Flush and finalise (write footers). Must be idempotent.
    fn finish(&mut self) {}
}

/// Statically no-op sink: the default when tracing is off.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn is_enabled(&self) -> bool {
        false
    }
    #[inline]
    fn span_begin(&mut self, _track: u32, _name: &str, _ts: u64, _args: &[(&str, Value)]) {}
    #[inline]
    fn span_end(&mut self, _track: u32, _name: &str, _ts: u64, _args: &[(&str, Value)]) {}
    #[inline]
    fn counter(&mut self, _name: &str, _ts: u64, _value: f64) {}
    #[inline]
    fn hist_sample(&mut self, _name: &str, _value: u64) {}
    #[inline]
    fn histogram(&mut self, _name: &str, _hist: &Hist) {}
}

/// One recorded metrics bundle (owned form of [`TraceSink::metrics`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsEvent {
    /// Record name (e.g. `"wave"`, `"kernel"`).
    pub name: String,
    /// Simulated cycles.
    pub ts: u64,
    /// Named integer metrics, in emission order.
    pub values: Vec<(String, u64)>,
}

impl MetricsEvent {
    /// Value of metric `key`, if present.
    pub fn get(&self, key: &str) -> Option<u64> {
        self.values.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One recorded event (owned form of the sink callbacks).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Span opened.
    Begin {
        /// Timeline row.
        track: u32,
        /// Span name.
        name: String,
        /// Simulated cycles.
        ts: u64,
        /// Attached arguments.
        args: Vec<(String, Value)>,
    },
    /// Span closed.
    End {
        /// Timeline row.
        track: u32,
        /// Span name.
        name: String,
        /// Simulated cycles.
        ts: u64,
        /// Attached arguments.
        args: Vec<(String, Value)>,
    },
    /// Counter sample.
    Counter {
        /// Series name.
        name: String,
        /// Simulated cycles.
        ts: u64,
        /// Sample value.
        value: f64,
    },
}

fn own_args(args: &[(&str, Value)]) -> Vec<(String, Value)> {
    args.iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect()
}

/// In-memory sink: keeps every event plus aggregated histograms. Used by
/// tests (neutrality, exporter goldens) and the `trace` summary path.
#[derive(Clone, Debug, Default)]
pub struct RecordingSink {
    /// Ordered event stream.
    pub events: Vec<TraceEvent>,
    /// Aggregated histograms by name.
    pub hists: BTreeMap<String, Hist>,
    /// Metrics bundles, in emission order (kept separate from `events`
    /// so span-stream assertions are unaffected by profiling records).
    pub metric_events: Vec<MetricsEvent>,
}

impl RecordingSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count events of each kind: (begins, ends, counters).
    pub fn span_counts(&self) -> (usize, usize, usize) {
        let mut b = 0;
        let mut e = 0;
        let mut c = 0;
        for ev in &self.events {
            match ev {
                TraceEvent::Begin { .. } => b += 1,
                TraceEvent::End { .. } => e += 1,
                TraceEvent::Counter { .. } => c += 1,
            }
        }
        (b, e, c)
    }

    /// Names of Begin events, in order (for structural assertions).
    pub fn begin_names(&self) -> Vec<&str> {
        self.events
            .iter()
            .filter_map(|ev| match ev {
                TraceEvent::Begin { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl TraceSink for RecordingSink {
    fn span_begin(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        self.events.push(TraceEvent::Begin {
            track,
            name: name.to_string(),
            ts,
            args: own_args(args),
        });
    }

    fn span_end(&mut self, track: u32, name: &str, ts: u64, args: &[(&str, Value)]) {
        self.events.push(TraceEvent::End {
            track,
            name: name.to_string(),
            ts,
            args: own_args(args),
        });
    }

    fn counter(&mut self, name: &str, ts: u64, value: f64) {
        self.events.push(TraceEvent::Counter {
            name: name.to_string(),
            ts,
            value,
        });
    }

    fn hist_sample(&mut self, name: &str, value: u64) {
        self.hists
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    fn histogram(&mut self, name: &str, hist: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(hist);
    }

    fn metrics(&mut self, name: &str, ts: u64, values: &[(&str, u64)]) {
        self.metric_events.push(MetricsEvent {
            name: name.to_string(),
            ts,
            values: values.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.span_begin(0, "x", 0, &[]);
        s.span_end(0, "x", 1, &[]);
        s.counter("c", 0, 1.0);
        s.hist_sample("h", 3);
        s.finish();
    }

    #[test]
    fn recording_sink_captures_in_order() {
        let mut s = RecordingSink::new();
        s.span_begin(track::HOST, "iter", 0, &[("i", 0u64.into())]);
        s.counter("dN", 5, 12.0);
        s.span_end(track::HOST, "iter", 10, &[]);
        s.hist_sample("probe_len", 2);
        s.hist_sample("probe_len", 9);
        assert_eq!(s.span_counts(), (1, 1, 1));
        assert_eq!(s.begin_names(), vec!["iter"]);
        let h = &s.hists["probe_len"];
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 9);
    }

    #[test]
    fn value_json_rendering() {
        assert_eq!(Value::from(3u64).to_json(), "3");
        assert_eq!(Value::from(-2i64).to_json(), "-2");
        assert_eq!(Value::from(true).to_json(), "true");
        assert_eq!(Value::from(0.5f64).to_json(), "0.5");
        assert_eq!(Value::from("a\"b").to_json(), r#""a\"b""#);
    }
}
