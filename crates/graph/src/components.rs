//! Connected components (union–find).
//!
//! Used by the harness to sanity-check community structure: label
//! propagation only ever moves labels along edges, so every community is
//! contained in one connected component — and on the k-mer stand-ins the
//! component count lower-bounds `|Γ|` (Table 1's huge counts are mostly
//! components).

use crate::csr::{Csr, VertexId};

/// Disjoint-set forest over `0..n` with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // path halving
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        self.components -= 1;
        true
    }

    /// Number of disjoint sets.
    pub fn count(&self) -> usize {
        self.components
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

/// Component id of every vertex (ids are representative vertex ids, not
/// dense — compact with `nulpa_metrics::compact_labels` if needed).
pub fn connected_components(g: &Csr) -> Vec<VertexId> {
    let mut uf = UnionFind::new(g.num_vertices());
    for u in g.vertices() {
        for &v in g.neighbor_ids(u) {
            uf.union(u, v);
        }
    }
    g.vertices().map(|v| uf.find(v)).collect()
}

/// Number of connected components.
pub fn num_components(g: &Csr) -> usize {
    let mut uf = UnionFind::new(g.num_vertices());
    for u in g.vertices() {
        for &v in g.neighbor_ids(u) {
            uf.union(u, v);
        }
    }
    uf.count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{caveman_weighted, kmer_chain, path};
    use crate::{Csr, GraphBuilder};

    #[test]
    fn singletons_without_edges() {
        let g = Csr::empty(5);
        assert_eq!(num_components(&g), 5);
        let c = connected_components(&g);
        assert_eq!(c, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn path_is_one_component() {
        assert_eq!(num_components(&path(10)), 1);
    }

    #[test]
    fn disjoint_chains_counted() {
        let g = kmer_chain(7, 5, 5, 0.0, 1);
        assert_eq!(num_components(&g), 7);
    }

    #[test]
    fn caveman_ring_is_connected() {
        assert_eq!(num_components(&caveman_weighted(4, 5, 0.5)), 1);
    }

    #[test]
    fn component_ids_consistent() {
        let g = GraphBuilder::new(5)
            .add_undirected_edge(0, 1, 1.0)
            .add_undirected_edge(3, 4, 1.0)
            .build();
        let c = connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[2]);
        assert_ne!(c[0], c[3]);
    }

    #[test]
    fn union_find_primitives() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.count(), 4);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.count(), 3);
        assert_eq!(uf.set_size(0), 2);
        assert_eq!(uf.set_size(2), 1);
        assert_eq!(uf.find(0), uf.find(1));
    }
}
