//! Descriptive graph statistics: degree distribution and clustering.
//!
//! Used to check that the synthetic stand-ins match their originals'
//! category structure (heavy tails for web/social, flat ≈2 degrees for
//! road/k-mer, high clustering for crawls) — the properties DESIGN.md §1
//! claims the substitutions preserve.

use crate::csr::{Csr, VertexId};

/// Histogram of vertex degrees: `histogram[d]` = number of vertices with
/// degree `d` (length `max_degree + 1`).
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut h = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        h[g.degree(v)] += 1;
    }
    h
}

/// Degree distribution percentile: smallest degree `d` such that at least
/// `p` (in `[0,1]`) of vertices have degree ≤ `d`.
pub fn degree_percentile(g: &Csr, p: f64) -> usize {
    assert!((0.0..=1.0).contains(&p), "percentile outside [0,1]");
    let n = g.num_vertices();
    if n == 0 {
        return 0;
    }
    let target = (p * n as f64).ceil() as usize;
    let mut acc = 0usize;
    for (d, &count) in degree_histogram(g).iter().enumerate() {
        acc += count;
        if acc >= target {
            return d;
        }
    }
    g.max_degree()
}

/// Local clustering coefficient of vertex `v`: closed wedges / possible
/// wedges among its neighbours. 0 for degree < 2.
pub fn local_clustering(g: &Csr, v: VertexId) -> f64 {
    let nbrs = g.neighbor_ids(v);
    // distinct neighbours (dedup; adjacency is sorted)
    let mut distinct: Vec<VertexId> = Vec::with_capacity(nbrs.len());
    for &j in nbrs {
        if j != v && distinct.last() != Some(&j) {
            distinct.push(j);
        }
    }
    let d = distinct.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in distinct.iter().enumerate() {
        for &b in &distinct[i + 1..] {
            if g.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering coefficient over vertices of degree ≥ 2
/// (Watts–Strogatz average clustering). `O(Σ d² log d)` — intended for
/// the scaled stand-ins, not billion-edge graphs.
pub fn average_clustering(g: &Csr) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in g.vertices() {
        if g.degree(v) >= 2 {
            sum += local_clustering(g, v);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{complete, cycle, erdos_renyi, star, web_crawl};

    #[test]
    fn histogram_star() {
        let g = star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // hub
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let g = erdos_renyi(100, 250, 3);
        assert_eq!(degree_histogram(&g).iter().sum::<usize>(), 100);
    }

    #[test]
    fn percentiles_ordered() {
        let g = web_crawl(1000, 6, 0.1, 1);
        let p50 = degree_percentile(&g, 0.5);
        let p99 = degree_percentile(&g, 0.99);
        assert!(p50 <= p99);
        assert!(degree_percentile(&g, 1.0) == g.max_degree());
    }

    #[test]
    fn clustering_complete_graph_is_one() {
        let g = complete(6);
        assert!((average_clustering(&g) - 1.0).abs() < 1e-12);
        assert_eq!(local_clustering(&g, 0), 1.0);
    }

    #[test]
    fn clustering_cycle_is_zero() {
        let g = cycle(8);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_low_degree_zero() {
        let g = star(4);
        assert_eq!(local_clustering(&g, 1), 0.0); // leaf, degree 1
        assert_eq!(local_clustering(&g, 0), 0.0); // hub: leaves unconnected
    }

    #[test]
    fn web_crawl_clusters_more_than_er() {
        let web = web_crawl(2000, 8, 0.1, 2);
        let er = erdos_renyi(2000, web.num_edges() / 2, 2);
        assert!(
            average_clustering(&web) > 3.0 * average_clustering(&er),
            "web {} vs er {}",
            average_clustering(&web),
            average_clustering(&er)
        );
    }

    #[test]
    fn empty_graph_degenerate_cases() {
        let g = crate::Csr::empty(3);
        assert_eq!(degree_percentile(&g, 0.5), 0);
        assert_eq!(average_clustering(&g), 0.0);
    }
}
