//! Synthetic stand-ins for the paper's 13 SuiteSparse graphs (Table 1).
//!
//! Real SuiteSparse downloads are unavailable in this environment, so each
//! dataset is replaced by a seeded generator matched to its category's
//! structure (see DESIGN.md §1). `scale` controls size: `scale = 1.0`
//! would target the paper's vertex counts; the default used by the
//! benchmark harness is [`DEFAULT_SCALE`] (≈1/2000, laptop-sized graphs
//! with the same degree structure).

use crate::csr::{Csr, VertexId};
use crate::gen;
use rand::Rng;

/// Dataset category, mirroring Table 1's grouping.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// LAW web crawls — heavy-tailed, high clustering, crawl-ordered ids.
    Web,
    /// SNAP social networks — strong community structure.
    Social,
    /// DIMACS10 road networks — degree ≈ 2.1, huge diameter.
    Road,
    /// GenBank protein k-mer graphs — long chains, many components.
    Kmer,
}

impl Category {
    /// Human-readable group header, as printed in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Category::Web => "Web Graphs (LAW)",
            Category::Social => "Social Networks (SNAP)",
            Category::Road => "Road Networks (DIMACS10)",
            Category::Kmer => "Protein k-mer Graphs (GenBank)",
        }
    }
}

/// Static description of one Table 1 row.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// SuiteSparse name of the original graph.
    pub name: &'static str,
    /// Dataset category (Table 1 grouping).
    pub category: Category,
    /// `|V|` of the original (paper's Table 1).
    pub paper_vertices: u64,
    /// `|E|` of the original, directed count after adding reverse edges.
    pub paper_edges: u64,
    /// `D_avg` of the original.
    pub paper_avg_degree: f64,
    /// Whether the original is directed (marked `*` in Table 1).
    pub directed: bool,
}

/// A generated stand-in: graph plus optional ground truth (social graphs
/// carry the planted partition).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// The Table 1 row this stand-in reproduces.
    pub spec: DatasetSpec,
    /// The generated graph.
    pub graph: Csr,
    /// Planted ground truth (social and web stand-ins).
    pub ground_truth: Option<Vec<VertexId>>,
}

/// Default size scale used by the harness: ~1/2000 of the paper's sizes.
pub const DEFAULT_SCALE: f64 = 1.0 / 2000.0;

/// A smaller scale suitable for unit/integration tests.
pub const TEST_SCALE: f64 = 1.0 / 40_000.0;

/// All 13 Table 1 rows, in the paper's order.
pub fn all_specs() -> [DatasetSpec; 13] {
    use Category::*;
    [
        spec("indochina-2004", Web, 7_410_000, 341_000_000, 41.0, true),
        spec("uk-2002", Web, 18_500_000, 567_000_000, 16.1, true),
        spec("arabic-2005", Web, 22_700_000, 1_210_000_000, 28.2, true),
        spec("uk-2005", Web, 39_500_000, 1_730_000_000, 23.7, true),
        spec("webbase-2001", Web, 118_000_000, 1_890_000_000, 8.6, true),
        spec("it-2004", Web, 41_300_000, 2_190_000_000, 27.9, true),
        spec("sk-2005", Web, 50_600_000, 3_800_000_000, 38.5, true),
        spec(
            "com-LiveJournal",
            Social,
            4_000_000,
            69_400_000,
            17.4,
            false,
        ),
        spec("com-Orkut", Social, 3_070_000, 234_000_000, 76.2, false),
        spec("asia_osm", Road, 12_000_000, 25_400_000, 2.1, false),
        spec("europe_osm", Road, 50_900_000, 108_000_000, 2.1, false),
        spec("kmer_A2a", Kmer, 171_000_000, 361_000_000, 2.1, false),
        spec("kmer_V1r", Kmer, 214_000_000, 465_000_000, 2.2, false),
    ]
}

fn spec(
    name: &'static str,
    category: Category,
    v: u64,
    e: u64,
    d: f64,
    directed: bool,
) -> DatasetSpec {
    DatasetSpec {
        name,
        category,
        paper_vertices: v,
        paper_edges: e,
        paper_avg_degree: d,
        directed,
    }
}

/// Look a spec up by its SuiteSparse name.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_specs().into_iter().find(|s| s.name == name)
}

impl DatasetSpec {
    /// Number of vertices the stand-in targets at the given scale.
    pub fn scaled_vertices(&self, scale: f64) -> usize {
        ((self.paper_vertices as f64 * scale).round() as usize).max(64)
    }

    /// Generate the stand-in graph at `scale`, deterministically from the
    /// dataset name (each dataset gets a distinct, stable seed).
    pub fn generate(&self, scale: f64) -> Dataset {
        let seed = name_seed(self.name);
        let n = self.scaled_vertices(scale);
        let (graph, ground_truth) = match self.category {
            Category::Web => {
                let m_attach = ((self.paper_avg_degree / 2.0).round() as usize).max(1);
                // host-structured crawl: dense sites, sparse cross-links —
                // the structure that lets LPA reach web-crawl modularity
                (
                    gen::web_crawl(n, m_attach, 0.08, seed),
                    Some(gen::web_crawl_hosts(n, seed)),
                )
            }
            Category::Social => {
                let d_in = self.paper_avg_degree * 0.85;
                let d_out = self.paper_avg_degree * 0.15;
                // a community must be able to host d_in intra-neighbours
                let min_size = ((d_in * 1.3).ceil() as usize).max(4);
                let sizes = heavy_tailed_sizes(n, min_size, seed ^ 0x5eed);
                let pp = gen::planted_partition(&sizes, d_in, d_out, seed);
                (pp.graph, Some(pp.ground_truth))
            }
            Category::Road => {
                let side = (n as f64).sqrt().round() as usize;
                // full lattice has D_avg ≈ 4; thin to the paper's ≈2.1
                let keep = (self.paper_avg_degree / 4.0).min(1.0);
                (gen::grid2d(side.max(2), side.max(2), keep, seed), None)
            }
            Category::Kmer => {
                // chains of 30–90 vertices, light branching: D_avg ≈ 2
                let avg_len = 60usize;
                let chains = (n / avg_len).max(1);
                (gen::kmer_chain(chains, 30, 90, 0.04, seed), None)
            }
        };
        Dataset {
            spec: *self,
            graph,
            ground_truth,
        }
    }
}

/// The paper's "large graphs" subset used for the optimization figures
/// (Figs. 1, 3, 4, 5, 7): here, every dataset except the one the paper
/// itself could not run (`sk-2005`, out of memory on the A100).
pub fn figure_specs() -> Vec<DatasetSpec> {
    all_specs()
        .into_iter()
        .filter(|s| s.name != "sk-2005")
        .collect()
}

/// Heavy-tailed community sizes summing to `n` (Pareto-ish, minimum
/// `min_size`), mimicking SNAP community-size distributions. The minimum
/// matters: a planted community smaller than the intended intra-degree
/// cannot be denser inside than outside, so dense graphs (com-Orkut,
/// D_avg 76) need proportionally larger blocks.
fn heavy_tailed_sizes(n: usize, min_size: usize, seed: u64) -> Vec<usize> {
    let mut r = gen_rng(seed);
    let xm = min_size as f64;
    let mut sizes = Vec::new();
    let mut left = n;
    while left > 0 {
        let u: f64 = r.gen_range(0.0_f64..1.0).max(1e-9);
        // inverse-CDF sample of Pareto(alpha = 1.6, xm = min_size)
        let s = (xm / u.powf(1.0 / 1.6)).round() as usize;
        let s = s
            .clamp(min_size, (n / 4).max(min_size + 1))
            .min(left.max(1));
        sizes.push(s.min(left));
        left = left.saturating_sub(s);
    }
    sizes
}

fn gen_rng(seed: u64) -> rand_chacha::ChaCha8Rng {
    use rand::SeedableRng;
    rand_chacha::ChaCha8Rng::seed_from_u64(seed)
}

/// Stable 64-bit seed derived from the dataset name (FNV-1a).
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_specs_in_paper_order() {
        let specs = all_specs();
        assert_eq!(specs.len(), 13);
        assert_eq!(specs[0].name, "indochina-2004");
        assert_eq!(specs[12].name, "kmer_V1r");
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec_by_name("com-Orkut").is_some());
        assert!(spec_by_name("nonexistent").is_none());
    }

    #[test]
    fn figure_specs_exclude_sk2005() {
        let f = figure_specs();
        assert_eq!(f.len(), 12);
        assert!(f.iter().all(|s| s.name != "sk-2005"));
    }

    #[test]
    fn generation_is_deterministic() {
        let s = spec_by_name("asia_osm").unwrap();
        let a = s.generate(TEST_SCALE);
        let b = s.generate(TEST_SCALE);
        assert_eq!(a.graph, b.graph);
    }

    #[test]
    fn web_standins_have_hubs() {
        // TEST_SCALE makes this graph too small (185 vertices) for the tail
        // to develop; use the harness scale.
        let d = spec_by_name("indochina-2004")
            .unwrap()
            .generate(DEFAULT_SCALE);
        assert!(d.graph.max_degree() as f64 > 2.0 * d.graph.avg_degree());
        // web stand-ins carry host ground truth
        assert_eq!(d.ground_truth.expect("hosts").len(), d.graph.num_vertices());
    }

    #[test]
    fn social_standins_carry_ground_truth() {
        let d = spec_by_name("com-LiveJournal")
            .unwrap()
            .generate(TEST_SCALE);
        let t = d.ground_truth.expect("social graphs carry planted truth");
        assert_eq!(t.len(), d.graph.num_vertices());
    }

    #[test]
    fn road_standins_are_sparse() {
        let d = spec_by_name("europe_osm").unwrap().generate(TEST_SCALE);
        let avg = d.graph.avg_degree();
        assert!((1.5..=2.8).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn kmer_standins_have_low_max_degree() {
        let d = spec_by_name("kmer_A2a").unwrap().generate(TEST_SCALE);
        assert!(d.graph.max_degree() <= 8);
    }

    #[test]
    fn scaled_sizes_track_paper_ratios() {
        let lj = spec_by_name("com-LiveJournal").unwrap();
        let orkut = spec_by_name("com-Orkut").unwrap();
        let ratio =
            lj.scaled_vertices(DEFAULT_SCALE) as f64 / orkut.scaled_vertices(DEFAULT_SCALE) as f64;
        assert!((ratio - 4.0 / 3.07).abs() < 0.1);
    }

    #[test]
    fn heavy_tailed_sizes_sum_to_n() {
        let sizes = heavy_tailed_sizes(5000, 4, 1);
        assert_eq!(sizes.iter().sum::<usize>(), 5000);
        assert!(sizes.iter().all(|&s| s >= 1));
        // all but the final remainder chunk respect the minimum
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s >= 4));
        let big = heavy_tailed_sizes(5000, 64, 2);
        assert!(big[..big.len() - 1].iter().all(|&s| s >= 64));
    }

    #[test]
    fn all_specs_generate_valid_graphs_at_test_scale() {
        for s in all_specs() {
            let d = s.generate(TEST_SCALE);
            assert!(d.graph.validate().is_ok(), "{} invalid", s.name);
            assert!(d.graph.is_symmetric(), "{} not symmetric", s.name);
            assert!(d.graph.num_edges() > 0, "{} has no edges", s.name);
        }
    }
}
