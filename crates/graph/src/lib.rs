//! # nulpa-graph
//!
//! Graph substrate for the ν-LPA reproduction: CSR storage with 32-bit
//! vertex ids and `f32` weights (the paper's configuration), an edge-list
//! builder with the paper's preprocessing (symmetrization, duplicate
//! merging, self-loop removal), MatrixMarket/edge-list I/O, seeded
//! synthetic generators, and stand-ins for the 13 SuiteSparse datasets of
//! Table 1.
//!
//! ## Quick example
//! ```
//! use nulpa_graph::{GraphBuilder, gen};
//!
//! let g = GraphBuilder::new(4)
//!     .add_undirected_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
//!     .build();
//! assert_eq!(g.num_vertices(), 4);
//! assert_eq!(g.degree(1), 2);
//!
//! let social = gen::planted_partition(&[50, 50], 8.0, 1.0, 42);
//! assert_eq!(social.graph.num_vertices(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod builder;
pub mod components;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod permute;
pub mod stats;
pub mod subgraph;

pub use blocks::{candidate_blocks, edge_blocks, DEFAULT_BLOCK_EDGES};
pub use builder::{DuplicatePolicy, GraphBuilder};
pub use csr::{Csr, VertexId, Weight};
