//! Cache-block boundaries over CSR adjacency.
//!
//! The host fast path processes vertices in *blocks* whose total adjacency
//! volume fits the L2 cache, so the CSR `targets`/`weights` words a block
//! touches stay resident while its vertices are scanned. Two partitioners
//! are provided:
//!
//! * [`edge_blocks`] — contiguous vertex-id ranges over the whole graph,
//!   each holding at most `target_edges` stored edges (a lone vertex whose
//!   degree exceeds the budget gets a block of its own).
//! * [`candidate_blocks`] — the same cut over an arbitrary *ordered
//!   candidate list* (an LPA iteration's active set), returning index
//!   ranges into that list.
//!
//! Both cuts depend only on the graph and the budget — never on thread
//! count — which is what lets `nulpa-core`'s bucketed fast path commit
//! label updates block-by-block while staying bit-identical at any
//! `--threads N` (see DESIGN.md §10).

use crate::csr::{Csr, VertexId};
use std::ops::Range;

/// Default per-block adjacency budget, in stored edges. Sized for a
/// ~1 MiB L2 slice: each scanned edge touches a `u32` target, an `f32`
/// weight, and a `u32` label word (12 B), plus the per-vertex counter
/// scratch it hits — 32 Ki edges ≈ 384 KiB of streaming traffic, leaving
/// headroom for the label-count scratch and the frontier bookkeeping.
pub const DEFAULT_BLOCK_EDGES: usize = 32 * 1024;

/// Split `0..|V|` into contiguous vertex ranges of at most `target_edges`
/// stored edges each. Zero-degree runs are absorbed into their
/// neighbouring block; every vertex appears in exactly one range.
///
/// # Panics
/// Panics if `target_edges == 0`.
pub fn edge_blocks(g: &Csr, target_edges: usize) -> Vec<Range<VertexId>> {
    assert!(target_edges > 0, "block budget must be positive");
    let n = g.num_vertices() as VertexId;
    let mut blocks = Vec::new();
    let mut start = 0 as VertexId;
    while start < n {
        let mut end = start;
        let mut edges = 0usize;
        while end < n {
            let d = g.degree(end);
            if end > start && edges + d > target_edges {
                break;
            }
            edges += d;
            end += 1;
        }
        blocks.push(start..end);
        start = end;
    }
    blocks
}

/// Split an ordered candidate list into index ranges of at most
/// `target_edges` total degree each. Order is preserved: concatenating
/// the ranges reproduces `0..cands.len()`. A single candidate whose
/// degree exceeds the budget still gets its own singleton range.
///
/// # Panics
/// Panics if `target_edges == 0`.
pub fn candidate_blocks(g: &Csr, cands: &[VertexId], target_edges: usize) -> Vec<Range<usize>> {
    assert!(target_edges > 0, "block budget must be positive");
    let mut blocks = Vec::new();
    let mut start = 0usize;
    while start < cands.len() {
        let mut end = start;
        let mut edges = 0usize;
        while end < cands.len() {
            let d = g.degree(cands[end]);
            if end > start && edges + d > target_edges {
                break;
            }
            edges += d;
            end += 1;
        }
        blocks.push(start..end);
        start = end;
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::{caveman_weighted, erdos_renyi, star};

    #[test]
    fn edge_blocks_tile_the_vertex_range() {
        let g = erdos_renyi(200, 600, 3);
        for budget in [1, 7, 64, 10_000] {
            let blocks = edge_blocks(&g, budget);
            let mut next = 0;
            for b in &blocks {
                assert_eq!(b.start, next, "blocks must tile contiguously");
                assert!(b.end > b.start, "empty block");
                next = b.end;
            }
            assert_eq!(next, g.num_vertices() as VertexId);
        }
    }

    #[test]
    fn edge_blocks_respect_budget_except_lone_hubs() {
        let g = star(50); // hub degree 49 dwarfs any small budget
        let blocks = edge_blocks(&g, 8);
        for b in &blocks {
            let edges: usize = (b.start..b.end).map(|v| g.degree(v)).sum();
            let single = b.end - b.start == 1;
            assert!(edges <= 8 || single, "block {b:?} holds {edges} edges");
        }
    }

    #[test]
    fn empty_graph_gets_one_block_per_budget_window() {
        let g = Csr::empty(5);
        let blocks = edge_blocks(&g, 4);
        let total: usize = blocks.iter().map(|b| (b.end - b.start) as usize).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn candidate_blocks_preserve_order_and_cover() {
        let g = caveman_weighted(6, 8, 0.5);
        let cands: Vec<VertexId> = (0..g.num_vertices() as VertexId).rev().collect();
        for budget in [1, 5, 33, 1_000_000] {
            let blocks = candidate_blocks(&g, &cands, budget);
            let mut next = 0usize;
            for b in &blocks {
                assert_eq!(b.start, next);
                assert!(b.end > b.start);
                next = b.end;
            }
            assert_eq!(next, cands.len());
        }
    }

    #[test]
    fn candidate_blocks_give_hubs_their_own_singleton() {
        let g = GraphBuilder::new(6)
            .add_undirected_edges([
                (0, 1, 1.0),
                (0, 2, 1.0),
                (0, 3, 1.0),
                (0, 4, 1.0),
                (0, 5, 1.0),
            ])
            .build();
        let cands = vec![1, 0, 2]; // hub 0 (degree 5) in the middle
        let blocks = candidate_blocks(&g, &cands, 2);
        assert!(blocks.contains(&(1..2)), "hub must sit alone: {blocks:?}");
    }

    #[test]
    fn empty_candidate_list_yields_no_blocks() {
        let g = erdos_renyi(10, 20, 1);
        assert!(candidate_blocks(&g, &[], 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        edge_blocks(&erdos_renyi(4, 4, 1), 0);
    }
}
