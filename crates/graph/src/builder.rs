//! Edge-list graph builder producing validated [`Csr`] graphs.
//!
//! The builder mirrors the preprocessing the paper applies to its inputs:
//! directed inputs are *symmetrized* (a reverse edge is added for every
//! edge — Table 1 reports `|E|` "after adding reverse edges"), duplicate
//! edges are merged by summing weights, and self loops are dropped by
//! default (LPA skips `j = i` during label accumulation; Algorithm 1).

use crate::csr::{Csr, VertexId, Weight};

/// Policy for duplicate `(u, v)` entries in the edge list.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Sum the weights of duplicates (default; matches weighted-multigraph
    /// collapse used by the paper's loaders).
    #[default]
    SumWeights,
    /// Keep the first weight seen, discard the rest.
    KeepFirst,
    /// Keep duplicates as parallel edges.
    KeepAll,
}

/// Incremental builder for [`Csr`] graphs.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
    keep_self_loops: bool,
    duplicates: DuplicatePolicy,
}

impl GraphBuilder {
    /// A builder for a graph with exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(
            n < u32::MAX as usize,
            "vertex ids must fit in u32 with one sentinel value to spare"
        );
        GraphBuilder {
            num_vertices: n,
            edges: Vec::new(),
            keep_self_loops: false,
            duplicates: DuplicatePolicy::SumWeights,
        }
    }

    /// Keep or drop self loops (dropped by default).
    pub fn keep_self_loops(mut self, keep: bool) -> Self {
        self.keep_self_loops = keep;
        self
    }

    /// Set the duplicate-edge policy.
    pub fn duplicate_policy(mut self, p: DuplicatePolicy) -> Self {
        self.duplicates = p;
        self
    }

    /// Pre-allocate space for `m` more edges.
    pub fn reserve(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Add one directed edge.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, w: Weight) -> Self {
        self.push_edge(u, v, w);
        self
    }

    /// Add one undirected edge (stored in both directions).
    pub fn add_undirected_edge(mut self, u: VertexId, v: VertexId, w: Weight) -> Self {
        self.push_undirected(u, v, w);
        self
    }

    /// Add many directed edges.
    pub fn add_edges<I>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
    {
        for (u, v, w) in it {
            self.push_edge(u, v, w);
        }
        self
    }

    /// Add many undirected edges.
    pub fn add_undirected_edges<I>(mut self, it: I) -> Self
    where
        I: IntoIterator<Item = (VertexId, VertexId, Weight)>,
    {
        for (u, v, w) in it {
            self.push_undirected(u, v, w);
        }
        self
    }

    /// Non-consuming edge insertion, for loop-heavy generator code.
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge ({u}, {v}) out of range for |V| = {}",
            self.num_vertices
        );
        assert!(w.is_finite(), "edge weight must be finite");
        if u == v && !self.keep_self_loops {
            return;
        }
        self.edges.push((u, v, w));
    }

    /// Non-consuming undirected edge insertion.
    pub fn push_undirected(&mut self, u: VertexId, v: VertexId, w: Weight) {
        self.push_edge(u, v, w);
        if u != v {
            self.push_edge(v, u, w);
        }
    }

    /// Number of directed edge entries currently queued.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Symmetrize the queued edge list: for every queued `(u, v, w)` with no
    /// queued `(v, u, _)`, queue `(v, u, w)`. Used when loading directed
    /// datasets, matching the paper's "ensure the edges are undirected".
    ///
    /// Contract: after symmetrization every stored edge has a reverse
    /// (structural symmetry). Weights follow: a direction that already
    /// existed keeps its own weight; duplicates of `(u, v)` each schedule
    /// their own reverse, so merged weight sums match in both directions.
    pub fn symmetrize(mut self) -> Self {
        let mut seen: Vec<(VertexId, VertexId)> =
            self.edges.iter().map(|&(u, v, _)| (u, v)).collect();
        seen.sort_unstable();
        let mut extra = Vec::new();
        for &(u, v, w) in &self.edges {
            if u != v && seen.binary_search(&(v, u)).is_err() {
                extra.push((v, u, w));
            }
        }
        self.edges.extend(extra);
        self
    }

    /// Finalize into a validated CSR graph.
    pub fn build(self) -> Csr {
        let n = self.num_vertices;
        let mut edges = self.edges;
        // Sort by (source, target, weight-bits): the weight component makes
        // duplicate merging order-deterministic, so both directions of an
        // undirected edge sum their duplicates in the same order and stay
        // bit-identical (f32 addition is commutative but not associative).
        edges.sort_unstable_by_key(|e| (e.0, e.1, e.2.to_bits()));

        match self.duplicates {
            DuplicatePolicy::KeepAll => {}
            DuplicatePolicy::SumWeights => {
                edges.dedup_by(|next, acc| {
                    if next.0 == acc.0 && next.1 == acc.1 {
                        acc.2 += next.2;
                        true
                    } else {
                        false
                    }
                });
            }
            DuplicatePolicy::KeepFirst => {
                edges.dedup_by_key(|&mut (u, v, _)| (u, v));
            }
        }

        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &edges {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let (targets, weights): (Vec<_>, Vec<_>) =
            edges.into_iter().map(|(_, v, w)| (v, w)).unzip();
        Csr::from_raw(offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_sum_weights() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
    }

    #[test]
    fn duplicate_keep_first() {
        let g = GraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepFirst)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .build();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn duplicate_keep_all() {
        let g = GraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepAll)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.5)
            .build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::new(2).add_edge(0, 0, 1.0).build();
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_kept_when_requested() {
        let g = GraphBuilder::new(2)
            .keep_self_loops(true)
            .add_edge(1, 1, 4.0)
            .build();
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.edge_weight(1, 1), Some(4.0));
    }

    #[test]
    fn symmetrize_adds_missing_reverse_edges() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 2.0)
            .add_edge(1, 0, 5.0) // already has a reverse, keep both as-is
            .add_edge(1, 2, 1.0) // reverse missing
            .symmetrize()
            .build();
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
        assert_eq!(g.edge_weight(1, 0), Some(5.0));
        assert_eq!(g.edge_weight(2, 1), Some(1.0));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn symmetrize_mirrors_each_duplicate() {
        let g = GraphBuilder::new(2)
            .duplicate_policy(DuplicatePolicy::KeepAll)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 1.0)
            .symmetrize()
            .build();
        // each parallel (0,1) edge gets its own reverse, so merged weight
        // sums stay equal in both directions under SumWeights
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);

        let merged = GraphBuilder::new(2)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 1, 2.0)
            .symmetrize()
            .build();
        assert_eq!(merged.edge_weight(0, 1), merged.edge_weight(1, 0));
        assert_eq!(merged.edge_weight(0, 1), Some(3.0));
    }

    #[test]
    fn undirected_edge_stored_both_ways() {
        let g = GraphBuilder::new(2).add_undirected_edge(0, 1, 3.0).build();
        assert!(g.is_symmetric());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertex() {
        GraphBuilder::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weight() {
        GraphBuilder::new(2).add_edge(0, 1, f32::NAN);
    }

    #[test]
    fn build_empty() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic_layout() {
        let mk = || {
            GraphBuilder::new(4)
                .add_undirected_edges([(3, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0)])
                .build()
        };
        assert_eq!(mk(), mk());
    }
}
