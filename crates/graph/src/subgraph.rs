//! Induced subgraph extraction.
//!
//! Downstream analysis of detected communities usually starts by pulling
//! one community out of the graph ("what does host #17 actually look
//! like?"); these helpers build the induced subgraph and keep the mapping
//! back to the original vertex ids.

use crate::csr::{Csr, VertexId};
use crate::{DuplicatePolicy, GraphBuilder};

/// An induced subgraph plus its vertex mapping.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// The induced graph over the selected vertices (renumbered `0..k`).
    pub graph: Csr,
    /// `original[i]` is the original id of subgraph vertex `i`.
    pub original: Vec<VertexId>,
}

impl Subgraph {
    /// Map a subgraph vertex back to its original id.
    pub fn to_original(&self, v: VertexId) -> VertexId {
        self.original[v as usize]
    }
}

/// Induced subgraph over `vertices` (duplicates ignored; order defines the
/// new numbering after dedup-sort).
///
/// # Panics
/// Panics if any vertex id is out of range.
pub fn induced_subgraph(g: &Csr, vertices: &[VertexId]) -> Subgraph {
    let n = g.num_vertices() as VertexId;
    let mut selected: Vec<VertexId> = vertices.to_vec();
    selected.sort_unstable();
    selected.dedup();
    if let Some(&bad) = selected.iter().find(|&&v| v >= n) {
        panic!("vertex {bad} out of range (|V| = {n})");
    }

    // dense inverse map
    let mut index = vec![VertexId::MAX; g.num_vertices()];
    for (i, &v) in selected.iter().enumerate() {
        index[v as usize] = i as VertexId;
    }

    let mut b = GraphBuilder::new(selected.len())
        .keep_self_loops(true)
        .duplicate_policy(DuplicatePolicy::KeepAll);
    for &v in &selected {
        for (j, w) in g.neighbors(v) {
            let t = index[j as usize];
            if t != VertexId::MAX {
                b.push_edge(index[v as usize], t, w);
            }
        }
    }
    Subgraph {
        graph: b.build(),
        original: selected,
    }
}

/// The induced subgraph of one community of a partition.
pub fn community_subgraph(g: &Csr, labels: &[VertexId], community: VertexId) -> Subgraph {
    assert_eq!(labels.len(), g.num_vertices(), "labels length mismatch");
    let members: Vec<VertexId> = g
        .vertices()
        .filter(|&v| labels[v as usize] == community)
        .collect();
    induced_subgraph(g, &members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{caveman_ground_truth, caveman_weighted, complete, web_crawl};

    #[test]
    fn clique_extracts_whole() {
        let g = caveman_weighted(2, 5, 0.5);
        let s = induced_subgraph(&g, &[0, 1, 2, 3, 4]);
        assert_eq!(s.graph.num_vertices(), 5);
        // one 5-clique: 20 directed edges (bridge endpoint excluded)
        assert_eq!(s.graph.num_edges(), 20);
        assert!(s.graph.is_symmetric());
        assert_eq!(s.to_original(0), 0);
    }

    #[test]
    fn renumbering_is_dense_and_sorted() {
        let g = complete(6);
        let s = induced_subgraph(&g, &[5, 1, 3, 1]);
        assert_eq!(s.original, vec![1, 3, 5]);
        assert_eq!(s.graph.num_vertices(), 3);
        assert_eq!(s.graph.num_edges(), 6); // K3 directed
    }

    #[test]
    fn cross_edges_dropped() {
        let g = caveman_weighted(2, 4, 0.5);
        let s = induced_subgraph(&g, &[0, 1, 4, 5]);
        // edges inside {0,1} and {4,5} plus the 0-4 bridge
        assert!(s.graph.has_edge(0, 1));
        assert!(s.graph.has_edge(2, 3));
        assert!(s.graph.has_edge(0, 2)); // the bridge, renumbered
        assert!(!s.graph.has_edge(1, 3));
    }

    #[test]
    fn community_subgraph_matches_ground_truth() {
        let g = caveman_weighted(3, 6, 0.5);
        let truth = caveman_ground_truth(3, 6);
        let s = community_subgraph(&g, &truth, 1);
        assert_eq!(s.graph.num_vertices(), 6);
        assert_eq!(s.original, (6..12).collect::<Vec<_>>());
        // an extracted clique is complete
        assert_eq!(s.graph.num_edges(), 30);
    }

    #[test]
    fn empty_selection() {
        let g = complete(4);
        let s = induced_subgraph(&g, &[]);
        assert_eq!(s.graph.num_vertices(), 0);
        assert_eq!(s.graph.num_edges(), 0);
    }

    #[test]
    fn weights_preserved() {
        let g = web_crawl(200, 4, 0.1, 1);
        let sel: Vec<u32> = (0..50).collect();
        let s = induced_subgraph(&g, &sel);
        for u in s.graph.vertices() {
            for (v, w) in s.graph.neighbors(u) {
                let (ou, ov) = (s.to_original(u), s.to_original(v));
                assert_eq!(g.edge_weight(ou, ov), Some(w));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_vertex() {
        induced_subgraph(&complete(3), &[5]);
    }
}
