//! Compressed Sparse Row (CSR) graph representation.
//!
//! This is the storage format ν-LPA operates on: vertex ids are `u32`
//! (paper §5.1.2 uses 32-bit identifiers), edge weights are `f32`, and the
//! per-vertex adjacency offsets double as the hashtable offsets used by the
//! per-vertex open-addressing tables (paper Fig. 2).
//!
//! The graph is stored as a *directed* adjacency structure; undirected
//! graphs store each edge in both directions (the paper symmetrizes its
//! directed inputs the same way, see Table 1's "after adding reverse
//! edges"). All algorithms in this workspace assume that symmetric form.

use std::fmt;

/// Vertex identifier. 32-bit, as in the paper's configuration.
pub type VertexId = u32;

/// Edge weight. 32-bit float, as in the paper's configuration.
pub type Weight = f32;

/// An immutable weighted graph in Compressed Sparse Row form.
///
/// Invariants (checked by [`Csr::validate`], maintained by the builder):
/// * `offsets.len() == num_vertices + 1`, `offsets[0] == 0`,
///   `offsets` is non-decreasing and `offsets[n] == targets.len()`.
/// * `targets.len() == weights.len()`.
/// * every target is `< num_vertices`.
/// * within a vertex's adjacency slice, targets are sorted ascending
///   (useful for binary-searching edges and for deterministic iteration).
#[derive(Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl Csr {
    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays violate the CSR invariants listed on [`Csr`].
    pub fn from_raw(offsets: Vec<usize>, targets: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        let g = Csr {
            offsets,
            targets,
            weights,
        };
        g.validate().expect("invalid CSR arrays");
        g
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Csr {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            weights: Vec::new(),
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *stored directed* edges. For a symmetrized undirected
    /// graph this is `2|E|` in the paper's notation minus self loops
    /// stored once; Table 1 reports this directed count as `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of vertex `u` (number of stored out-edges).
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let u = u as usize;
        self.offsets[u + 1] - self.offsets[u]
    }

    /// CSR offset of vertex `u`'s adjacency slice — `O_i` in the paper;
    /// the per-vertex hashtable for `u` lives at offset `2 * O_i`.
    #[inline]
    pub fn offset(&self, u: VertexId) -> usize {
        self.offsets[u as usize]
    }

    /// The full offsets array (length `|V| + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The full targets array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// The full weights array.
    #[inline]
    pub fn weights(&self) -> &[Weight] {
        &self.weights
    }

    /// Iterate over vertex ids `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Neighbours of `u` with weights, in ascending target order.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let (lo, hi) = self.range(u);
        self.targets[lo..hi]
            .iter()
            .copied()
            .zip(self.weights[lo..hi].iter().copied())
    }

    /// Neighbour ids of `u` (no weights).
    #[inline]
    pub fn neighbor_ids(&self, u: VertexId) -> &[VertexId] {
        let (lo, hi) = self.range(u);
        &self.targets[lo..hi]
    }

    /// Neighbour weights of `u`, aligned with [`Csr::neighbor_ids`].
    #[inline]
    pub fn neighbor_weights(&self, u: VertexId) -> &[Weight] {
        let (lo, hi) = self.range(u);
        &self.weights[lo..hi]
    }

    #[inline]
    fn range(&self, u: VertexId) -> (usize, usize) {
        let u = u as usize;
        (self.offsets[u], self.offsets[u + 1])
    }

    /// Weighted degree `K_i = Σ_j w_ij` of vertex `u`.
    pub fn weighted_degree(&self, u: VertexId) -> f64 {
        self.neighbor_weights(u).iter().map(|&w| w as f64).sum()
    }

    /// Total *directed* edge weight — `2m` in the paper's notation for a
    /// symmetrized graph (each undirected edge contributes twice).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().map(|&w| w as f64).sum()
    }

    /// `true` if the directed edge `(u, v)` is stored.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbor_ids(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let (lo, _) = self.range(u);
        self.neighbor_ids(u)
            .binary_search(&v)
            .ok()
            .map(|k| self.weights[lo + k])
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// Average degree `D_avg = |E| / |V|` (directed count).
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Check that the stored graph is symmetric with matching weights,
    /// i.e. represents an undirected graph. `O(|E| log D)`.
    pub fn is_symmetric(&self) -> bool {
        for u in self.vertices() {
            for (v, w) in self.neighbors(u) {
                match self.edge_weight(v, u) {
                    Some(wb) if wb == w => {}
                    _ => return false,
                }
            }
        }
        true
    }

    /// Verify all CSR structural invariants. Returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets array must have at least one entry".into());
        }
        if self.offsets[0] != 0 {
            return Err(format!("offsets[0] = {}, expected 0", self.offsets[0]));
        }
        if *self.offsets.last().unwrap() != self.targets.len() {
            return Err(format!(
                "offsets[last] = {} but targets.len() = {}",
                self.offsets.last().unwrap(),
                self.targets.len()
            ));
        }
        if self.targets.len() != self.weights.len() {
            return Err(format!(
                "targets.len() = {} but weights.len() = {}",
                self.targets.len(),
                self.weights.len()
            ));
        }
        for (u, w) in self.offsets.windows(2).enumerate() {
            if w[1] < w[0] {
                return Err(format!("offsets decrease at vertex {u}"));
            }
            let slice = &self.targets[w[0]..w[1]];
            for pair in slice.windows(2) {
                if pair[0] > pair[1] {
                    return Err(format!("adjacency of vertex {u} not sorted"));
                }
            }
        }
        let n = self.num_vertices() as VertexId;
        if let Some(&bad) = self.targets.iter().find(|&&t| t >= n) {
            return Err(format!("target {bad} out of range (|V| = {n})"));
        }
        Ok(())
    }

    /// Count self loops `(u, u)` stored in the graph.
    pub fn num_self_loops(&self) -> usize {
        self.vertices()
            .map(|u| self.neighbor_ids(u).iter().filter(|&&v| v == u).count())
            .sum()
    }
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Csr {{ |V| = {}, |E| = {}, D_avg = {:.2} }}",
            self.num_vertices(),
            self.num_edges(),
            self.avg_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Csr {
        GraphBuilder::new(3)
            .add_undirected_edges([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
            .build()
    }

    #[test]
    fn empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
        assert!(g.is_symmetric());
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Csr::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 6); // symmetrized
        for u in g.vertices() {
            assert_eq!(g.degree(u), 2);
        }
        assert_eq!(g.total_weight(), 6.0);
        assert!(g.is_symmetric());
    }

    #[test]
    fn neighbors_sorted_and_weighted() {
        let g = GraphBuilder::new(4)
            .add_undirected_edges([(2, 0, 3.0), (2, 3, 1.5), (2, 1, 2.0)])
            .build();
        let nbrs: Vec<_> = g.neighbors(2).collect();
        assert_eq!(nbrs, vec![(0, 3.0), (1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn has_edge_and_weight() {
        let g = triangle();
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.edge_weight(1, 2), Some(1.0));
        assert_eq!(g.edge_weight(1, 1), None);
    }

    #[test]
    fn weighted_degree_sums_weights() {
        let g = GraphBuilder::new(3)
            .add_undirected_edges([(0, 1, 2.0), (0, 2, 0.5)])
            .build();
        assert_eq!(g.weighted_degree(0), 2.5);
        assert_eq!(g.weighted_degree(1), 2.0);
    }

    #[test]
    fn offsets_match_degrees() {
        let g = triangle();
        assert_eq!(g.offset(0), 0);
        assert_eq!(g.offset(1), 2);
        assert_eq!(g.offset(2), 4);
        assert_eq!(g.offsets().len(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn from_raw_rejects_bad_offsets() {
        Csr::from_raw(vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn from_raw_rejects_out_of_range_target() {
        Csr::from_raw(vec![0, 1], vec![3], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn from_raw_rejects_unsorted_adjacency() {
        Csr::from_raw(vec![0, 2, 2], vec![1, 0], vec![1.0, 1.0]);
    }

    #[test]
    fn self_loop_counting() {
        let g = GraphBuilder::new(2)
            .keep_self_loops(true)
            .add_edge(0, 0, 1.0)
            .add_undirected_edge(0, 1, 1.0)
            .build();
        assert_eq!(g.num_self_loops(), 1);
    }

    #[test]
    fn asymmetric_graph_detected() {
        let g = Csr::from_raw(vec![0, 1, 1], vec![1], vec![1.0]);
        assert!(!g.is_symmetric());
    }

    #[test]
    fn debug_format_mentions_sizes() {
        let s = format!("{:?}", triangle());
        assert!(s.contains("|V| = 3"));
        assert!(s.contains("|E| = 6"));
    }
}
