//! Vertex relabelling.
//!
//! ν-LPA's Pick-Less rule and its SM-assignment arguments are sensitive to
//! vertex *ids*; these helpers build permuted copies of a graph so the test
//! suite can check order (in)sensitivity claims, and so experiments can
//! randomize away accidental id structure.

use crate::csr::{Csr, VertexId, Weight};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Relabel vertices: vertex `v` in the input becomes `perm[v]` in the
/// output. `perm` must be a permutation of `0..|V|`.
///
/// # Panics
/// Panics if `perm` is not a valid permutation.
pub fn relabel(g: &Csr, perm: &[VertexId]) -> Csr {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(
            (p as usize) < n && !std::mem::replace(&mut seen[p as usize], true),
            "not a permutation"
        );
    }

    // Degrees of the relabelled graph.
    let mut offsets = vec![0usize; n + 1];
    for v in g.vertices() {
        offsets[perm[v as usize] as usize + 1] = g.degree(v);
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }

    let m = g.num_edges();
    let mut targets: Vec<VertexId> = vec![0; m];
    let mut weights: Vec<Weight> = vec![0.0; m];
    for v in g.vertices() {
        let nv = perm[v as usize] as usize;
        let base = offsets[nv];
        let mut pairs: Vec<(VertexId, Weight)> =
            g.neighbors(v).map(|(t, w)| (perm[t as usize], w)).collect();
        pairs.sort_unstable_by_key(|&(t, _)| t);
        for (k, (t, w)) in pairs.into_iter().enumerate() {
            targets[base + k] = t;
            weights[base + k] = w;
        }
    }
    Csr::from_raw(offsets, targets, weights)
}

/// Random permutation of `0..n`, seeded.
pub fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    perm.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
    perm
}

/// Convenience: relabel by a fresh random permutation; returns the graph
/// and the permutation used.
pub fn shuffle_vertices(g: &Csr, seed: u64) -> (Csr, Vec<VertexId>) {
    let perm = random_permutation(g.num_vertices(), seed);
    (relabel(g, &perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{caveman, erdos_renyi};

    #[test]
    fn identity_permutation_is_noop() {
        let g = caveman(3, 4);
        let id: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
        assert_eq!(relabel(&g, &id), g);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = erdos_renyi(60, 150, 4);
        let (h, perm) = shuffle_vertices(&g, 7);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(g.degree(u), h.degree(perm[u as usize]));
            for (v, w) in g.neighbors(u) {
                assert_eq!(h.edge_weight(perm[u as usize], perm[v as usize]), Some(w));
            }
        }
    }

    #[test]
    fn relabel_keeps_symmetry() {
        let g = erdos_renyi(40, 80, 1);
        let (h, _) = shuffle_vertices(&g, 2);
        assert!(h.is_symmetric());
        assert!(h.validate().is_ok());
    }

    #[test]
    fn random_permutation_is_valid() {
        let p = random_permutation(100, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_duplicate_entries() {
        let g = caveman(2, 3);
        relabel(&g, &[0, 0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_wrong_length() {
        let g = caveman(2, 3);
        relabel(&g, &[0, 1]);
    }
}
