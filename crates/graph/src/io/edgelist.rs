//! Whitespace-separated edge lists: `u v [w]` per line, `#`/`%` comments.
//! Vertex ids are 0-based. Missing weights default to 1 (unweighted input,
//! as the paper assumes).

use super::{parse_err, IoError};
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use std::io::{BufRead, Write};

/// Read an edge list. `num_vertices` may be larger than the max id seen;
/// pass `None` to size the graph to `max_id + 1`. When `symmetrize` is
/// set, missing reverse edges are added (paper's preprocessing).
pub fn read_edge_list<R: BufRead>(
    reader: R,
    num_vertices: Option<usize>,
    symmetrize: bool,
) -> Result<Csr, IoError> {
    let mut edges: Vec<(VertexId, VertexId, f32)> = Vec::new();
    let mut max_id: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it
            .next()
            .unwrap()
            .parse()
            .map_err(|_| parse_err(lineno, "bad source vertex"))?;
        let v: u64 = it
            .next()
            .ok_or_else(|| parse_err(lineno, "missing target vertex"))?
            .parse()
            .map_err(|_| parse_err(lineno, "bad target vertex"))?;
        let w: f32 = match it.next() {
            Some(s) => s.parse().map_err(|_| parse_err(lineno, "bad weight"))?,
            None => 1.0,
        };
        if !w.is_finite() {
            return Err(parse_err(lineno, "non-finite weight"));
        }
        if u >= u32::MAX as u64 || v >= u32::MAX as u64 {
            return Err(parse_err(lineno, "vertex id exceeds u32 range"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId, w));
    }
    let n = match num_vertices {
        Some(n) => {
            if !edges.is_empty() && max_id as usize >= n {
                return Err(parse_err(0, format!("vertex {max_id} >= |V| = {n}")));
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id as usize + 1
            }
        }
    };
    let mut b = GraphBuilder::new(n)
        .reserve(edges.len() * 2)
        .add_edges(edges);
    if symmetrize {
        b = b.symmetrize();
    }
    Ok(b.build())
}

/// Write the stored directed edges as `u v w` lines.
pub fn write_edge_list<W: Write>(g: &Csr, mut out: W) -> std::io::Result<()> {
    writeln!(
        out,
        "# nu-lpa edge list: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for u in g.vertices() {
        for (v, w) in g.neighbors(u) {
            writeln!(out, "{u} {v} {w}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let g = crate::gen::caveman(3, 4);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf), Some(g.num_vertices()), false).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let txt = "# header\n\n% more\n0 1\n1 2 2.5\n";
        let g = read_edge_list(Cursor::new(txt), None, false).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.edge_weight(1, 2), Some(2.5));
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
    }

    #[test]
    fn symmetrize_on_read() {
        let txt = "0 1\n";
        let g = read_edge_list(Cursor::new(txt), None, true).unwrap();
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn sizes_to_max_id() {
        let txt = "0 9\n";
        let g = read_edge_list(Cursor::new(txt), None, false).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn rejects_bad_tokens() {
        assert!(read_edge_list(Cursor::new("0 x\n"), None, false).is_err());
        assert!(read_edge_list(Cursor::new("0\n"), None, false).is_err());
        assert!(read_edge_list(Cursor::new("0 1 inf\n"), None, false).is_err());
    }

    #[test]
    fn rejects_vertex_beyond_given_n() {
        assert!(read_edge_list(Cursor::new("0 5\n"), Some(3), false).is_err());
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list(Cursor::new(""), None, false).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }
}
