//! Compact binary CSR serialization — fast reload for large stand-ins.
//!
//! Format (little-endian):
//! ```text
//! magic  8 bytes  "NULPACSR"
//! version u32     1
//! |V|    u64
//! |E|    u64
//! offsets (|V|+1) × u64
//! targets |E| × u32
//! weights |E| × f32 bit patterns
//! ```

use super::{parse_err, IoError};
use crate::csr::Csr;
use std::io::{Read, Write};

const MAGIC: &[u8; 8] = b"NULPACSR";
const VERSION: u32 = 1;

/// Serialize a graph to the binary CSR format.
pub fn write_binary<W: Write>(g: &Csr, mut out: W) -> std::io::Result<()> {
    out.write_all(MAGIC)?;
    out.write_all(&VERSION.to_le_bytes())?;
    out.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    out.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        out.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in g.targets() {
        out.write_all(&t.to_le_bytes())?;
    }
    for &w in g.weights() {
        out.write_all(&w.to_bits().to_le_bytes())?;
    }
    Ok(())
}

/// Deserialize a graph written by [`write_binary`].
pub fn read_binary<R: Read>(mut input: R) -> Result<Csr, IoError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(parse_err(0, "bad magic — not a NULPACSR file"));
    }
    let version = read_u32(&mut input)?;
    if version != VERSION {
        return Err(parse_err(0, format!("unsupported version {version}")));
    }
    let n = read_u64(&mut input)? as usize;
    let m = read_u64(&mut input)? as usize;

    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut input)? as usize);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(read_u32(&mut input)?);
    }
    let mut weights = Vec::with_capacity(m);
    for _ in 0..m {
        let bits = read_u32(&mut input)?;
        let w = f32::from_bits(bits);
        if !w.is_finite() {
            return Err(parse_err(0, "non-finite weight in binary file"));
        }
        weights.push(w);
    }
    // validate structural invariants before constructing
    if offsets.first() != Some(&0) || offsets.last() != Some(&m) {
        return Err(parse_err(0, "corrupt offsets"));
    }
    std::panic::catch_unwind(move || Csr::from_raw(offsets, targets, weights))
        .map_err(|_| parse_err(0, "corrupt CSR arrays"))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, IoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, IoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{caveman_weighted, erdos_renyi};
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        for g in [caveman_weighted(3, 5, 0.5), erdos_renyi(80, 200, 7)] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            let g2 = read_binary(Cursor::new(buf)).unwrap();
            assert_eq!(g, g2);
        }
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = crate::Csr::empty(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(Cursor::new(buf)).unwrap(), g);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(read_binary(Cursor::new(b"NOTACSR!rest".to_vec())).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let g = caveman_weighted(2, 4, 1.0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_corrupt_offsets() {
        let g = caveman_weighted(2, 4, 1.0);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // corrupt the first offset (offset table starts at byte 8+4+8+8=28)
        buf[28] = 0xff;
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let g = crate::Csr::empty(1);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf[8] = 9; // version field
        assert!(read_binary(Cursor::new(buf)).is_err());
    }
}
