//! Graph serialization: whitespace edge lists and MatrixMarket.
//!
//! The paper loads SuiteSparse matrices in MatrixMarket form; these readers
//! let users of this crate run the same pipeline on real downloads when
//! they have them.

mod binary;
mod edgelist;
mod mtx;

pub use binary::{read_binary, write_binary};
pub use edgelist::{read_edge_list, write_edge_list};
pub use mtx::{read_matrix_market, write_matrix_market};

/// Errors produced by the graph readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural or syntactic problem, with 1-based line number.
    Parse {
        /// 1-based line number (0 when not line-specific).
        line: usize,
        /// Human-readable description.
        msg: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

pub(crate) fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        msg: msg.into(),
    }
}
