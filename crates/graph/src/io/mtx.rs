//! MatrixMarket coordinate format, the SuiteSparse interchange format used
//! by the paper's dataset loaders. Supports `matrix coordinate
//! {real,integer,pattern} {general,symmetric}` with 1-based indices.

use super::{parse_err, IoError};
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use std::io::{BufRead, Write};

/// Read a MatrixMarket file into a symmetrized graph. `general` matrices
/// get reverse edges added (the paper's preprocessing for directed webs);
/// `symmetric` matrices store each off-diagonal entry once and we expand
/// it to both directions. Diagonal entries (self loops) are dropped.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<Csr, IoError> {
    let mut lines = reader.lines().enumerate();

    // Header
    let (_, header) = lines.next().ok_or_else(|| parse_err(1, "empty file"))?;
    let header = header?;
    if !header.starts_with("%%MatrixMarket") {
        return Err(parse_err(1, "missing %%MatrixMarket header"));
    }
    let toks: Vec<String> = header
        .split_whitespace()
        .map(|s| s.to_lowercase())
        .collect();
    if toks.len() < 5 || toks[1] != "matrix" || toks[2] != "coordinate" {
        return Err(parse_err(1, "only `matrix coordinate` supported"));
    }
    let field = toks[3].as_str();
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(parse_err(1, format!("unsupported field type `{field}`")));
    }
    let symmetry = toks[4].as_str();
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(parse_err(1, format!("unsupported symmetry `{symmetry}`")));
    }
    let pattern = field == "pattern";

    // Size line (after comments)
    let mut size_line = None;
    for (i, l) in lines.by_ref() {
        let l = l?;
        let t = l.trim().to_string();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i + 1, t));
        break;
    }
    let (szno, sz) = size_line.ok_or_else(|| parse_err(0, "missing size line"))?;
    let mut it = sz.split_whitespace();
    let rows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(szno, "bad row count"))?;
    let cols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(szno, "bad column count"))?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err(szno, "bad nnz count"))?;
    if rows != cols {
        return Err(parse_err(szno, "adjacency matrix must be square"));
    }

    // KeepFirst: a `general` file that already stores both (u,v) and (v,u)
    // must not see its weights doubled by our unconditional symmetrization.
    let mut b = GraphBuilder::new(rows)
        .duplicate_policy(crate::builder::DuplicatePolicy::KeepFirst)
        .reserve(nnz * 2);
    let mut seen = 0usize;
    for (i, l) in lines {
        let l = l?;
        let lineno = i + 1;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad row index"))?;
        let v: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(lineno, "bad column index"))?;
        let w: f32 = if pattern {
            1.0
        } else {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| parse_err(lineno, "missing value"))?
        };
        if u == 0 || v == 0 || u > rows || v > cols {
            return Err(parse_err(lineno, "index out of range (1-based)"));
        }
        if !w.is_finite() {
            return Err(parse_err(lineno, "non-finite value"));
        }
        seen += 1;
        let (u, v) = ((u - 1) as VertexId, (v - 1) as VertexId);
        if u == v {
            continue; // drop diagonal
        }
        // both symmetric storage and the paper's symmetrization want both
        // directions present
        b.push_undirected(u, v, w);
    }
    if seen != nnz {
        return Err(parse_err(
            0,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(b.build())
}

/// Write as `matrix coordinate real symmetric`, storing each undirected
/// edge once (lower triangle).
pub fn write_matrix_market<W: Write>(g: &Csr, mut out: W) -> std::io::Result<()> {
    let mut entries = Vec::new();
    for u in g.vertices() {
        for (v, w) in g.neighbors(u) {
            if v <= u {
                entries.push((u, v, w));
            }
        }
    }
    writeln!(out, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(
        out,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        entries.len()
    )?;
    for (u, v, w) in entries {
        writeln!(out, "{} {} {}", u + 1, v + 1, w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_symmetric_pattern() {
        let txt =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n2 1\n3 2\n";
        let g = read_matrix_market(Cursor::new(txt)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
    }

    #[test]
    fn parse_general_real() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n";
        let g = read_matrix_market(Cursor::new(txt)).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
        assert_eq!(g.edge_weight(1, 0), Some(3.5)); // symmetrized
    }

    #[test]
    fn diagonal_dropped() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n1 2 1.0\n";
        let g = read_matrix_market(Cursor::new(txt)).unwrap();
        assert_eq!(g.num_self_loops(), 0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn roundtrip() {
        let g = crate::gen::caveman(2, 5);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn general_with_both_directions_not_doubled() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 3.0\n2 1 3.0\n";
        let g = read_matrix_market(Cursor::new(txt)).unwrap();
        assert_eq!(g.edge_weight(0, 1), Some(3.0));
        assert_eq!(g.edge_weight(1, 0), Some(3.0));
    }

    #[test]
    fn rejects_non_square() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 3 0\n";
        assert!(read_matrix_market(Cursor::new(txt)).is_err());
    }

    #[test]
    fn rejects_wrong_nnz() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 1.0\n";
        assert!(read_matrix_market(Cursor::new(txt)).is_err());
    }

    #[test]
    fn rejects_zero_index() {
        let txt = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1.0\n";
        assert!(read_matrix_market(Cursor::new(txt)).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market(Cursor::new("not a header\n")).is_err());
        let arr = "%%MatrixMarket matrix array real general\n2 2\n";
        assert!(read_matrix_market(Cursor::new(arr)).is_err());
    }
}
