//! Host-structured web-crawl generator.
//!
//! LAW web crawls (indochina-2004, uk-2002, …) are dominated by *host
//! structure*: pages of one site link densely to each other and sparsely
//! to other sites, and crawl order lays each host out contiguously in the
//! id space. That is why LPA reaches high modularity on them (paper
//! Fig. 6c) — structure a plain preferential-attachment graph lacks.
//!
//! This generator reproduces it: vertices are grouped into contiguous
//! "hosts" with heavy-tailed sizes; within a host, new pages attach
//! preferentially (BA-style) to earlier pages of the same host; with
//! probability `inter_p` an attachment instead goes to a page of an
//! earlier host, sampled preferentially by degree (global hubs).

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// Generate a web-crawl-like graph: `n` vertices in heavy-tailed hosts,
/// ~`m_attach` undirected attachments per vertex, a fraction `inter_p` of
/// which cross host boundaries. Unit weights, symmetric.
pub fn web_crawl(n: usize, m_attach: usize, inter_p: f64, seed: u64) -> Csr {
    assert!(n >= 2);
    assert!(m_attach >= 1);
    assert!((0.0..=1.0).contains(&inter_p));
    let mut r = rng(seed);

    // Heavy-tailed host sizes (Pareto-ish, min 4).
    let mut hosts: Vec<usize> = Vec::new();
    let mut left = n;
    while left > 0 {
        let u: f64 = r.gen_range(0.0_f64..1.0).max(1e-9);
        let s = (4.0 / u.powf(1.0 / 1.3)).round() as usize;
        let s = s.clamp(4, (n / 8).max(8)).min(left);
        hosts.push(s);
        left -= s;
    }

    let mut b = GraphBuilder::new(n).reserve(2 * n * m_attach);
    // endpoint entries of *completed* hosts — inter-host targets
    let mut global_ends: Vec<VertexId> = Vec::new();
    let mut host_ends: Vec<VertexId> = Vec::new();
    let mut chosen: Vec<VertexId> = Vec::new();

    // Per-vertex quotas: intra links dominate (pages link inside their
    // site); only ~inter_p of attachments cross hosts, and the host's
    // first page gets exactly one "discovery" link. Without the quota, a
    // host's seed page would link entirely to earlier hosts, planting a
    // foreign label at the centre of every host — which lets LPA collapse
    // the whole crawl into one community, unlike any real web graph.
    let want_inter_per_vertex = ((m_attach as f64) * inter_p).round() as usize;
    let want_intra_per_vertex = m_attach.saturating_sub(want_inter_per_vertex).max(1);

    let mut start = 0usize;
    for &size in &hosts {
        host_ends.clear();
        for i in 0..size {
            let u = (start + i) as VertexId;
            chosen.clear();

            // intra-host attachments (preferential within the host, with
            // a uniform fallback so early pages still connect)
            let want_intra = want_intra_per_vertex.min(i);
            let mut guard = 0;
            while chosen.len() < want_intra && guard < 20 * m_attach + 50 {
                guard += 1;
                let t = if !host_ends.is_empty() && r.gen_bool(0.8) {
                    host_ends[r.gen_range(0..host_ends.len())]
                } else {
                    (start + r.gen_range(0..i)) as VertexId
                };
                if t == u || chosen.contains(&t) {
                    continue;
                }
                chosen.push(t);
            }
            if chosen.is_empty() && i > 0 {
                chosen.push((start + i - 1) as VertexId); // connectivity
            }

            // inter-host attachments (degree-preferential global hubs)
            let want_inter = if global_ends.is_empty() {
                0
            } else if i == 0 {
                1 // the crawl discovered this host through one link
            } else {
                want_inter_per_vertex
            };
            let before = chosen.len();
            guard = 0;
            while chosen.len() - before < want_inter && guard < 20 * m_attach + 50 {
                guard += 1;
                let t = global_ends[r.gen_range(0..global_ends.len())];
                if t == u || chosen.contains(&t) {
                    continue;
                }
                chosen.push(t);
            }

            for &t in &chosen {
                b.push_undirected(u, t, 1.0);
                host_ends.push(u);
                host_ends.push(t);
            }
        }
        global_ends.extend_from_slice(&host_ends);
        start += size;
    }
    b.build()
}

/// Ground-truth host of every vertex (host index as label), matching the
/// layout produced by [`web_crawl`] with the same `n` and `seed`.
pub fn web_crawl_hosts(n: usize, seed: u64) -> Vec<VertexId> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut left = n;
    let mut host = 0 as VertexId;
    while left > 0 {
        let u: f64 = r.gen_range(0.0_f64..1.0).max(1e-9);
        let s = (4.0 / u.powf(1.0 / 1.3)).round() as usize;
        let s = s.clamp(4, (n / 8).max(8)).min(left);
        out.extend(std::iter::repeat_n(host, s));
        left -= s;
        host += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_symmetry() {
        let g = web_crawl(1000, 8, 0.1, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.is_symmetric());
        assert!(g.avg_degree() > 8.0); // ~2 * m_attach with some loss
    }

    #[test]
    fn intra_host_edges_dominate() {
        let n = 2000;
        let seed = 3;
        let g = web_crawl(n, 8, 0.1, seed);
        let hosts = web_crawl_hosts(n, seed);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for u in g.vertices() {
            for (v, _) in g.neighbors(u) {
                if hosts[u as usize] == hosts[v as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        // small hosts (the heavy tail's bulk) carry proportionally more
        // external links, so the global ratio is milder than 1/inter_p
        assert!(intra > 2 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn hosts_match_generator_layout() {
        let hosts = web_crawl_hosts(500, 7);
        assert_eq!(hosts.len(), 500);
        // contiguous non-decreasing host ids
        for w in hosts.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(web_crawl(400, 6, 0.15, 9), web_crawl(400, 6, 0.15, 9));
    }

    #[test]
    fn hubs_exist_within_hosts() {
        let g = web_crawl(3000, 10, 0.1, 5);
        assert!(g.max_degree() as f64 > 2.0 * g.avg_degree());
    }

    #[test]
    fn tiny_graph_connected_enough() {
        let g = web_crawl(10, 3, 0.2, 0);
        assert!(g.num_edges() > 0);
        assert!(g.validate().is_ok());
    }
}
