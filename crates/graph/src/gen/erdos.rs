//! Erdős–Rényi G(n, m) random graphs.

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// Undirected Erdős–Rényi graph with `n` vertices and (approximately) `m`
/// distinct undirected edges, unit weights.
///
/// Sampling is with rejection of self loops; duplicates merge to weight
/// sums being avoided by `KeepFirst` semantics of resampling (we resample
/// until `m` *distinct* pairs are drawn, so the edge count is exact as long
/// as `m <= n*(n-1)/2`).
///
/// # Panics
/// Panics if `n < 2` and `m > 0`, or if `m` exceeds the number of possible
/// undirected edges.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Csr {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} possible"
    );
    let mut r = rng(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n).reserve(2 * m);
    while chosen.len() < m {
        let u = r.gen_range(0..n) as VertexId;
        let v = r.gen_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.push_undirected(key.0, key.1, 1.0);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(100, 250, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500); // directed storage
        assert!(g.is_symmetric());
        assert_eq!(g.num_self_loops(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 8));
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn full_density() {
        let g = erdos_renyi(6, 15, 3);
        assert_eq!(g.num_edges(), 30);
        for u in g.vertices() {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_impossible_edge_count() {
        erdos_renyi(4, 7, 0);
    }
}
