//! K-mer-style chain graph generator.
//!
//! Stand-in for the paper's GenBank protein k-mer graphs (kmer_A2a,
//! kmer_V1r): average degree ≈ 2.1, built of very long chains (de Bruijn
//! paths) with occasional branch vertices where chains fork, and a huge
//! number of connected components — which is why ν-LPA finds tens of
//! millions of communities on them (Table 1).

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// Generate `num_chains` disjoint chains whose lengths are sampled
/// uniformly from `min_len..=max_len` (vertex counts), with a `branch_p`
/// probability per interior vertex of sprouting a short side branch
/// (length 1–3). Total vertex count is data-dependent; unit weights.
pub fn kmer_chain(
    num_chains: usize,
    min_len: usize,
    max_len: usize,
    branch_p: f64,
    seed: u64,
) -> Csr {
    assert!(num_chains >= 1);
    assert!(min_len >= 1 && max_len >= min_len);
    assert!((0.0..=1.0).contains(&branch_p));
    let mut r = rng(seed);

    // First pass: decide chain lengths and branch positions so we know |V|.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut next: u32 = 0;
    for _ in 0..num_chains {
        let len = r.gen_range(min_len..=max_len);
        let start = next;
        next += len as u32;
        for i in 1..len as u32 {
            edges.push((start + i - 1, start + i));
        }
        // side branches off interior vertices
        for i in 1..len.saturating_sub(1) as u32 {
            if r.gen_bool(branch_p) {
                let blen = r.gen_range(1..=3u32);
                let bstart = next;
                next += blen;
                edges.push((start + i, bstart));
                for j in 1..blen {
                    edges.push((bstart + j - 1, bstart + j));
                }
            }
        }
    }

    let mut b = GraphBuilder::new(next as usize).reserve(edges.len() * 2);
    for (u, v) in edges {
        b.push_undirected(u as VertexId, v as VertexId, 1.0);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_chains() {
        let g = kmer_chain(3, 5, 5, 0.0, 1);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 2 * 3 * 4);
        // endpoints have degree 1, interiors degree 2
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn chains_are_disjoint() {
        let g = kmer_chain(2, 4, 4, 0.0, 2);
        // no edge between vertex sets {0..3} and {4..7}
        for u in 0..4u32 {
            for (v, _) in g.neighbors(u) {
                assert!(v < 4);
            }
        }
    }

    #[test]
    fn branching_adds_degree3_vertices() {
        let g = kmer_chain(5, 50, 80, 0.3, 3);
        let any_branch = g.vertices().any(|u| g.degree(u) >= 3);
        assert!(any_branch);
    }

    #[test]
    fn kmer_like_density() {
        let g = kmer_chain(20, 100, 300, 0.05, 4);
        let d = g.avg_degree();
        assert!((1.7..=2.4).contains(&d), "avg degree {d}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(kmer_chain(4, 10, 20, 0.2, 9), kmer_chain(4, 10, 20, 0.2, 9));
    }

    #[test]
    fn single_vertex_chains() {
        let g = kmer_chain(3, 1, 1, 0.0, 0);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 0);
    }
}
