//! Planted-partition (stochastic block model) generator with ground truth.
//!
//! Stand-in for the paper's SNAP social networks (com-LiveJournal,
//! com-Orkut): dense intra-community structure with known ground-truth
//! communities, enabling NMI evaluation alongside modularity.

use super::rng;
use crate::builder::GraphBuilder;
use crate::csr::{Csr, VertexId};
use rand::Rng;

/// A planted-partition graph plus its ground-truth community assignment.
#[derive(Clone, Debug)]
pub struct PlantedPartition {
    /// The symmetrized, unit-weight graph.
    pub graph: Csr,
    /// Ground-truth community of each vertex.
    pub ground_truth: Vec<VertexId>,
}

/// Generate a planted-partition graph.
///
/// * `community_sizes` — size of each planted community (vertices are laid
///   out contiguously: community 0 first, then community 1, …).
/// * `degree_in` — expected number of intra-community neighbours per vertex.
/// * `degree_out` — expected number of inter-community neighbours per vertex.
///
/// Edges are sampled by expected-degree (Chung–Lu style within/between
/// blocks), so the realized degrees vary but their means match. Duplicate
/// samples merge; self loops are dropped.
pub fn planted_partition(
    community_sizes: &[usize],
    degree_in: f64,
    degree_out: f64,
    seed: u64,
) -> PlantedPartition {
    assert!(!community_sizes.is_empty());
    assert!(degree_in >= 0.0 && degree_out >= 0.0);
    let n: usize = community_sizes.iter().sum();
    assert!(n >= 2);
    let mut r = rng(seed);

    let mut ground_truth = Vec::with_capacity(n);
    let mut starts = Vec::with_capacity(community_sizes.len() + 1);
    let mut acc = 0usize;
    for (c, &sz) in community_sizes.iter().enumerate() {
        assert!(sz >= 1, "community {c} is empty");
        starts.push(acc);
        ground_truth.extend(std::iter::repeat_n(c as VertexId, sz));
        acc += sz;
    }
    starts.push(acc);

    let mut b = GraphBuilder::new(n);

    // Intra-community edges: for community of size s, target s*degree_in/2
    // undirected edges sampled uniformly inside the block.
    for (c, &sz) in community_sizes.iter().enumerate() {
        if sz < 2 {
            continue;
        }
        let base = starts[c];
        let want = ((sz as f64 * degree_in) / 2.0).round() as usize;
        let max_possible = sz * (sz - 1) / 2;
        let want = want.min(max_possible);
        let mut placed = std::collections::HashSet::new();
        let mut guard = 0usize;
        while placed.len() < want && guard < want * 20 + 100 {
            guard += 1;
            let u = (base + r.gen_range(0..sz)) as VertexId;
            let v = (base + r.gen_range(0..sz)) as VertexId;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if placed.insert(key) {
                b.push_undirected(key.0, key.1, 1.0);
            }
        }
    }

    // Inter-community edges: global uniform pairs with different blocks.
    let want_out = ((n as f64 * degree_out) / 2.0).round() as usize;
    let mut placed = std::collections::HashSet::new();
    let mut guard = 0usize;
    while placed.len() < want_out && guard < want_out * 20 + 100 {
        guard += 1;
        let u = r.gen_range(0..n) as VertexId;
        let v = r.gen_range(0..n) as VertexId;
        if u == v || ground_truth[u as usize] == ground_truth[v as usize] {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if placed.insert(key) {
            b.push_undirected(key.0, key.1, 1.0);
        }
    }

    PlantedPartition {
        graph: b.build(),
        ground_truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_truth_layout() {
        let pp = planted_partition(&[30, 20, 50], 8.0, 1.0, 5);
        assert_eq!(pp.graph.num_vertices(), 100);
        assert_eq!(pp.ground_truth.len(), 100);
        assert_eq!(pp.ground_truth[0], 0);
        assert_eq!(pp.ground_truth[29], 0);
        assert_eq!(pp.ground_truth[30], 1);
        assert_eq!(pp.ground_truth[50], 2);
    }

    #[test]
    fn intra_edges_dominate() {
        let pp = planted_partition(&[50, 50], 10.0, 1.0, 11);
        let g = &pp.graph;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for u in g.vertices() {
            for (v, _) in g.neighbors(u) {
                if pp.ground_truth[u as usize] == pp.ground_truth[v as usize] {
                    intra += 1;
                } else {
                    inter += 1;
                }
            }
        }
        assert!(intra > 5 * inter, "intra {intra} inter {inter}");
    }

    #[test]
    fn expected_degree_roughly_met() {
        let pp = planted_partition(&[200, 200], 12.0, 2.0, 2);
        let d = pp.graph.avg_degree();
        assert!((10.0..=16.0).contains(&d), "avg degree {d}");
    }

    #[test]
    fn deterministic() {
        let a = planted_partition(&[40, 40], 6.0, 1.0, 3);
        let b = planted_partition(&[40, 40], 6.0, 1.0, 3);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn single_community_has_no_inter_edges() {
        let pp = planted_partition(&[60], 5.0, 3.0, 9);
        // degree_out cannot be satisfied with a single block: all pairs share it
        for u in pp.graph.vertices() {
            for (v, _) in pp.graph.neighbors(u) {
                assert_eq!(pp.ground_truth[u as usize], pp.ground_truth[v as usize]);
            }
        }
    }

    #[test]
    fn tiny_communities_ok() {
        let pp = planted_partition(&[1, 1, 2], 4.0, 2.0, 1);
        assert_eq!(pp.graph.num_vertices(), 4);
        assert!(pp.graph.validate().is_ok());
    }
}
